#include "net/protocol.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace tdb {
namespace net {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(u >> (8 * i)));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutI64(out, static_cast<int64_t>(bits));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

bool Decoder::Need(size_t n) {
  if (failed_ || size_ - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

bool Decoder::GetU8(uint8_t* v) {
  if (!Need(1)) return false;
  *v = data_[pos_++];
  return true;
}

bool Decoder::GetU32(uint32_t* v) {
  if (!Need(4)) return false;
  *v = static_cast<uint32_t>(data_[pos_]) |
       static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
       static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
       static_cast<uint32_t>(data_[pos_ + 3]) << 24;
  pos_ += 4;
  return true;
}

bool Decoder::GetI64(int64_t* v) {
  if (!Need(8)) return false;
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *v = static_cast<int64_t>(u);
  return true;
}

bool Decoder::GetF64(double* v) {
  int64_t bits;
  if (!GetI64(&bits)) return false;
  uint64_t u = static_cast<uint64_t>(bits);
  std::memcpy(v, &u, sizeof(*v));
  return true;
}

bool Decoder::GetString(std::string* s) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  // The length is attacker-controlled: bound it by the bytes actually
  // present before any allocation.
  if (!Need(len)) return false;
  s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return true;
}

void EncodeValue(std::vector<uint8_t>* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kInt1:
    case TypeId::kInt2:
    case TypeId::kInt4:
      PutI64(out, v.AsInt());
      break;
    case TypeId::kFloat8:
      PutF64(out, v.AsDouble());
      break;
    case TypeId::kChar:
      PutString(out, v.AsString());
      break;
    case TypeId::kTime:
      PutI64(out, v.AsTime().seconds());
      break;
  }
}

bool DecodeValue(Decoder* dec, Value* v) {
  uint8_t tag;
  if (!dec->GetU8(&tag)) return false;
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kInt1: {
      int64_t i;
      if (!dec->GetI64(&i)) return false;
      *v = Value::Int1(i);
      return true;
    }
    case TypeId::kInt2: {
      int64_t i;
      if (!dec->GetI64(&i)) return false;
      *v = Value::Int2(i);
      return true;
    }
    case TypeId::kInt4: {
      int64_t i;
      if (!dec->GetI64(&i)) return false;
      *v = Value::Int4(i);
      return true;
    }
    case TypeId::kFloat8: {
      double d;
      if (!dec->GetF64(&d)) return false;
      *v = Value::Float8(d);
      return true;
    }
    case TypeId::kChar: {
      std::string s;
      if (!dec->GetString(&s)) return false;
      *v = Value::Char(std::move(s));
      return true;
    }
    case TypeId::kTime: {
      int64_t secs;
      if (!dec->GetI64(&secs)) return false;
      *v = Value::Time(TimePoint(static_cast<int32_t>(secs)));
      return true;
    }
  }
  return false;  // unknown tag
}

void EncodeWireResult(std::vector<uint8_t>* out, const WireResult& r) {
  PutString(out, r.message);
  PutI64(out, r.affected);
  PutU32(out, static_cast<uint32_t>(r.columns.size()));
  for (const std::string& c : r.columns) PutString(out, c);
  PutU32(out, static_cast<uint32_t>(r.rows.size()));
  for (const Row& row : r.rows) {
    PutU32(out, static_cast<uint32_t>(row.size()));
    for (const Value& v : row) EncodeValue(out, v);
  }
}

bool DecodeWireResult(Decoder* dec, WireResult* r) {
  if (!dec->GetString(&r->message)) return false;
  if (!dec->GetI64(&r->affected)) return false;
  uint32_t ncols;
  if (!dec->GetU32(&ncols)) return false;
  r->columns.clear();
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string c;
    if (!dec->GetString(&c)) return false;
    r->columns.push_back(std::move(c));
  }
  uint32_t nrows;
  if (!dec->GetU32(&nrows)) return false;
  r->rows.clear();
  for (uint32_t i = 0; i < nrows; ++i) {
    uint32_t nvals;
    if (!dec->GetU32(&nvals)) return false;
    Row row;
    for (uint32_t j = 0; j < nvals; ++j) {
      Value v;
      if (!DecodeValue(dec, &v)) return false;
      row.push_back(std::move(v));
    }
    r->rows.push_back(std::move(row));
  }
  return true;
}

std::vector<uint8_t> EncodeResults(const std::vector<WireResult>& results) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(results.size()));
  for (const WireResult& r : results) EncodeWireResult(&out, r);
  return out;
}

Status DecodeResults(const std::vector<uint8_t>& payload,
                     std::vector<WireResult>* results) {
  Decoder dec(payload);
  uint32_t count;
  if (!dec.GetU32(&count)) {
    return Status::Corruption("results frame: truncated count");
  }
  results->clear();
  for (uint32_t i = 0; i < count; ++i) {
    WireResult r;
    if (!DecodeWireResult(&dec, &r)) {
      return Status::Corruption("results frame: malformed result");
    }
    results->push_back(std::move(r));
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("results frame: trailing bytes");
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeStatus(const Status& status) {
  std::vector<uint8_t> out;
  PutU8(&out, static_cast<uint8_t>(status.code()));
  PutString(&out, status.message());
  const StatementContext* ctx = status.statement_context();
  PutU8(&out, ctx != nullptr ? 1 : 0);
  if (ctx != nullptr) {
    PutI64(&out, ctx->statement_index);
    PutI64(&out, static_cast<int64_t>(ctx->source_offset));
  }
  return out;
}

namespace {

Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::Invalid(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kIOError:
      return Status::IOError(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kParseError:
      return Status::ParseError(std::move(msg));
    case StatusCode::kBindError:
      return Status::BindError(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

}  // namespace

Status DecodeStatus(const std::vector<uint8_t>& payload, Status* status) {
  Decoder dec(payload);
  uint8_t code_raw, has_ctx;
  std::string msg;
  if (!dec.GetU8(&code_raw) || !dec.GetString(&msg) ||
      !dec.GetU8(&has_ctx)) {
    return Status::Corruption("status frame: truncated");
  }
  if (code_raw > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Corruption("status frame: unknown code");
  }
  Status decoded = MakeStatus(static_cast<StatusCode>(code_raw),
                              std::move(msg));
  if (has_ctx != 0) {
    int64_t index, offset;
    if (!dec.GetI64(&index) || !dec.GetI64(&offset)) {
      return Status::Corruption("status frame: truncated context");
    }
    StatementContext ctx;
    ctx.statement_index = static_cast<int>(index);
    ctx.source_offset = static_cast<size_t>(offset);
    decoded = decoded.WithStatementContext(ctx);
  }
  if (!dec.AtEnd()) return Status::Corruption("status frame: trailing bytes");
  *status = std::move(decoded);
  return Status::OK();
}

WireResult ToWireResult(const ExecResult& r) {
  WireResult w;
  w.columns = r.result.columns;
  w.rows = r.result.rows;
  w.affected = r.affected;
  w.message = r.message;
  return w;
}

namespace {

Status WriteFull(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: writing to a peer that already hung up must surface
    // as EPIPE here, not kill the process with SIGPIPE (frames only ever
    // travel over sockets).
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write: " + std::string(strerror(errno)));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes.  *eof is set when the stream ends before
/// the first byte (a clean close); ending mid-buffer is an error.
Status ReadFull(int fd, uint8_t* data, size_t size, bool* eof) {
  *eof = false;
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read: " + std::string(strerror(errno)));
    }
    if (n == 0) {
      if (got == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, FrameType type,
                  const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::Invalid("frame payload too large");
  }
  // One buffered write per frame: prefix + type + payload.
  std::vector<uint8_t> wire;
  wire.reserve(5 + payload.size());
  PutU32(&wire, static_cast<uint32_t>(payload.size()));
  PutU8(&wire, static_cast<uint8_t>(type));
  wire.insert(wire.end(), payload.begin(), payload.end());
  return WriteFull(fd, wire.data(), wire.size());
}

Status ReadFrame(int fd, Frame* frame) {
  uint8_t header[5];
  bool eof = false;
  TDB_RETURN_NOT_OK(ReadFull(fd, header, sizeof(header), &eof));
  if (eof) return Status::NotFound("connection closed");
  Decoder dec(header, sizeof(header));
  uint32_t length;
  uint8_t type;
  dec.GetU32(&length);
  dec.GetU8(&type);
  if (length > kMaxFrameBytes) {
    return Status::Corruption("frame length exceeds limit");
  }
  frame->type = static_cast<FrameType>(type);
  frame->payload.resize(length);
  if (length > 0) {
    TDB_RETURN_NOT_OK(ReadFull(fd, frame->payload.data(), length, &eof));
    if (eof) return Status::IOError("connection closed mid-frame");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace tdb
