#ifndef CHRONOQUEL_NET_PROTOCOL_H_
#define CHRONOQUEL_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/result_set.h"
#include "types/timepoint.h"
#include "util/status.h"

namespace tdb {
namespace net {

/// The tquel wire protocol: length-prefixed frames over a byte stream.
///
///   frame := u32 payload_length (LE) | u8 type | payload
///
/// A client opens a connection, sends kHello naming a database, then loops
/// kExecute / kPinAsOf; the server answers every request with exactly one
/// response frame (kResults / kOk / kError).  All integers little-endian;
/// strings are u32 length + bytes.  Payloads are bounded by kMaxFrameBytes
/// and every decoder is bounds-checked — a malicious or truncated frame
/// yields Status, never undefined behavior (see protocol_test's fuzz).
enum class FrameType : uint8_t {
  // client -> server
  kHello = 1,    // string database name
  kExecute = 2,  // string TQuel script
  kPinAsOf = 3,  // u8 has_pin | i64 seconds (pins the session's as-of)
  kPing = 4,     // empty
  // Prepared statements: parse/plan once server-side, execute many times
  // with only argument values on the wire.  Each is answered by kResults
  // carrying exactly one WireResult (or kError).
  kPrepare = 5,       // string name | string TQuel statement text
  kExecPrepared = 6,  // string name | u32 argc | argc encoded Values
  kClose = 7,         // string name (deallocates the prepared statement)
  // server -> client
  kOk = 16,       // empty (hello / pin / ping acknowledgement)
  kResults = 17,  // encoded std::vector<WireResult>
  kError = 18,    // encoded Status
};

/// Upper bound on a single frame payload; larger announcements are
/// rejected before any allocation.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// One statement's outcome on the wire: ExecResult minus the physical
/// plan (which stays server-side; its rendered form travels as rows of an
/// explain result like any other rows).
struct WireResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected = 0;
  std::string message;
};

/// A parsed frame (payload only; the length prefix is consumed by the
/// stream layer).
struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<uint8_t> payload;
};

// --- primitive encoders (append to `out`) --------------------------------
void PutU8(std::vector<uint8_t>* out, uint8_t v);
void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutI64(std::vector<uint8_t>* out, int64_t v);
void PutF64(std::vector<uint8_t>* out, double v);
void PutString(std::vector<uint8_t>* out, const std::string& s);

/// Bounds-checked cursor over a received payload.  Every Get returns
/// false once the payload is exhausted or malformed; the cursor then
/// stays failed.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& payload)
      : Decoder(payload.data(), payload.size()) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetI64(int64_t* v);
  bool GetF64(double* v);
  bool GetString(std::string* s);

  bool failed() const { return failed_; }
  /// True when the whole payload was consumed exactly.
  bool AtEnd() const { return !failed_ && pos_ == size_; }

 private:
  bool Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// --- value / result / status codecs --------------------------------------
void EncodeValue(std::vector<uint8_t>* out, const Value& v);
bool DecodeValue(Decoder* dec, Value* v);

void EncodeWireResult(std::vector<uint8_t>* out, const WireResult& r);
bool DecodeWireResult(Decoder* dec, WireResult* r);

/// Encodes the whole script response: u32 count + results.
std::vector<uint8_t> EncodeResults(const std::vector<WireResult>& results);
Status DecodeResults(const std::vector<uint8_t>& payload,
                     std::vector<WireResult>* results);

/// Status travels as code + message + optional statement context, so the
/// client re-materializes exactly what the embedded API would have
/// returned.
std::vector<uint8_t> EncodeStatus(const Status& status);
Status DecodeStatus(const std::vector<uint8_t>& payload, Status* status);

/// Narrowing helper: drops the plan, keeps everything a client can use.
WireResult ToWireResult(const ExecResult& r);

// --- framing over a file descriptor --------------------------------------
/// Writes one frame (length prefix + type + payload).  Handles partial
/// writes and EINTR; returns IOError on a broken connection.
Status WriteFrame(int fd, FrameType type, const std::vector<uint8_t>& payload);

/// Reads one frame.  A clean EOF before any byte of the prefix returns
/// NotFound (connection closed); anything torn mid-frame is IOError, and
/// an announced length beyond kMaxFrameBytes is Corruption.
Status ReadFrame(int fd, Frame* frame);

}  // namespace net
}  // namespace tdb

#endif  // CHRONOQUEL_NET_PROTOCOL_H_
