#ifndef CHRONOQUEL_NET_SERVER_H_
#define CHRONOQUEL_NET_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "exec/worker_pool.h"
#include "net/protocol.h"
#include "util/status.h"

namespace tdb {
namespace net {

/// Maps database names to open Database instances, opening each under a
/// configured root directory on first use.  All connections to the same
/// name share one Database (and therefore one lock table, journal, and
/// logical clock); each connection gets its own Session.
class DatabaseRegistry {
 public:
  /// `root` is the directory databases live under (<root>/<name>);
  /// `options` is the template every database opens with (env, durability,
  /// exec knobs — start_time/clock state comes from each database's own
  /// persisted clock).
  DatabaseRegistry(std::string root, DatabaseOptions options);

  /// The database named `name`, opened on first use.  Names are
  /// restricted to [A-Za-z0-9_-]+ so a wire-supplied name can never
  /// escape the root directory.
  Result<Database*> GetOrOpen(const std::string& name);

  /// Databases currently open, in name order.
  std::vector<std::string> OpenNames() const;

 private:
  std::string root_;
  DatabaseOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Database>> dbs_;
};

struct ServerOptions {
  /// Unix-domain socket path (the primary transport: no ports to
  /// coordinate, works in every sandbox).  Empty selects TCP instead.
  std::string unix_path;
  /// TCP port, used when unix_path is empty; 0 picks an ephemeral port
  /// (read it back from port() after Start).
  int tcp_port = 0;
  /// Connection multiplexing.  Unset defers to TDB_SERVER_EPOLL; the
  /// default (off) dedicates one thread to every connection.  On, a single
  /// epoll event loop watches every connection and hands ready frames to a
  /// bounded worker pool, so N mostly-idle clients cost N file descriptors
  /// and a fixed thread count instead of N parked threads.
  std::optional<bool> epoll;
  /// Worker threads for epoll mode; 0 sizes from hardware concurrency
  /// (clamped to [2, 16]).
  int epoll_workers = 0;
};

/// The tquel server: accepts connections, speaks the wire protocol
/// (net/protocol.h), and runs every connection's statements through its
/// own Session — so concurrency, snapshot pinning, and group commit all
/// come from the service layer underneath, not from the server itself.
///
/// Two dispatch modes share one frame handler (DispatchFrame):
///
///  - thread-per-connection (default): each accepted socket gets a thread
///    that loops read-frame / dispatch, and a blocked writer parks its
///    thread on the relation lock exactly like an embedded caller would;
///  - epoll (ServerOptions::epoll / TDB_SERVER_EPOLL): one event loop
///    thread owns the listener and every connection; a ready connection is
///    disarmed (EPOLLONESHOT) and handed to a bounded TaskPool worker,
///    which reads exactly one frame, dispatches it, and re-arms.  One
///    in-flight frame per connection preserves the Session contract
///    (sessions are single-threaded) without per-connection locks.
class Server {
 public:
  Server(DatabaseRegistry* registry, ServerOptions options);
  ~Server();

  /// Binds, listens, and starts the accept thread (or the event loop).
  Status Start();

  /// Stops accepting, closes every live connection, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound TCP port (after Start, TCP mode only).
  int port() const { return port_; }

  /// True when Start selected the epoll event loop (test observability).
  bool epoll_mode() const { return use_epoll_; }

 private:
  /// One connection's state, shared by both modes: the socket and the
  /// session established by its kHello.
  struct Conn {
    explicit Conn(int fd_in) : fd(fd_in) {}
    int fd;
    std::unique_ptr<Session> session;
  };

  /// Handles one request frame: runs it against conn's session and writes
  /// the one response frame.  Returns false when the connection is beyond
  /// answering (write failed) and should be torn down.
  bool DispatchFrame(Conn& conn, const Frame& frame);

  // --- thread-per-connection mode ---
  void AcceptLoop();
  void ServeConnection(int fd);

  // --- epoll mode ---
  Status StartEpoll();
  void EpollLoop();
  void AcceptReady();
  /// Worker-side: one frame read + dispatch + re-arm (or teardown).
  void HandleConnReadable(Conn* conn);
  void CloseConn(Conn* conn);

  DatabaseRegistry* registry_;
  ServerOptions options_;
  /// Atomic: Stop() swaps in -1 and closes while AcceptLoop reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;  // accept loop or epoll event loop
  std::mutex mu_;  // guards conns_, conn_fds_, and stopping_
  bool stopping_ = false;
  std::vector<std::thread> conns_;
  /// Live connection sockets, so Stop() can shut them down and unblock
  /// their threads' frame reads; each thread deregisters its own fd
  /// before closing it.
  std::vector<int> conn_fds_;

  bool use_epoll_ = false;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop() pokes the event loop awake
  std::unique_ptr<TaskPool> pool_;
  std::mutex conn_mu_;  // guards epoll_conns_
  std::map<int, std::unique_ptr<Conn>> epoll_conns_;
};

}  // namespace net
}  // namespace tdb

#endif  // CHRONOQUEL_NET_SERVER_H_
