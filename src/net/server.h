#ifndef CHRONOQUEL_NET_SERVER_H_
#define CHRONOQUEL_NET_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "util/status.h"

namespace tdb {
namespace net {

/// Maps database names to open Database instances, opening each under a
/// configured root directory on first use.  All connections to the same
/// name share one Database (and therefore one lock table, journal, and
/// logical clock); each connection gets its own Session.
class DatabaseRegistry {
 public:
  /// `root` is the directory databases live under (<root>/<name>);
  /// `options` is the template every database opens with (env, durability,
  /// exec knobs — start_time/clock state comes from each database's own
  /// persisted clock).
  DatabaseRegistry(std::string root, DatabaseOptions options);

  /// The database named `name`, opened on first use.  Names are
  /// restricted to [A-Za-z0-9_-]+ so a wire-supplied name can never
  /// escape the root directory.
  Result<Database*> GetOrOpen(const std::string& name);

  /// Databases currently open, in name order.
  std::vector<std::string> OpenNames() const;

 private:
  std::string root_;
  DatabaseOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Database>> dbs_;
};

struct ServerOptions {
  /// Unix-domain socket path (the primary transport: no ports to
  /// coordinate, works in every sandbox).  Empty selects TCP instead.
  std::string unix_path;
  /// TCP port, used when unix_path is empty; 0 picks an ephemeral port
  /// (read it back from port() after Start).
  int tcp_port = 0;
};

/// The tquel server: accepts connections, speaks the wire protocol
/// (net/protocol.h), and runs every connection's statements through its
/// own Session — so concurrency, snapshot pinning, and group commit all
/// come from the service layer underneath, not from the server itself.
///
/// One thread per connection: client count is bounded by the load
/// generator's closed loop, and a blocked writer parks its thread on the
/// relation lock exactly like an embedded caller would.
class Server {
 public:
  Server(DatabaseRegistry* registry, ServerOptions options);
  ~Server();

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Stops accepting, closes every live connection, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound TCP port (after Start, TCP mode only).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  DatabaseRegistry* registry_;
  ServerOptions options_;
  /// Atomic: Stop() swaps in -1 and closes while AcceptLoop reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;  // guards conns_ and stopping_
  bool stopping_ = false;
  std::vector<std::thread> conns_;
};

}  // namespace net
}  // namespace tdb

#endif  // CHRONOQUEL_NET_SERVER_H_
