file(REMOVE_RECURSE
  "CMakeFiles/isam_file_test.dir/isam_file_test.cc.o"
  "CMakeFiles/isam_file_test.dir/isam_file_test.cc.o.d"
  "isam_file_test"
  "isam_file_test.pdb"
  "isam_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isam_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
