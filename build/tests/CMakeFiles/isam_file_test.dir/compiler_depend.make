# Empty compiler generated dependencies file for isam_file_test.
# This may be replaced when dependencies are built.
