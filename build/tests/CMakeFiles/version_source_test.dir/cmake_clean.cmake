file(REMOVE_RECURSE
  "CMakeFiles/version_source_test.dir/version_source_test.cc.o"
  "CMakeFiles/version_source_test.dir/version_source_test.cc.o.d"
  "version_source_test"
  "version_source_test.pdb"
  "version_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
