# Empty dependencies file for version_source_test.
# This may be replaced when dependencies are built.
