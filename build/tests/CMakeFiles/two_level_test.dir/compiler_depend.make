# Empty compiler generated dependencies file for two_level_test.
# This may be replaced when dependencies are built.
