# Empty dependencies file for stringx_test.
# This may be replaced when dependencies are built.
