file(REMOVE_RECURSE
  "CMakeFiles/stringx_test.dir/stringx_test.cc.o"
  "CMakeFiles/stringx_test.dir/stringx_test.cc.o.d"
  "stringx_test"
  "stringx_test.pdb"
  "stringx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stringx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
