file(REMOVE_RECURSE
  "CMakeFiles/append_only_test.dir/append_only_test.cc.o"
  "CMakeFiles/append_only_test.dir/append_only_test.cc.o.d"
  "append_only_test"
  "append_only_test.pdb"
  "append_only_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/append_only_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
