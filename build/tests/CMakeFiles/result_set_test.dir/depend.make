# Empty dependencies file for result_set_test.
# This may be replaced when dependencies are built.
