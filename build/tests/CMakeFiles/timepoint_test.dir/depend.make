# Empty dependencies file for timepoint_test.
# This may be replaced when dependencies are built.
