file(REMOVE_RECURSE
  "CMakeFiles/timepoint_test.dir/timepoint_test.cc.o"
  "CMakeFiles/timepoint_test.dir/timepoint_test.cc.o.d"
  "timepoint_test"
  "timepoint_test.pdb"
  "timepoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timepoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
