file(REMOVE_RECURSE
  "CMakeFiles/hash_file_test.dir/hash_file_test.cc.o"
  "CMakeFiles/hash_file_test.dir/hash_file_test.cc.o.d"
  "hash_file_test"
  "hash_file_test.pdb"
  "hash_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
