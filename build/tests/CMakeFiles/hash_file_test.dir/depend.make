# Empty dependencies file for hash_file_test.
# This may be replaced when dependencies are built.
