# Empty dependencies file for btree_file_test.
# This may be replaced when dependencies are built.
