file(REMOVE_RECURSE
  "CMakeFiles/btree_file_test.dir/btree_file_test.cc.o"
  "CMakeFiles/btree_file_test.dir/btree_file_test.cc.o.d"
  "btree_file_test"
  "btree_file_test.pdb"
  "btree_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
