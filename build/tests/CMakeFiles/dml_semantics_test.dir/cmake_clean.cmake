file(REMOVE_RECURSE
  "CMakeFiles/dml_semantics_test.dir/dml_semantics_test.cc.o"
  "CMakeFiles/dml_semantics_test.dir/dml_semantics_test.cc.o.d"
  "dml_semantics_test"
  "dml_semantics_test.pdb"
  "dml_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dml_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
