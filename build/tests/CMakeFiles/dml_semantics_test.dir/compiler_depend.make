# Empty compiler generated dependencies file for dml_semantics_test.
# This may be replaced when dependencies are built.
