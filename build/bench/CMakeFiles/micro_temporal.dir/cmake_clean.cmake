file(REMOVE_RECURSE
  "CMakeFiles/micro_temporal.dir/micro_temporal.cc.o"
  "CMakeFiles/micro_temporal.dir/micro_temporal.cc.o.d"
  "micro_temporal"
  "micro_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
