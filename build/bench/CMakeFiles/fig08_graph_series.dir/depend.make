# Empty dependencies file for fig08_graph_series.
# This may be replaced when dependencies are built.
