file(REMOVE_RECURSE
  "CMakeFiles/fig08_graph_series.dir/fig08_graph_series.cc.o"
  "CMakeFiles/fig08_graph_series.dir/fig08_graph_series.cc.o.d"
  "fig08_graph_series"
  "fig08_graph_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_graph_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
