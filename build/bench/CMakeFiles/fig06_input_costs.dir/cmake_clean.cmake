file(REMOVE_RECURSE
  "CMakeFiles/fig06_input_costs.dir/fig06_input_costs.cc.o"
  "CMakeFiles/fig06_input_costs.dir/fig06_input_costs.cc.o.d"
  "fig06_input_costs"
  "fig06_input_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_input_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
