# Empty compiler generated dependencies file for fig06_input_costs.
# This may be replaced when dependencies are built.
