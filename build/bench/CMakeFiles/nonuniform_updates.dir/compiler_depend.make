# Empty compiler generated dependencies file for nonuniform_updates.
# This may be replaced when dependencies are built.
