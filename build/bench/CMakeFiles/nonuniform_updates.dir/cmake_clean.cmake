file(REMOVE_RECURSE
  "CMakeFiles/nonuniform_updates.dir/nonuniform_updates.cc.o"
  "CMakeFiles/nonuniform_updates.dir/nonuniform_updates.cc.o.d"
  "nonuniform_updates"
  "nonuniform_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonuniform_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
