# Empty compiler generated dependencies file for response_time_model.
# This may be replaced when dependencies are built.
