file(REMOVE_RECURSE
  "CMakeFiles/response_time_model.dir/response_time_model.cc.o"
  "CMakeFiles/response_time_model.dir/response_time_model.cc.o.d"
  "response_time_model"
  "response_time_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/response_time_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
