# Empty compiler generated dependencies file for ablation_btree.
# This may be replaced when dependencies are built.
