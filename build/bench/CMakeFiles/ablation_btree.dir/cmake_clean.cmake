file(REMOVE_RECURSE
  "CMakeFiles/ablation_btree.dir/ablation_btree.cc.o"
  "CMakeFiles/ablation_btree.dir/ablation_btree.cc.o.d"
  "ablation_btree"
  "ablation_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
