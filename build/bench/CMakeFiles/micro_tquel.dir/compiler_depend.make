# Empty compiler generated dependencies file for micro_tquel.
# This may be replaced when dependencies are built.
