file(REMOVE_RECURSE
  "CMakeFiles/micro_tquel.dir/micro_tquel.cc.o"
  "CMakeFiles/micro_tquel.dir/micro_tquel.cc.o.d"
  "micro_tquel"
  "micro_tquel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tquel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
