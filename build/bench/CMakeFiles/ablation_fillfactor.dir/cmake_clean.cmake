file(REMOVE_RECURSE
  "CMakeFiles/ablation_fillfactor.dir/ablation_fillfactor.cc.o"
  "CMakeFiles/ablation_fillfactor.dir/ablation_fillfactor.cc.o.d"
  "ablation_fillfactor"
  "ablation_fillfactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fillfactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
