# Empty compiler generated dependencies file for ablation_fillfactor.
# This may be replaced when dependencies are built.
