# Empty compiler generated dependencies file for fig05_space.
# This may be replaced when dependencies are built.
