file(REMOVE_RECURSE
  "CMakeFiles/fig05_space.dir/fig05_space.cc.o"
  "CMakeFiles/fig05_space.dir/fig05_space.cc.o.d"
  "fig05_space"
  "fig05_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
