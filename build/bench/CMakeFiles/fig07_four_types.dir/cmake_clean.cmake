file(REMOVE_RECURSE
  "CMakeFiles/fig07_four_types.dir/fig07_four_types.cc.o"
  "CMakeFiles/fig07_four_types.dir/fig07_four_types.cc.o.d"
  "fig07_four_types"
  "fig07_four_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_four_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
