# Empty compiler generated dependencies file for fig07_four_types.
# This may be replaced when dependencies are built.
