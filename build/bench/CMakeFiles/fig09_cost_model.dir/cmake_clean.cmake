file(REMOVE_RECURSE
  "CMakeFiles/fig09_cost_model.dir/fig09_cost_model.cc.o"
  "CMakeFiles/fig09_cost_model.dir/fig09_cost_model.cc.o.d"
  "fig09_cost_model"
  "fig09_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
