file(REMOVE_RECURSE
  "CMakeFiles/fig10_improvements.dir/fig10_improvements.cc.o"
  "CMakeFiles/fig10_improvements.dir/fig10_improvements.cc.o.d"
  "fig10_improvements"
  "fig10_improvements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_improvements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
