# Empty dependencies file for fig10_improvements.
# This may be replaced when dependencies are built.
