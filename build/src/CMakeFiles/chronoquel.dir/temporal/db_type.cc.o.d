src/CMakeFiles/chronoquel.dir/temporal/db_type.cc.o: \
 /root/repo/src/temporal/db_type.cc /usr/include/stdc-predef.h \
 /root/repo/src/temporal/db_type.h
