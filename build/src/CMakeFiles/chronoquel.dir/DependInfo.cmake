
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/workload.cc" "src/CMakeFiles/chronoquel.dir/benchlib/workload.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/benchlib/workload.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/chronoquel.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/core/database.cc" "src/CMakeFiles/chronoquel.dir/core/database.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/core/database.cc.o.d"
  "/root/repo/src/core/relation.cc" "src/CMakeFiles/chronoquel.dir/core/relation.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/core/relation.cc.o.d"
  "/root/repo/src/core/result_set.cc" "src/CMakeFiles/chronoquel.dir/core/result_set.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/core/result_set.cc.o.d"
  "/root/repo/src/diskmodel/disk_model.cc" "src/CMakeFiles/chronoquel.dir/diskmodel/disk_model.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/diskmodel/disk_model.cc.o.d"
  "/root/repo/src/env/env.cc" "src/CMakeFiles/chronoquel.dir/env/env.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/env/env.cc.o.d"
  "/root/repo/src/exec/ddl_executor.cc" "src/CMakeFiles/chronoquel.dir/exec/ddl_executor.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/exec/ddl_executor.cc.o.d"
  "/root/repo/src/exec/dml_executor.cc" "src/CMakeFiles/chronoquel.dir/exec/dml_executor.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/exec/dml_executor.cc.o.d"
  "/root/repo/src/exec/eval.cc" "src/CMakeFiles/chronoquel.dir/exec/eval.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/exec/eval.cc.o.d"
  "/root/repo/src/exec/exec_env.cc" "src/CMakeFiles/chronoquel.dir/exec/exec_env.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/exec/exec_env.cc.o.d"
  "/root/repo/src/exec/planner.cc" "src/CMakeFiles/chronoquel.dir/exec/planner.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/exec/planner.cc.o.d"
  "/root/repo/src/exec/query_executor.cc" "src/CMakeFiles/chronoquel.dir/exec/query_executor.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/exec/query_executor.cc.o.d"
  "/root/repo/src/exec/version.cc" "src/CMakeFiles/chronoquel.dir/exec/version.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/exec/version.cc.o.d"
  "/root/repo/src/exec/version_source.cc" "src/CMakeFiles/chronoquel.dir/exec/version_source.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/exec/version_source.cc.o.d"
  "/root/repo/src/index/secondary_index.cc" "src/CMakeFiles/chronoquel.dir/index/secondary_index.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/index/secondary_index.cc.o.d"
  "/root/repo/src/storage/btree_file.cc" "src/CMakeFiles/chronoquel.dir/storage/btree_file.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/storage/btree_file.cc.o.d"
  "/root/repo/src/storage/hash_file.cc" "src/CMakeFiles/chronoquel.dir/storage/hash_file.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/storage/hash_file.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/chronoquel.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/io_stats.cc" "src/CMakeFiles/chronoquel.dir/storage/io_stats.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/isam_file.cc" "src/CMakeFiles/chronoquel.dir/storage/isam_file.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/storage/isam_file.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/chronoquel.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/storage/pager.cc.o.d"
  "/root/repo/src/storage/storage_file.cc" "src/CMakeFiles/chronoquel.dir/storage/storage_file.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/storage/storage_file.cc.o.d"
  "/root/repo/src/temporal/db_type.cc" "src/CMakeFiles/chronoquel.dir/temporal/db_type.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/temporal/db_type.cc.o.d"
  "/root/repo/src/tquel/ast.cc" "src/CMakeFiles/chronoquel.dir/tquel/ast.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/tquel/ast.cc.o.d"
  "/root/repo/src/tquel/binder.cc" "src/CMakeFiles/chronoquel.dir/tquel/binder.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/tquel/binder.cc.o.d"
  "/root/repo/src/tquel/lexer.cc" "src/CMakeFiles/chronoquel.dir/tquel/lexer.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/tquel/lexer.cc.o.d"
  "/root/repo/src/tquel/parser.cc" "src/CMakeFiles/chronoquel.dir/tquel/parser.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/tquel/parser.cc.o.d"
  "/root/repo/src/tquel/printer.cc" "src/CMakeFiles/chronoquel.dir/tquel/printer.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/tquel/printer.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/chronoquel.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/types/schema.cc.o.d"
  "/root/repo/src/types/timepoint.cc" "src/CMakeFiles/chronoquel.dir/types/timepoint.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/types/timepoint.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/chronoquel.dir/types/value.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/types/value.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/chronoquel.dir/util/status.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/util/status.cc.o.d"
  "/root/repo/src/util/stringx.cc" "src/CMakeFiles/chronoquel.dir/util/stringx.cc.o" "gcc" "src/CMakeFiles/chronoquel.dir/util/stringx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
