# Empty compiler generated dependencies file for chronoquel.
# This may be replaced when dependencies are built.
