file(REMOVE_RECURSE
  "libchronoquel.a"
)
