# Empty dependencies file for tquel_shell.
# This may be replaced when dependencies are built.
