file(REMOVE_RECURSE
  "CMakeFiles/tquel_shell.dir/tquel_shell.cpp.o"
  "CMakeFiles/tquel_shell.dir/tquel_shell.cpp.o.d"
  "tquel_shell"
  "tquel_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tquel_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
