# Empty dependencies file for version_mgmt.
# This may be replaced when dependencies are built.
