file(REMOVE_RECURSE
  "CMakeFiles/version_mgmt.dir/version_mgmt.cpp.o"
  "CMakeFiles/version_mgmt.dir/version_mgmt.cpp.o.d"
  "version_mgmt"
  "version_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
