#include "storage/isam_file.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "storage_test_util.h"
#include "util/random.h"

namespace tdb {
namespace {

using testutil::DrainKeys;
using testutil::KeyedRecord;
using testutil::SmallLayout;

class IsamFileTest : public ::testing::Test {
 protected:
  std::unique_ptr<IsamFile> BulkLoad(int n, int fillfactor,
                                     uint16_t record_size = 32,
                                     bool shuffled = false) {
    std::vector<std::vector<uint8_t>> records;
    records.reserve(n);
    for (int i = 0; i < n; ++i) records.push_back(KeyedRecord(i, record_size));
    if (shuffled) {
      Random rng(9);
      for (size_t i = records.size(); i > 1; --i) {
        std::swap(records[i - 1], records[rng.Uniform(i)]);
      }
    }
    auto pager = Pager::Open(&env_, "/isam", &counters_);
    EXPECT_TRUE(pager.ok());
    auto file = IsamFile::BulkLoad(std::move(*pager), SmallLayout(record_size),
                                   std::move(records), fillfactor, &meta_);
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    return std::move(file).value();
  }

  MemEnv env_;
  IoCounters counters_;
  IsamMeta meta_;
};

TEST_F(IsamFileTest, BulkLoadBuildsDataAndDirectory) {
  uint16_t cap = Page::Capacity(32);
  auto file = BulkLoad(cap * 10, 100);
  EXPECT_EQ(meta_.data_pages, 10u);
  EXPECT_EQ(meta_.level_counts.size(), 1u);  // 10 entries fit in one root
  EXPECT_EQ(file->page_count(), 11u);
}

TEST_F(IsamFileTest, FillFactorControlsDataPages) {
  uint16_t cap = Page::Capacity(32);
  uint16_t per_page = static_cast<uint16_t>(cap * 50 / 100);
  uint32_t n = static_cast<uint32_t>(cap) * 10;
  BulkLoad(static_cast<int>(n), 50);
  EXPECT_EQ(meta_.data_pages, (n + per_page - 1) / per_page);
}

TEST_F(IsamFileTest, PaperDirectorySizes) {
  // 1024 temporal tuples at 50% loading: 256 data pages, i4 keys give a
  // fanout of 128, so the directory is 2 leaf pages + 1 root = total 259
  // pages, exactly Figure 5's ISAM size.
  std::vector<std::vector<uint8_t>> records;
  for (int i = 0; i < 1024; ++i) records.push_back(KeyedRecord(i, 124));
  auto pager = Pager::Open(&env_, "/paper", &counters_);
  IsamMeta meta;
  auto file = IsamFile::BulkLoad(std::move(*pager), SmallLayout(124),
                                 std::move(records), 50, &meta);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(meta.data_pages, 256u);
  ASSERT_EQ(meta.level_counts.size(), 2u);
  EXPECT_EQ(meta.level_counts[0], 2u);
  EXPECT_EQ(meta.level_counts[1], 1u);
  EXPECT_EQ((*file)->page_count(), 259u);
}

TEST_F(IsamFileTest, ScanKeyFindsEveryKey) {
  auto file = BulkLoad(200, 100, 32, /*shuffled=*/true);
  for (int key : {0, 1, 57, 99, 123, 199}) {
    auto cur = file->ScanKey(Value::Int4(key));
    ASSERT_TRUE(cur.ok());
    EXPECT_EQ(DrainKeys(cur->get()), std::vector<int32_t>{key}) << key;
  }
}

TEST_F(IsamFileTest, ScanKeyMissingKeyFindsNothing) {
  auto file = BulkLoad(100, 100);
  auto cur = file->ScanKey(Value::Int4(5000));
  EXPECT_TRUE(DrainKeys(cur->get()).empty());
  auto cur2 = file->ScanKey(Value::Int4(-3));
  EXPECT_TRUE(DrainKeys(cur2->get()).empty());
}

TEST_F(IsamFileTest, ScanIsKeyOrderedAndSkipsDirectory) {
  auto file = BulkLoad(300, 100, 32, /*shuffled=*/true);
  ASSERT_TRUE(file->pager()->FlushAndDrop().ok());
  counters_.Reset();
  auto cur = file->Scan();
  auto keys = DrainKeys(cur->get());
  ASSERT_EQ(keys.size(), 300u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Sequential scans never touch the directory.
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kDirectory)], 0u);
  EXPECT_EQ(counters_.TotalReads(), meta_.data_pages);
}

TEST_F(IsamFileTest, LookupCostIsDirectoryPlusChain) {
  uint16_t cap = Page::Capacity(32);
  auto file = BulkLoad(cap * 10, 100);
  ASSERT_TRUE(file->pager()->FlushAndDrop().ok());
  counters_.Reset();
  auto cur = file->ScanKey(Value::Int4(5));
  (void)DrainKeys(cur->get());
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kDirectory)], 1u);
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kData)], 1u);
}

TEST_F(IsamFileTest, InsertsOverflowTheTargetPage) {
  uint16_t cap = Page::Capacity(32);
  auto file = BulkLoad(cap * 4, 100);
  uint32_t before = file->page_count();
  // New versions of key 1 overflow its data page.
  for (int v = 0; v < cap + 1; ++v) {
    auto rec = KeyedRecord(1);
    ASSERT_TRUE(file->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  EXPECT_EQ(file->page_count(), before + 2);
  auto cur = file->ScanKey(Value::Int4(1));
  EXPECT_EQ(DrainKeys(cur->get()).size(), static_cast<size_t>(cap + 2));
  // Other keys in other pages are untouched.
  auto cur2 = file->ScanKey(Value::Int4(cap * 2));
  EXPECT_EQ(DrainKeys(cur2->get()).size(), 1u);
}

TEST_F(IsamFileTest, ScanIncludesOverflowRecords) {
  uint16_t cap = Page::Capacity(32);
  auto file = BulkLoad(cap * 2, 100);
  for (int v = 0; v < 5; ++v) {
    auto rec = KeyedRecord(0);
    ASSERT_TRUE(file->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  auto cur = file->Scan();
  EXPECT_EQ(DrainKeys(cur->get()).size(), static_cast<size_t>(cap * 2 + 5));
}

TEST_F(IsamFileTest, EmptyRelationStillLoadable) {
  auto file = BulkLoad(0, 100);
  EXPECT_GE(file->page_count(), 2u);  // one data page + root
  auto cur = file->Scan();
  EXPECT_TRUE(DrainKeys(cur->get()).empty());
  // Inserts after an empty load still work.
  auto rec = KeyedRecord(3);
  ASSERT_TRUE(file->Insert(rec.data(), rec.size(), nullptr).ok());
  auto cur2 = file->ScanKey(Value::Int4(3));
  EXPECT_EQ(DrainKeys(cur2->get()).size(), 1u);
}

TEST_F(IsamFileTest, BulkLoadDivertsKeyRunsIntoOverflow) {
  // Regression: bulk loading many versions per key must not let a key run
  // span primary pages, or keyed access (which starts at the one page the
  // directory names) would miss versions.  Runs are diverted into the
  // page's overflow chain instead.
  uint16_t cap = Page::Capacity(32);
  std::vector<std::vector<uint8_t>> records;
  const int versions = cap;  // each key has a full page worth of versions
  for (int key = 0; key < 6; ++key) {
    for (int v = 0; v < versions; ++v) {
      records.push_back(KeyedRecord(key, 32, static_cast<uint8_t>(v + 1)));
    }
  }
  auto pager = Pager::Open(&env_, "/span", &counters_);
  IsamMeta meta;
  auto file = IsamFile::BulkLoad(std::move(*pager), SmallLayout(),
                                 std::move(records), 70, &meta);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  // Every key's full version set is reachable through keyed access.
  for (int key = 0; key < 6; ++key) {
    auto cur = (*file)->ScanKey(Value::Int4(key));
    ASSERT_TRUE(cur.ok());
    EXPECT_EQ(DrainKeys(cur->get()).size(), static_cast<size_t>(versions))
        << "key " << key;
  }
  // ...and the full scan sees everything exactly once.
  auto all = (*file)->Scan();
  EXPECT_EQ(DrainKeys(all->get()).size(), static_cast<size_t>(6 * versions));
  // No primary page starts in the middle of a run: each page's first key
  // differs from the previous page's first key.
  EXPECT_GT(meta.data_pages, 1u);
}

TEST_F(IsamFileTest, KeyedProbeCostUnchangedBySpanningLogic) {
  // The single-version case (the paper's benchmark at modify time) still
  // costs one directory traversal + one data page group.
  auto file = BulkLoad(static_cast<int>(Page::Capacity(32)) * 8, 100);
  // Probe a key that is the LAST slot of its page (the boundary case).
  int32_t page_max = Page::Capacity(32) - 1;
  ASSERT_TRUE(file->pager()->FlushAndDrop().ok());
  counters_.Reset();
  auto cur = file->ScanKey(Value::Int4(page_max));
  EXPECT_EQ(DrainKeys(cur->get()), std::vector<int32_t>{page_max});
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kDirectory)], 1u);
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kData)], 1u);
}

TEST_F(IsamFileTest, MetaSerializeRoundTrip) {
  BulkLoad(500, 50);
  auto parsed = IsamMeta::Parse(meta_.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->data_pages, meta_.data_pages);
  EXPECT_EQ(parsed->level_counts, meta_.level_counts);
  EXPECT_FALSE(IsamMeta::Parse("").ok());
  EXPECT_FALSE(IsamMeta::Parse("5").ok());      // no root level
  EXPECT_FALSE(IsamMeta::Parse("5:2").ok());    // top level != 1
  EXPECT_TRUE(IsamMeta::Parse("5:2:1").ok());
}

TEST_F(IsamFileTest, ReopenWithMeta) {
  {
    auto file = BulkLoad(200, 100);
    ASSERT_TRUE(file->pager()->Flush().ok());
  }
  auto pager = Pager::Open(&env_, "/isam", &counters_);
  auto file = IsamFile::Open(std::move(*pager), SmallLayout(), meta_);
  ASSERT_TRUE(file.ok());
  auto cur = (*file)->ScanKey(Value::Int4(123));
  EXPECT_EQ(DrainKeys(cur->get()), std::vector<int32_t>{123});
}

TEST_F(IsamFileTest, UpdateInPlaceAndErase) {
  auto file = BulkLoad(50, 100);
  auto cur = file->ScanKey(Value::Int4(7));
  ASSERT_TRUE((*cur->get()).Next().value());
  Tid tid = cur->get()->tid();
  auto updated = KeyedRecord(7, 32, 0x66);
  ASSERT_TRUE(file->UpdateInPlace(tid, updated.data(), updated.size()).ok());
  EXPECT_EQ(*file->Fetch(tid), updated);
  ASSERT_TRUE(file->Erase(tid).ok());
  auto cur2 = file->ScanKey(Value::Int4(7));
  EXPECT_TRUE(DrainKeys(cur2->get()).empty());
}

// Property: every key is findable at several fill factors and sizes, and
// directory depth grows as expected.
class IsamSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IsamSweep, LookupsWork) {
  auto [n, fillfactor] = GetParam();
  MemEnv env;
  IoCounters counters;
  std::vector<std::vector<uint8_t>> records;
  for (int i = 0; i < n; ++i) records.push_back(KeyedRecord(i * 3));
  auto pager = Pager::Open(&env, "/i", &counters);
  IsamMeta meta;
  auto file = IsamFile::BulkLoad(std::move(*pager), SmallLayout(),
                                 std::move(records), fillfactor, &meta);
  ASSERT_TRUE(file.ok());
  Random rng(static_cast<uint64_t>(n + fillfactor));
  for (int probe = 0; probe < 50; ++probe) {
    int32_t key = static_cast<int32_t>(rng.Uniform(n)) * 3;
    auto cur = (*file)->ScanKey(Value::Int4(key));
    ASSERT_TRUE(cur.ok());
    EXPECT_EQ(DrainKeys(cur->get()), std::vector<int32_t>{key});
    // Keys between stored keys are not found.
    auto miss = (*file)->ScanKey(Value::Int4(key + 1));
    EXPECT_TRUE(DrainKeys(miss->get()).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFill, IsamSweep,
    ::testing::Combine(::testing::Values(10, 100, 1000, 5000),
                       ::testing::Values(100, 50, 25)));

}  // namespace
}  // namespace tdb
