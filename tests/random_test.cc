#include "util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace tdb {
namespace {

TEST(RandomTest, DeterministicPerSeed) {
  Random a(1);
  Random b(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(10), 10u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear in 1000 draws
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextStringShapeAndSpread) {
  Random rng(5);
  std::string s = rng.NextString(96);
  EXPECT_EQ(s.size(), 96u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
  EXPECT_NE(rng.NextString(8), rng.NextString(8));
}

TEST(RandomTest, RoughUniformity) {
  Random rng(11);
  int buckets[8] = {0};
  for (int i = 0; i < 8000; ++i) ++buckets[rng.Uniform(8)];
  for (int b : buckets) {
    EXPECT_GT(b, 800);
    EXPECT_LT(b, 1200);
  }
}

}  // namespace
}  // namespace tdb
