// Fault-injection and error-path tests: corrupted files, malformed input,
// and misuse must surface as clean Status errors, never crashes or silent
// wrong answers.

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/env.h"

namespace tdb {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  std::unique_ptr<Database> Open() {
    DatabaseOptions options;
    options.env = &env_;
    auto db = Database::Open("/db", options);
    EXPECT_TRUE(db.ok());
    return std::move(db).value();
  }

  MemEnv env_;
};

TEST_F(FaultTest, CorruptedCatalogFailsToLoad) {
  {
    auto db = Open();
    ASSERT_TRUE((*db).Execute("create r (id = i4)").ok());
  }
  ASSERT_TRUE(env_.WriteStringToFile("/db/catalog.meta",
                                     "relation r\ngarbage line here\nend\n")
                  .ok());
  DatabaseOptions options;
  options.env = &env_;
  auto reopened = Database::Open("/db", options);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(FaultTest, TruncatedDataFileIsDetected) {
  {
    auto db = Open();
    ASSERT_TRUE((*db).Execute("create r (id = i4)").ok());
    ASSERT_TRUE((*db).Execute("append to r (id = 1)").ok());
  }
  // Misalign the data file: not a whole number of pages.
  ASSERT_TRUE(env_.WriteStringToFile("/db/r.dat", "short").ok());
  auto db = Open();
  ASSERT_TRUE(db->Execute("range of x is r").ok());
  auto r = db->Execute("retrieve (x.id)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(FaultTest, MissingDataFileBehavesAsEmpty) {
  {
    auto db = Open();
    ASSERT_TRUE((*db).Execute("create r (id = i4)").ok());
    ASSERT_TRUE((*db).Execute("append to r (id = 1)").ok());
  }
  ASSERT_TRUE(env_.DeleteFile("/db/r.dat").ok());
  auto db = Open();
  ASSERT_TRUE(db->Execute("range of x is r").ok());
  // A heap relation whose file vanished opens empty (fresh file) rather
  // than failing — the catalog is the source of truth for existence.
  auto r = db->Execute("retrieve (x.id)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result.num_rows(), 0u);
}

TEST_F(FaultTest, HashFileShorterThanBucketsIsCorruption) {
  {
    auto db = Open();
    ASSERT_TRUE((*db).Execute("create r (id = i4, pad = c100)").ok());
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(
          (*db).Execute("append to r (id = " + std::to_string(i) + ")").ok());
    }
    ASSERT_TRUE(
        (*db).Execute("modify r to hash on id where fillfactor = 100").ok());
  }
  // Truncate below the bucket region (keep page alignment).
  auto file = env_.OpenOrCreate("/db/r.dat");
  ASSERT_TRUE((*file)->Truncate(kPageSize).ok());
  auto db = Open();
  ASSERT_TRUE(db->Execute("range of x is r").ok());
  auto r = db->Execute("retrieve (x.id)");
  EXPECT_FALSE(r.ok());
}

TEST_F(FaultTest, CopyRejectsMalformedLines) {
  auto db = Open();
  ASSERT_TRUE(db->Execute("create r (id = i4, v = i4)").ok());
  ASSERT_TRUE(env_.WriteStringToFile("/load1", "1\t2\t3\t4\n").ok());
  EXPECT_FALSE(db->Execute("copy r from \"/load1\"").ok());  // arity
  ASSERT_TRUE(env_.WriteStringToFile("/load2", "abc\t2\n").ok());
  EXPECT_FALSE(db->Execute("copy r from \"/load2\"").ok());  // bad int
  ASSERT_TRUE(env_.WriteStringToFile("/load3", "").ok());
  auto empty = db->Execute("copy r from \"/load3\"");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->affected, 0);
}

TEST_F(FaultTest, CopyRejectsBadTimeLiterals) {
  auto db = Open();
  ASSERT_TRUE(db->Execute("create interval r (id = i4)").ok());
  ASSERT_TRUE(
      env_.WriteStringToFile("/load", "1\tnot a time\tforever\n").ok());
  EXPECT_FALSE(db->Execute("copy r from \"/load\"").ok());
}

TEST_F(FaultTest, CopyFromMissingFileFails) {
  auto db = Open();
  ASSERT_TRUE(db->Execute("create r (id = i4)").ok());
  EXPECT_FALSE(db->Execute("copy r from \"/nope\"").ok());
}

TEST_F(FaultTest, DivisionByZeroInQueryIsError) {
  auto db = Open();
  ASSERT_TRUE(db->Execute("create r (id = i4)").ok());
  ASSERT_TRUE(db->Execute("append to r (id = 0)").ok());
  ASSERT_TRUE(db->Execute("range of x is r").ok());
  EXPECT_FALSE(db->Execute("retrieve (y = 1 / x.id)").ok());
}

TEST_F(FaultTest, IncompatibleComparisonIsError) {
  auto db = Open();
  ASSERT_TRUE(db->Execute("create r (id = i4, s = c8)").ok());
  ASSERT_TRUE(db->Execute("append to r (id = 1, s = \"x\")").ok());
  ASSERT_TRUE(db->Execute("range of x is r").ok());
  EXPECT_FALSE(db->Execute("retrieve (x.id) where x.id = x.s").ok());
}

TEST_F(FaultTest, ModifyMissingKeyAttr) {
  auto db = Open();
  ASSERT_TRUE(db->Execute("create r (id = i4)").ok());
  EXPECT_FALSE(
      db->Execute("modify r to hash on nope where fillfactor = 100").ok());
  EXPECT_FALSE(db->Execute("modify r to hash where fillfactor = 100").ok());
}

TEST_F(FaultTest, CreateRejectsBadTypes) {
  auto db = Open();
  EXPECT_FALSE(db->Execute("create r (a = i3)").ok());
  EXPECT_FALSE(db->Execute("create r (a = c0)").ok());
  EXPECT_FALSE(db->Execute("create r (a = c999)").ok());
  EXPECT_FALSE(db->Execute("create r (a = blob)").ok());
  EXPECT_FALSE(
      db->Execute("create r (transaction_start = i4)").ok());  // reserved
}

TEST_F(FaultTest, OversizedRecordRejected) {
  auto db = Open();
  // Five c255 attributes exceed a page.
  EXPECT_FALSE(db->Execute("create r (a = c255, b = c255, c = c255, "
                           "d = c255, e = c255)")
                   .ok());
}

TEST_F(FaultTest, StatementAfterFailureStillWorks) {
  auto db = Open();
  ASSERT_TRUE(db->Execute("create r (id = i4)").ok());
  EXPECT_FALSE(db->Execute("append to r (id = 1 / 0)").ok());
  ASSERT_TRUE(db->Execute("append to r (id = 2)").ok());
  ASSERT_TRUE(db->Execute("range of x is r").ok());
  auto result = db->Execute("retrieve (x.id)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.num_rows(), 1u);
}

TEST_F(FaultTest, ScriptAbortsAtFirstError) {
  auto db = Open();
  auto r = db->Execute(
      "create r (id = i4); bogus statement; create s (id = i4)");
  EXPECT_FALSE(r.ok());
  // Scripts parse as a unit: nothing executed.
  EXPECT_EQ(db->catalog()->Find("r"), nullptr);
  EXPECT_EQ(db->catalog()->Find("s"), nullptr);
}

}  // namespace
}  // namespace tdb
