// Group commit at the journal level, where its contract is deterministic:
//
//   * CommitGroup appends the commit mark without fsync or truncation and
//     returns a ticket; WaitDurable's leader fsync covers every mark
//     appended so far, so later tickets are satisfied for free;
//   * Begin reclaims the journal file only once everything committed is
//     synced;
//   * a crash between batch fsyncs recovers to the last durable commit
//     mark — synced batches survive, the unsynced tail rolls back.

#include "storage/journal.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/database.h"
#include "core/session.h"
#include "env/env.h"
#include "env/fault_env.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace tdb {
namespace {

void WritePage(Env* env, const std::string& path, uint32_t pno,
               uint8_t fill) {
  auto file = env->OpenOrCreate(path);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> page(kPageSize, fill);
  ASSERT_TRUE(
      (*file)->Write(uint64_t{pno} * kPageSize, page.data(), page.size())
          .ok());
}

class GroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.CreateDirIfMissing("/db").ok());
    auto j = Journal::Open(&env_, "/db", DurabilityMode::kJournalSync);
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    journal_ = std::move(j).value();
    metrics_ = std::make_unique<obs::MetricsRegistry>(true);
    journal_->set_metrics(metrics_.get());
  }

  uint64_t GroupSyncs() {
    return metrics_->Snapshot().counters.count("journal.group_syncs") != 0
               ? metrics_->Snapshot().counters.at("journal.group_syncs")
               : 0;
  }

  /// One journaled batch: pre-image page 0 of `path`, overwrite it.
  uint64_t CommitOneBatch(const std::string& path, uint8_t fill) {
    WritePage(&env_, path, 0, fill);
    auto file = env_.OpenOrCreate(path);
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE(journal_->Begin().ok());
    EXPECT_TRUE(journal_->BeforePageWrite(path, file->get(), 0).ok());
    WritePage(&env_, path, 0, static_cast<uint8_t>(fill + 1));
    auto ticket = journal_->CommitGroup();
    EXPECT_TRUE(ticket.ok()) << ticket.status().ToString();
    return ticket.ok() ? *ticket : 0;
  }

  MemEnv env_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
};

TEST_F(GroupCommitTest, OneFsyncCoversEveryEarlierTicket) {
  const uint64_t t1 = CommitOneBatch("/db/a.dat", 0x10);
  const uint64_t t2 = CommitOneBatch("/db/b.dat", 0x20);
  const uint64_t t3 = CommitOneBatch("/db/c.dat", 0x30);
  ASSERT_LT(t1, t2);
  ASSERT_LT(t2, t3);
  EXPECT_EQ(GroupSyncs(), 0u);  // CommitGroup never fsyncs

  // The latest ticket's wait syncs once and covers everything before it.
  ASSERT_TRUE(journal_->WaitDurable(t3).ok());
  EXPECT_EQ(GroupSyncs(), 1u);
  ASSERT_TRUE(journal_->WaitDurable(t1).ok());
  ASSERT_TRUE(journal_->WaitDurable(t2).ok());
  EXPECT_EQ(GroupSyncs(), 1u);  // already durable: no further fsync
}

TEST_F(GroupCommitTest, BeginReclaimsTheFileOnlyWhenEverythingIsSynced) {
  const uint64_t t1 = CommitOneBatch("/db/a.dat", 0x10);
  auto size_r = env_.OpenOrCreate(Journal::PathFor("/db"));
  ASSERT_TRUE(size_r.ok());
  auto after_first = (*size_r)->Size();
  ASSERT_TRUE(after_first.ok());
  ASSERT_GT(*after_first, 0u);

  // Unsynced commit marks pin the file: the next Begin must append, not
  // truncate (truncation would discard a mark a waiter still needs).
  const uint64_t t2 = CommitOneBatch("/db/b.dat", 0x20);
  auto after_second = (*env_.OpenOrCreate(Journal::PathFor("/db")))->Size();
  ASSERT_TRUE(after_second.ok());
  EXPECT_GT(*after_second, *after_first);

  // Once durable, the next Begin reclaims the whole file.
  ASSERT_TRUE(journal_->WaitDurable(t2).ok());
  (void)t1;
  ASSERT_TRUE(journal_->Begin().ok());
  auto after_reclaim = (*env_.OpenOrCreate(Journal::PathFor("/db")))->Size();
  ASSERT_TRUE(after_reclaim.ok());
  EXPECT_LT(*after_reclaim, *after_second);
  ASSERT_TRUE(journal_->Rollback().ok());
}

TEST_F(GroupCommitTest, RecoverRollsBackOnlyPastTheLastCommitMark) {
  // Two committed batches, no truncation between them (group mode), then
  // a third batch that never commits — the crash case.
  CommitOneBatch("/db/a.dat", 0x10);
  CommitOneBatch("/db/b.dat", 0x20);
  WritePage(&env_, "/db/c.dat", 0, 0x30);
  auto file = env_.OpenOrCreate("/db/c.dat");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(journal_->Begin().ok());
  ASSERT_TRUE(journal_->BeforePageWrite("/db/c.dat", file->get(), 0).ok());
  WritePage(&env_, "/db/c.dat", 0, 0x31);  // the doomed overwrite
  journal_.reset();                        // crash: no commit mark for c

  ASSERT_TRUE(Journal::Recover(&env_, "/db").ok());
  // a and b keep their committed (overwritten) images; c rolled back.
  auto read_fill = [&](const std::string& path) {
    auto content = env_.ReadFileToString(path);
    EXPECT_TRUE(content.ok());
    return content.ok() ? static_cast<uint8_t>((*content)[0]) : 0;
  };
  EXPECT_EQ(read_fill("/db/a.dat"), 0x11);
  EXPECT_EQ(read_fill("/db/b.dat"), 0x21);
  EXPECT_EQ(read_fill("/db/c.dat"), 0x30);
}

/// End-to-end crash sweep through the concurrent commit path: open a
/// kJournalSync database on a fault-injecting env, run statements through
/// a session (the group-commit path), crash at every mutating-operation
/// index, reopen, and require the recovered database to hold a statement
/// prefix — never a torn statement.
TEST(GroupCommitCrashTest, EveryCrashPointRecoversToAStatementBoundary) {
  // Fault-free run first, to learn the operation budget.
  uint64_t total_ops = 0;
  {
    MemEnv base;
    FaultEnv fault(&base);
    DatabaseOptions options;
    options.env = &fault;
    options.durability = DurabilityMode::kJournalSync;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    auto session = (*db)->CreateSession();
    ASSERT_TRUE(session
                    ->ExecuteScript("create emp (sal = i4);"
                                    "range of e is emp;"
                                    "append to emp (sal = 100);"
                                    "append to emp (sal = 200);"
                                    "replace e (sal = 300) where e.sal = 100")
                    .ok());
    total_ops = fault.op_count();
  }
  ASSERT_GT(total_ops, 0u);

  for (uint64_t crash_at = 1; crash_at < total_ops; ++crash_at) {
    MemEnv base;
    FaultEnv fault(&base);
    DatabaseOptions options;
    options.env = &fault;
    options.durability = DurabilityMode::kJournalSync;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    {
      auto session = (*db)->CreateSession();
      fault.CrashAt(crash_at);
      // Statements fail once the crash point hits; that is expected.
      (void)session->ExecuteScript(
          "create emp (sal = i4);"
          "range of e is emp;"
          "append to emp (sal = 100);"
          "append to emp (sal = 200);"
          "replace e (sal = 300) where e.sal = 100");
    }
    db->reset();
    fault.Reset();

    // Reopen on the frozen image: recovery runs in Open.
    auto reopened = Database::Open("/db", options);
    ASSERT_TRUE(reopened.ok())
        << "crash_at=" << crash_at << ": "
        << reopened.status().ToString();
    auto session = (*reopened)->CreateSession();
    auto help = session->Execute("help");
    ASSERT_TRUE(help.ok()) << "crash_at=" << crash_at;
    // If emp exists, its content must be one of the statement-boundary
    // states: {}, {100}, {100,200}, {300,200} (+history).
    auto ranged = session->Execute("range of e is emp");
    if (!ranged.ok()) continue;  // crashed before the create committed
    auto rows = session->Query("retrieve (e.sal) sort by sal");
    ASSERT_TRUE(rows.ok()) << "crash_at=" << crash_at;
    std::vector<int64_t> current;
    for (const Row& r : rows->rows) current.push_back(r[0].AsInt());
    const bool boundary =
        current.empty() || current == std::vector<int64_t>{100} ||
        current == std::vector<int64_t>{100, 200} ||
        current == std::vector<int64_t>{200, 300};
    EXPECT_TRUE(boundary) << "crash_at=" << crash_at << ": "
                          << ::testing::PrintToString(current);
  }
}

}  // namespace
}  // namespace tdb
