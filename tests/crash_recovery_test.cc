// Crash-recovery proof for the journal (ISSUE: crash-safe durability).
//
// The matrix test freezes the file image at *every* mutating env-operation
// index k (a simulated power cut), reopens the database, and asserts the
// recovered byte image equals exactly the pre- or the post-statement state
// of whichever statement operation k fell in.  A seeded-random sweep then
// replays the same contract with randomized crash points, torn-write sizes,
// and durability modes; failures dump the seed and the journal image to
// $TDB_CRASH_ARTIFACT_DIR for CI to upload.
//
// Production storage mode rides the same machinery: a second matrix runs
// the workload on 4096-byte pages, and a dedicated sweep crashes a vacuum
// migration at every op index — recovery must restore the pre-vacuum image
// or complete the statement, idempotently, including deleting segment
// files the crashed vacuum created mid-batch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/chronoquel.h"
#include "env/fault_env.h"

namespace tdb {
namespace {

// A workload touching every journaled path: relation creation, appends
// (page writes + allocation), replace/delete (two-level moves), secondary
// index DDL + maintenance, a modify rebuild, and a destroy.
const std::vector<std::string>& Script() {
  static const std::vector<std::string> kScript = {
      "create persistent emp (name = c8, sal = i4)",
      "append to emp (name = \"ada\", sal = 100)",
      "append to emp (name = \"bob\", sal = 200)",
      "append to emp (name = \"eve\", sal = 300)",
      "range of e is emp",
      "replace e (sal = e.sal + 10) where e.name = \"ada\"",
      "delete e where e.name = \"bob\"",
      "index on emp is emp_sal (sal)",
      "append to emp (name = \"kay\", sal = 400)",
      "modify emp to hash on name",
      "create scratch (id = i4)",
      "append to scratch (id = 1)",
      "destroy scratch",
  };
  return kScript;
}

// History-maintenance workload: builds a two-level store with retired
// versions, vacuums it twice (the second onto existing segments, under an
// epoch partition policy so several segment files exist), keeps mutating
// between the vacuums, and finally destroys the relation so segment-file
// deletion is journaled too.
const std::vector<std::string>& VacuumScript() {
  static const std::vector<std::string> kScript = {
      "create persistent emp (name = c8, sal = i4)",
      "append to emp (name = \"ada\", sal = 100)",
      "append to emp (name = \"bob\", sal = 200)",
      "modify emp to twolevel hash on name where fillfactor = 100",
      "range of e is emp",
      "replace e (sal = e.sal + 1)",
      "replace e (sal = e.sal + 1)",
      "vacuum emp",
      "append to emp (name = \"kay\", sal = 300)",
      "replace e (sal = e.sal + 2) where e.name = \"kay\"",
      "vacuum emp",
      "destroy emp",
  };
  return kScript;
}

/// One crash-matrix configuration: the statement script plus the storage
/// levers under test (everything else is the paper default).
struct RunConfig {
  const std::vector<std::string>* script = &Script();
  DurabilityMode mode = DurabilityMode::kJournal;
  uint32_t page_size = 0;        // 0 = paper 1024
  std::string vacuum_partition;  // "" = single
};

/// Byte-level digest of a database directory, minus the journal (recovery
/// owns that file; its content is not database state).
std::string Digest(Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return "<unlistable>";
  std::vector<std::string> sorted = *names;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const std::string& name : sorted) {
    if (name == "journal" || name == dir + "/journal") continue;
    std::string path =
        name.rfind(dir, 0) == 0 ? name : dir + "/" + name;
    auto content = env->ReadFileToString(path);
    out += name;
    out += '\0';
    out += content.ok() ? *content : std::string("<unreadable>");
    out += '\1';
  }
  return out;
}

DatabaseOptions Opts(Env* env, const RunConfig& config) {
  DatabaseOptions options;
  options.env = env;
  options.durability = config.mode;
  options.page_size = config.page_size;
  options.vacuum_partition = config.vacuum_partition;
  return options;
}

/// Statement-boundary digests from a fault-free run: digests[0] is the
/// post-Open state, digests[s] the state after statement s (1-based).
std::vector<std::string> BoundaryDigests(const RunConfig& config) {
  MemEnv env;
  auto db = Database::Open("/db", Opts(&env, config));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  std::vector<std::string> digests;
  digests.push_back(Digest(&env, "/db"));
  for (const std::string& stmt : *config.script) {
    auto r = (*db)->Execute(stmt);
    EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
    digests.push_back(Digest(&env, "/db"));
  }
  return digests;
}

/// Cumulative mutating-op counts from a fault-free run under FaultEnv:
/// ops[0] after Open, ops[s] after statement s.
std::vector<uint64_t> BoundaryOps(const RunConfig& config) {
  MemEnv base;
  FaultEnv fault(&base);
  auto db = Database::Open("/db", Opts(&fault, config));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  std::vector<uint64_t> ops;
  ops.push_back(fault.op_count());
  for (const std::string& stmt : *config.script) {
    auto r = (*db)->Execute(stmt);
    EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
    ops.push_back(fault.op_count());
  }
  return ops;
}

/// Runs the workload under a crash scheduled at op `k`, then recovers on
/// the underlying env and returns the recovered digest.  `torn` applies
/// that many bytes of the crashing write.  The digest is computed after a
/// second reopen, so the test also proves recovery leaves a state that
/// recovery accepts as final (idempotence).
std::string CrashRunAndRecover(const RunConfig& config, uint64_t k, uint64_t torn,
                               std::string* journal_image_out) {
  MemEnv base;
  {
    FaultEnv fault(&base);
    fault.CrashAt(k);
    if (torn > 0) fault.set_torn_write_bytes(torn);
    auto db = Database::Open("/db", Opts(&fault, config));
    if (db.ok()) {
      for (const std::string& stmt : *config.script) {
        if (!(*db)->Execute(stmt).ok()) break;  // frozen env: stop at error
      }
    }
    // The Database destructor runs against the frozen env here; it must
    // tolerate the failing flushes.
  }
  if (journal_image_out != nullptr) {
    auto j = base.ReadFileToString(Journal::PathFor("/db"));
    *journal_image_out = j.ok() ? *j : std::string();
  }
  // Reopen twice on the healthy env: the first Open recovers, the second
  // must find nothing left to do (idempotence at the API level).
  {
    auto db = Database::Open("/db", Opts(&base, config));
    EXPECT_TRUE(db.ok()) << "reopen after crash at op " << k << ": "
                         << db.status().ToString();
  }
  std::string digest = Digest(&base, "/db");
  {
    auto db = Database::Open("/db", Opts(&base, config));
    EXPECT_TRUE(db.ok()) << "second reopen after crash at op " << k;
  }
  EXPECT_EQ(digest, Digest(&base, "/db"))
      << "recovery not idempotent (crash at op " << k << ")";
  return digest;
}

/// Which statement op `k` falls in: 0 = during Open, s >= 1 = statement s.
size_t StatementOfOp(const std::vector<uint64_t>& ops, uint64_t k) {
  for (size_t s = 0; s < ops.size(); ++s) {
    if (k < ops[s]) return s;
  }
  return ops.size();  // past the last op (no crash triggers)
}

void ExpectBoundaryState(const RunConfig& config,
                         const std::vector<std::string>& digests,
                         const std::vector<uint64_t>& ops, uint64_t k,
                         const std::string& recovered, const char* what) {
  size_t s = StatementOfOp(ops, k);
  if (s == 0) {
    // Crash during Open: nothing executed, nothing to undo.
    EXPECT_EQ(recovered, digests[0]) << what << ": crash at op " << k
                                     << " (during Open)";
    return;
  }
  if (s >= digests.size()) {
    EXPECT_EQ(recovered, digests.back())
        << what << ": crash at op " << k << " (after the last statement)";
    return;
  }
  EXPECT_TRUE(recovered == digests[s - 1] || recovered == digests[s])
      << what << ": crash at op " << k << " during statement " << s << " ('"
      << (*config.script)[s - 1] << "') recovered to neither the pre- nor "
      << "the post-statement state";
}

/// The shared every-op sweep: crash at each mutating op index of a
/// fault-free run, recover, and demand a statement-boundary image.
void RunFullMatrix(const RunConfig& config, const char* what) {
  std::vector<std::string> digests = BoundaryDigests(config);
  std::vector<uint64_t> ops = BoundaryOps(config);
  ASSERT_EQ(digests.size(), ops.size());
  ASSERT_FALSE(::testing::Test::HasFailure());

  const uint64_t total = ops.back();
  ASSERT_GT(total, 50u) << "workload too small to be a meaningful matrix";
  for (uint64_t k = 0; k < total; ++k) {
    std::string recovered = CrashRunAndRecover(config, k, /*torn=*/0, nullptr);
    ExpectBoundaryState(config, digests, ops, k, recovered, what);
    if (::testing::Test::HasFailure()) break;  // one failure says it all
  }
}

TEST(CrashRecoveryMatrixTest, EveryOpIndexRecoversToAStatementBoundary) {
  RunFullMatrix(RunConfig{}, "matrix");
}

// The identical contract on 4096-byte production pages: every journal
// pre-image carries its own length, so recovery restores big pages without
// any out-of-band page-size knowledge.
TEST(CrashRecoveryMatrixTest, EveryOpIndexRecoversOn4096BytePages) {
  RunConfig config;
  config.page_size = 4096;
  RunFullMatrix(config, "matrix-4096");
}

// Vacuum crash sweep: a crash at ANY op of a vacuum migration — including
// segment-file creation, chain rewrites, anchor patches, erases from the
// active history store, and the catalog update — must recover to the
// pre-vacuum image or the completed vacuum, never a half-migrated chain.
TEST(VacuumCrashSweepTest, EveryOpIndexRecoversToAStatementBoundary) {
  RunConfig config;
  config.script = &VacuumScript();
  config.vacuum_partition = "epoch:2";
  RunFullMatrix(config, "vacuum-sweep");
}

// The vacuum sweep again on 4096-byte pages (the production combination).
TEST(VacuumCrashSweepTest, EveryOpIndexRecoversOn4096BytePages) {
  RunConfig config;
  config.script = &VacuumScript();
  config.vacuum_partition = "epoch:2";
  config.page_size = 4096;
  RunFullMatrix(config, "vacuum-sweep-4096");
}

TEST(CrashRecoveryMatrixTest, CrashDuringRecoveryStaysRecoverable) {
  RunConfig config;
  std::vector<std::string> digests = BoundaryDigests(config);
  std::vector<uint64_t> ops = BoundaryOps(config);
  ASSERT_FALSE(::testing::Test::HasFailure());

  // Crash mid-append of statement 2 (one op past its first), leaving a
  // journal with pre-images to undo; then crash recovery itself at every
  // one of its own op indexes and recover again on the healthy env.  Every
  // double-crash must still land on a statement boundary.
  const uint64_t k = ops[1] + 1;
  for (uint64_t j = 0;; ++j) {
    // Recovery mutates the image, so rebuild the crash state from scratch
    // for each recovery crash point.
    MemEnv replay;
    {
      FaultEnv fault(&replay);
      fault.CrashAt(k);
      auto db = Database::Open("/db", Opts(&fault, config));
      if (db.ok()) {
        for (const std::string& stmt : *config.script) {
          if (!(*db)->Execute(stmt).ok()) break;
        }
      }
    }
    FaultEnv recover_fault(&replay);
    recover_fault.CrashAt(j);
    Status first = Journal::Recover(&recover_fault, "/db");
    if (!recover_fault.crashed()) {
      // Recovery finished before op j existed: the sweep is complete.
      EXPECT_TRUE(first.ok());
      break;
    }
    EXPECT_FALSE(first.ok()) << "recovery crashed at op " << j
                             << " but reported success";
    auto db = Database::Open("/db", Opts(&replay, config));
    ASSERT_TRUE(db.ok()) << "re-recovery failed after recovery crash at op "
                         << j << ": " << db.status().ToString();
    std::string recovered = Digest(&replay, "/db");
    ExpectBoundaryState(config, digests, ops, k, recovered, "double-crash");
    ASSERT_FALSE(::testing::Test::HasFailure());
  }
}

TEST(CrashRecoverySeededTest, RandomFaultSchedules) {
  // CI runs 200 schedules (TDB_CRASH_SEEDS=200); the default keeps local
  // runs quick.
  int seeds = 40;
  if (const char* env_seeds = std::getenv("TDB_CRASH_SEEDS")) {
    seeds = std::max(1, std::atoi(env_seeds));
  }
  const char* artifact_dir = std::getenv("TDB_CRASH_ARTIFACT_DIR");

  RunConfig config_j;
  RunConfig config_s;
  config_s.mode = DurabilityMode::kJournalSync;
  std::vector<std::string> digests_j = BoundaryDigests(config_j);
  std::vector<uint64_t> ops_j = BoundaryOps(config_j);
  std::vector<std::string> digests_s = BoundaryDigests(config_s);
  std::vector<uint64_t> ops_s = BoundaryOps(config_s);
  ASSERT_FALSE(::testing::Test::HasFailure());

  for (int seed = 0; seed < seeds; ++seed) {
    std::mt19937 rng(static_cast<uint32_t>(seed) * 2654435761u + 1);
    const bool sync_mode = (rng() & 1) != 0;
    const RunConfig& config = sync_mode ? config_s : config_j;
    const auto& digests = sync_mode ? digests_s : digests_j;
    const auto& ops = sync_mode ? ops_s : ops_j;
    const uint64_t total = ops.back();
    const uint64_t k = rng() % total;
    // Half the schedules tear the crashing write part-way through.
    const uint64_t torn = (rng() & 1) != 0 ? 1 + rng() % 1023 : 0;

    std::string journal_image;
    std::string recovered = CrashRunAndRecover(config, k, torn, &journal_image);
    ExpectBoundaryState(config, digests, ops, k, recovered, "seeded");
    if (::testing::Test::HasFailure()) {
      if (artifact_dir != nullptr) {
        std::ofstream info(std::string(artifact_dir) + "/failing_seed.txt");
        info << "seed=" << seed << " crash_at=" << k << " torn=" << torn
             << " mode=" << DurabilityModeName(config.mode) << "\n";
        std::ofstream journal(std::string(artifact_dir) + "/journal.bin",
                              std::ios::binary);
        journal.write(journal_image.data(),
                      static_cast<std::streamsize>(journal_image.size()));
      }
      FAIL() << "seed " << seed << " (crash_at=" << k << ", torn=" << torn
             << ", mode=" << DurabilityModeName(config.mode) << ") failed";
    }
  }
}

// Transient (non-crash) faults: a failing fsync at commit must roll the
// statement back and leave the database usable.
TEST(CrashRecoveryTest, FailedCommitSyncRollsBackStatement) {
  MemEnv base;
  FaultEnv fault(&base);
  RunConfig config;
  config.mode = DurabilityMode::kJournalSync;
  auto db = Database::Open("/db", Opts(&fault, config));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Execute("create persistent emp (name = c8, sal = i4)")
                  .ok());
  ASSERT_TRUE(
      (*db)->Execute("append to emp (name = \"ada\", sal = 100)").ok());
  std::string before = Digest(&base, "/db");

  // Arm the very next sync to fail: in kJournalSync the journal syncs its
  // first pre-image before any page overwrite, so the statement dies at its
  // first commit barrier.
  fault.Reset();
  fault.FailSyncAt(1);
  Status s = (*db)->Execute("append to emp (name = \"bob\", sal = 200)")
                 .status();
  EXPECT_FALSE(s.ok());
  ASSERT_TRUE(s.statement_context() != nullptr);
  EXPECT_EQ(s.statement_context()->statement_index, 1);

  // The failed statement left no trace on disk...
  EXPECT_EQ(Digest(&base, "/db"), before);
  // ...and the database keeps working.
  fault.Reset();
  ASSERT_TRUE(
      (*db)->Execute("append to emp (name = \"eve\", sal = 300)").ok());
  ASSERT_TRUE((*db)->Execute("range of e is emp").ok());
  auto rows = (*db)->Query("retrieve (e.name) sort by name");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->num_rows(), 2u);  // ada + eve; bob's append rolled back
}

}  // namespace
}  // namespace tdb
