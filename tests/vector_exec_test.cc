// Vectorized-engine tests.  Two halves:
//
//   * selection-vector kernel edge cases — empty morsel, morsel of one,
//     all-pass / all-fail selections, kernel-vs-generic agreement, and the
//     page-boundary cut rule (zero-copy cursor batches never span a page);
//
//   * a differential sweep over all eight paper databases asserting the
//     morsel engine produces byte-identical rows AND identical page counts
//     (input, output, fixed, and the disk-model access split) to the
//     tuple-at-a-time engine for every applicable benchmark query, plus a
//     threads axis asserting the same byte-identity between 1, 2, and 4
//     executor threads (rows and per-file IoCounters alike).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/workload.h"
#include "exec/compiled_expr.h"
#include "exec/eval.h"
#include "exec/morsel.h"
#include "exec/version.h"
#include "exec/worker_pool.h"
#include "storage/heap_file.h"
#include "storage/io_stats.h"
#include "storage_test_util.h"
#include "types/schema.h"
#include "util/stringx.h"

namespace tdb {
namespace {

Schema TwoIntSchema() {
  std::vector<Attribute> attrs = {
      {"id", TypeId::kInt4, 4, false},
      {"amount", TypeId::kInt4, 4, false},
  };
  auto schema = Schema::Create(std::move(attrs), DbType::kStatic);
  EXPECT_TRUE(schema.ok());
  return *std::move(schema);
}

std::vector<uint8_t> TwoIntRecord(const Schema& schema, int64_t id,
                                  int64_t amount) {
  Row row;
  row.push_back(Value::Int4(id));
  row.push_back(Value::Int4(amount));
  auto rec = EncodeRecord(schema, row);
  EXPECT_TRUE(rec.ok());
  return *std::move(rec);
}

/// Fills `m` with copies of `recs` (tids are dummies; the kernels never
/// read them).
void FillMorsel(Morsel* m, const std::vector<std::vector<uint8_t>>& recs) {
  m->Clear();
  if (recs.empty()) return;
  m->EnsureArena(recs.size() * recs[0].size());
  for (const auto& rec : recs) m->AppendCopy(rec.data(), rec.size(), Tid());
}

std::unique_ptr<Expr> Col(const char* name, int attr_index) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumn;
  e->var = "h";
  e->attr = name;
  e->var_index = 0;
  e->attr_index = attr_index;
  e->column_type = TypeId::kInt4;
  return e;
}

std::unique_ptr<Expr> IntConst(int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kConstInt;
  e->int_val = v;
  return e;
}

std::unique_ptr<Expr> Bin(ExprOp op, std::unique_ptr<Expr> l,
                          std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

/// Runs `prog` over the morsel with a full identity selection and returns
/// the surviving indexes.
SelVec RunBatch(const CompiledProgram& prog, const Schema& schema,
                const Morsel& m) {
  SelVec sel;
  FillIdentity(&sel, m.size());
  Binding binding(1, nullptr);
  VersionRef scratch;
  Status st = prog.EvalBoolBatch(schema, 0, m, &binding, &scratch,
                                 TimePoint(0), &sel);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(binding[0], nullptr);  // generic path must restore the slot
  return sel;
}

/// Per-row reference: the scalar EvalBool over the same records.
SelVec RunScalar(const CompiledProgram& prog, const Schema& schema,
                 const Morsel& m) {
  SelVec expected;
  Binding binding(1, nullptr);
  VersionRef scratch;
  binding[0] = &scratch;
  for (size_t i = 0; i < m.size(); ++i) {
    scratch.BindRaw(schema, m.rec(i));
    auto r = prog.EvalBool(binding, TimePoint(0));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok() && *r) expected.push_back(static_cast<uint16_t>(i));
  }
  return expected;
}

TEST(VectorKernelTest, EmptyMorselLeavesSelectionEmpty) {
  Schema schema = TwoIntSchema();
  Morsel m;
  FillMorsel(&m, {});
  auto prog = CompiledProgram::CompileExpr(
      *Bin(ExprOp::kGt, Col("id", 0), IntConst(5)));
  ASSERT_TRUE(prog.has_value());
  EXPECT_TRUE(RunBatch(*prog, schema, m).empty());
}

TEST(VectorKernelTest, MorselOfOne) {
  Schema schema = TwoIntSchema();
  Morsel m;
  FillMorsel(&m, {TwoIntRecord(schema, 7, 70)});
  auto hit = CompiledProgram::CompileExpr(
      *Bin(ExprOp::kEq, Col("id", 0), IntConst(7)));
  auto miss = CompiledProgram::CompileExpr(
      *Bin(ExprOp::kEq, Col("id", 0), IntConst(8)));
  ASSERT_TRUE(hit.has_value() && miss.has_value());
  EXPECT_EQ(RunBatch(*hit, schema, m), (SelVec{0}));
  EXPECT_TRUE(RunBatch(*miss, schema, m).empty());
}

TEST(VectorKernelTest, AllPassAndAllFailSelections) {
  Schema schema = TwoIntSchema();
  std::vector<std::vector<uint8_t>> recs;
  for (int i = 0; i < 100; ++i) recs.push_back(TwoIntRecord(schema, i, i * 3));
  Morsel m;
  FillMorsel(&m, recs);

  auto all = CompiledProgram::CompileExpr(
      *Bin(ExprOp::kGe, Col("id", 0), IntConst(0)));
  auto none = CompiledProgram::CompileExpr(
      *Bin(ExprOp::kLt, Col("id", 0), IntConst(0)));
  ASSERT_TRUE(all.has_value() && none.has_value());

  SelVec sel = RunBatch(*all, schema, m);
  ASSERT_EQ(sel.size(), 100u);
  for (uint16_t i = 0; i < 100; ++i) EXPECT_EQ(sel[i], i);  // order kept
  EXPECT_TRUE(RunBatch(*none, schema, m).empty());
}

TEST(VectorKernelTest, KernelChainMatchesScalarEvaluation) {
  Schema schema = TwoIntSchema();
  std::vector<std::vector<uint8_t>> recs;
  for (int i = 0; i < 257; ++i) {
    recs.push_back(TwoIntRecord(schema, i % 37, (i * 7) % 100));
  }
  Morsel m;
  FillMorsel(&m, recs);

  // Kernel-eligible: a left-associated AND chain of int compares, with one
  // reversed (const OP attr) operand order.
  auto chain = Bin(
      ExprOp::kAnd,
      Bin(ExprOp::kAnd, Bin(ExprOp::kGe, Col("id", 0), IntConst(5)),
          Bin(ExprOp::kLt, Col("amount", 1), IntConst(80))),
      Bin(ExprOp::kGt, IntConst(30), Col("id", 0)));
  // Kernel-ineligible (arithmetic inside the compare): exercises the
  // generic per-row fallback through the same entry point.
  auto generic = Bin(ExprOp::kGt,
                     Bin(ExprOp::kAdd, Col("id", 0), IntConst(1)),
                     IntConst(17));

  for (const auto* expr : {chain.get(), generic.get()}) {
    auto prog = CompiledProgram::CompileExpr(*expr);
    ASSERT_TRUE(prog.has_value());
    EXPECT_EQ(RunBatch(*prog, schema, m), RunScalar(*prog, schema, m));
  }
}

TEST(VectorMorselTest, CursorBatchesNeverSpanAPage) {
  MemEnv env;
  IoCounters counters;
  auto pager = Pager::Open(&env, "/heap", &counters);
  ASSERT_TRUE(pager.ok());
  auto heap = HeapFile::Open(std::move(*pager), testutil::SmallLayout(32));
  ASSERT_TRUE(heap.ok());
  const uint16_t cap = Page::Capacity(32);
  const size_t total = static_cast<size_t>(cap) * 2 + 3;
  for (size_t i = 0; i < total; ++i) {
    auto rec = testutil::KeyedRecord(static_cast<int32_t>(i));
    ASSERT_TRUE((*heap)->Insert(rec.data(), rec.size(), nullptr).ok());
  }

  // Even with an oversized request, each zero-copy batch is cut at the page
  // fetch: all slices of one batch alias the single resident frame.
  auto cur = (*heap)->Scan();
  ASSERT_TRUE(cur.ok());
  Morsel m;
  std::vector<size_t> sizes;
  size_t seen = 0;
  int32_t next_key = 0;
  while (true) {
    auto n = (*cur)->NextBatch(&m, 10000);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;
    sizes.push_back(*n);
    EXPECT_LE(*n, static_cast<size_t>(cap));
    for (size_t i = 0; i < *n; ++i) {
      int32_t k;
      std::memcpy(&k, m.rec(i), 4);
      EXPECT_EQ(k, next_key++);  // insertion order preserved
    }
    seen += *n;
  }
  EXPECT_EQ(seen, total);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], static_cast<size_t>(cap));
  EXPECT_EQ(sizes[1], static_cast<size_t>(cap));
  EXPECT_EQ(sizes[2], 3u);

  // A max of one yields single-row morsels without changing the stream.
  auto cur1 = (*heap)->Scan();
  ASSERT_TRUE(cur1.ok());
  auto n1 = (*cur1)->NextBatch(&m, 1);
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(*n1, 1u);
  int32_t k;
  std::memcpy(&k, m.rec(0), 4);
  EXPECT_EQ(k, 0);
}

// ---- differential sweep: the eight paper databases ----

/// Sorted-line view of a rendering: the order-insensitive row multiset.
/// Physical row order legitimately shifts with page geometry (a 4096-byte
/// hash bucket holds more rows per page), so cross-page-size checks compare
/// multisets while the within-page-size engine differential stays exact.
std::string SortedLines(const std::string& rendering) {
  std::vector<std::string> lines = Split(rendering, '\n');
  std::sort(lines.begin(), lines.end());
  return Join(lines, "\n");
}

struct EngineRun {
  bench::Measure measure;
  std::string rows;
};

EngineRun RunOnce(bench::BenchmarkDb* db, int qnum, bool vectorized) {
  EngineRun run;
  SetVectorExecEnabledForTest(vectorized);
  auto m = db->RunQuery(qnum);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  if (m.ok()) run.measure = *std::move(m);
  auto r = db->db()->Execute(db->QueryText(qnum));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (r.ok()) run.rows = r->result.ToString(TimeResolution::kSecond);
  SetVectorExecEnabledForTest(std::nullopt);
  return run;
}

/// Renders the registry's per-file counters — every read and write, split
/// by category — for byte comparison across runs.
std::string CountersString(Database* db) {
  std::string out;
  for (const auto& [name, c] : db->io()->by_file()) {
    out += name;
    for (int i = 0; i < kNumIoCategories; ++i) {
      out += StrPrintf(" %s=%llu/%llu", IoCategoryName(IoCategory(i)),
                       static_cast<unsigned long long>(c->reads[i]),
                       static_cast<unsigned long long>(c->writes[i]));
    }
    out += "\n";
  }
  return out;
}

TEST(VectorExecDifferentialTest, EnginesAgreeOnAllPaperDatabases) {
  const DbType types[] = {DbType::kStatic, DbType::kRollback,
                          DbType::kHistorical, DbType::kTemporal};
  for (DbType type : types) {
    for (int fillfactor : {100, 50}) {
      // Page-size axis: the sweep repeats on production 4096-byte pages.
      // Within one page size the engines must agree on everything; across
      // page sizes the rendered rows must be byte-identical (page counts
      // legitimately shrink on bigger pages).
      std::map<int, std::string> rows_paper_pages;
      for (uint32_t page_size : {0u, 4096u}) {
        SCOPED_TRACE(testing::Message()
                     << "type " << static_cast<int>(type) << " ff "
                     << fillfactor << " page " << (page_size ? page_size
                                                             : 1024u));
        bench::WorkloadConfig config;
        config.type = type;
        config.fillfactor = fillfactor;
        config.page_size = page_size;
        auto db = bench::BenchmarkDb::Create(config);
        ASSERT_TRUE(db.ok()) << db.status().ToString();
        // A few update rounds so history versions and overflow chains exist.
        ASSERT_TRUE((*db)->UniformUpdateRound().ok());
        ASSERT_TRUE((*db)->UniformUpdateRound().ok());

        for (int qnum = 1; qnum <= 12; ++qnum) {
          if ((*db)->QueryText(qnum).empty()) continue;
          SCOPED_TRACE(testing::Message() << "Q" << qnum);
          EngineRun vec = RunOnce(db->get(), qnum, /*vectorized=*/true);
          EngineRun tup = RunOnce(db->get(), qnum, /*vectorized=*/false);
          EXPECT_EQ(vec.rows, tup.rows);
          EXPECT_EQ(vec.measure.rows, tup.measure.rows);
          EXPECT_EQ(vec.measure.input_pages, tup.measure.input_pages);
          EXPECT_EQ(vec.measure.output_pages, tup.measure.output_pages);
          EXPECT_EQ(vec.measure.fixed_pages, tup.measure.fixed_pages);
          EXPECT_EQ(vec.measure.random_accesses, tup.measure.random_accesses);
          EXPECT_EQ(vec.measure.sequential_accesses,
                    tup.measure.sequential_accesses);
          EXPECT_EQ(vec.measure.plan, tup.measure.plan);
          if (page_size == 0) {
            rows_paper_pages[qnum] = SortedLines(vec.rows);
          } else {
            EXPECT_EQ(SortedLines(vec.rows), rows_paper_pages[qnum])
                << "row multiset drifted between 1024- and 4096-byte pages";
          }
        }
      }
    }
  }
}

/// The threads axis of the sweep: with the vectorized engine fixed, every
/// applicable paper query must produce byte-identical rows AND per-file
/// IoCounters (every category, reads and writes) at 1, 2, and 4 executor
/// threads.  This is the morsel-parallelism contract — the worker pool may
/// only change wall-clock time, never results or the paper's page counts.
/// Queries run through Database::Execute (no I/O trace) so the parallel
/// scan path actually engages at threads >= 2.
TEST(VectorExecDifferentialTest, ThreadCountsAgreeOnAllPaperDatabases) {
  const DbType types[] = {DbType::kStatic, DbType::kRollback,
                          DbType::kHistorical, DbType::kTemporal};
  for (DbType type : types) {
    for (int fillfactor : {100, 50}) {
      SCOPED_TRACE(testing::Message() << "type " << static_cast<int>(type)
                                      << " ff " << fillfactor);
      bench::WorkloadConfig config;
      config.type = type;
      config.fillfactor = fillfactor;
      auto db = bench::BenchmarkDb::Create(config);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      ASSERT_TRUE((*db)->UniformUpdateRound().ok());
      ASSERT_TRUE((*db)->UniformUpdateRound().ok());

      SetVectorExecEnabledForTest(true);
      for (int qnum = 1; qnum <= 12; ++qnum) {
        std::string text = (*db)->QueryText(qnum);
        if (text.empty()) continue;
        SCOPED_TRACE(testing::Message() << "Q" << qnum);
        // Warm-up run: the single-frame pagers keep their last page
        // resident across queries, so the first execution after a reset
        // can pay a cold read the repeats do not.  One unmeasured run
        // (at the default single thread) pins the resident state; every
        // measured run then starts from the same frames.
        ASSERT_TRUE((*db)->db()->Execute(text).ok());
        std::string base_rows, base_io;
        for (int threads : {1, 2, 4}) {
          SCOPED_TRACE(testing::Message() << threads << " threads");
          SetExecThreadsForTest(threads);
          (*db)->db()->io()->ResetAll();
          auto r = (*db)->db()->Execute(text);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          std::string rows =
              r->result.ToString(TimeResolution::kSecond) +
              StrPrintf("(%zu rows)", r->result.num_rows());
          std::string io = CountersString((*db)->db());
          if (threads == 1) {
            base_rows = rows;
            base_io = io;
          } else {
            EXPECT_EQ(rows, base_rows);
            EXPECT_EQ(io, base_io);
          }
        }
        SetExecThreadsForTest(std::nullopt);
      }
      SetVectorExecEnabledForTest(std::nullopt);
    }
  }
}

}  // namespace
}  // namespace tdb
