#include "temporal/interval.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace tdb {
namespace {

Interval I(int32_t a, int32_t b) { return Interval(TimePoint(a), TimePoint(b)); }
Interval E(int32_t t) { return Interval::Event(TimePoint(t)); }

TEST(IntervalTest, EmptyAndEvent) {
  EXPECT_FALSE(I(1, 2).empty());
  EXPECT_FALSE(E(1).empty());  // an event contains its instant
  EXPECT_TRUE(I(2, 1).empty());
  EXPECT_TRUE(E(1).IsEvent());
  EXPECT_FALSE(I(1, 2).IsEvent());
}

TEST(IntervalTest, ContainsHalfOpen) {
  EXPECT_TRUE(I(1, 3).Contains(TimePoint(1)));
  EXPECT_TRUE(I(1, 3).Contains(TimePoint(2)));
  EXPECT_FALSE(I(1, 3).Contains(TimePoint(3)));  // exclusive upper bound
  EXPECT_FALSE(I(1, 3).Contains(TimePoint(0)));
}

TEST(IntervalTest, EventContainsOnlyItsInstant) {
  EXPECT_TRUE(E(5).Contains(TimePoint(5)));
  EXPECT_FALSE(E(5).Contains(TimePoint(4)));
  EXPECT_FALSE(E(5).Contains(TimePoint(6)));
}

TEST(IntervalTest, OverlapsProperIntervals) {
  EXPECT_TRUE(I(1, 5).Overlaps(I(3, 8)));
  EXPECT_TRUE(I(3, 8).Overlaps(I(1, 5)));
  EXPECT_TRUE(I(1, 5).Overlaps(I(2, 3)));  // containment
  EXPECT_FALSE(I(1, 3).Overlaps(I(3, 5)));  // touching is not overlap
  EXPECT_FALSE(I(1, 2).Overlaps(I(4, 5)));
}

TEST(IntervalTest, OverlapsWithEvents) {
  EXPECT_TRUE(I(1, 5).Overlaps(E(3)));
  EXPECT_TRUE(I(1, 5).Overlaps(E(1)));   // inclusive start
  EXPECT_FALSE(I(1, 5).Overlaps(E(5)));  // exclusive end
  EXPECT_TRUE(E(3).Overlaps(I(1, 5)));
  EXPECT_TRUE(E(3).Overlaps(E(3)));
  EXPECT_FALSE(E(3).Overlaps(E(4)));
}

TEST(IntervalTest, EmptyNeverOverlaps) {
  EXPECT_FALSE(I(5, 1).Overlaps(I(0, 10)));
  EXPECT_FALSE(I(0, 10).Overlaps(I(5, 1)));
}

TEST(IntervalTest, Precedes) {
  EXPECT_TRUE(I(1, 3).Precedes(I(3, 5)));  // touching counts as precede
  EXPECT_TRUE(I(1, 2).Precedes(I(4, 5)));
  EXPECT_FALSE(I(1, 4).Precedes(I(3, 5)));
  EXPECT_TRUE(E(2).Precedes(I(3, 5)));
  EXPECT_TRUE(E(2).Precedes(E(2)));  // end(2) <= start(2)
}

TEST(IntervalTest, IntersectAndSpan) {
  EXPECT_EQ(Interval::Intersect(I(1, 5), I(3, 8)), I(3, 5));
  EXPECT_TRUE(Interval::Intersect(I(1, 2), I(4, 5)).empty());
  EXPECT_EQ(Interval::Span(I(1, 5), I(3, 8)), I(1, 8));
  EXPECT_EQ(Interval::Span(I(1, 2), I(4, 5)), I(1, 5));  // covers the gap
}

TEST(IntervalTest, ForeverBounds) {
  Interval current(TimePoint(100), TimePoint::Forever());
  EXPECT_TRUE(current.Contains(TimePoint(1 << 30)));
  EXPECT_TRUE(current.Overlaps(E(200)));
  EXPECT_FALSE(current.Overlaps(E(50)));
}

TEST(IntervalTest, ToStringFormats) {
  EXPECT_EQ(I(0, 0).IsEvent(), true);
  std::string s = Interval(TimePoint(0), TimePoint::Forever()).ToString();
  EXPECT_NE(s.find("forever"), std::string::npos);
}

// ---- Algebraic property sweeps ----

class IntervalProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Interval RandomInterval(Random* rng) {
    int32_t a = static_cast<int32_t>(rng->UniformRange(0, 1000));
    int32_t len = static_cast<int32_t>(rng->UniformRange(0, 50));
    return I(a, a + len);
  }
};

TEST_P(IntervalProperty, OverlapIsSymmetric) {
  Random rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Interval a = RandomInterval(&rng);
    Interval b = RandomInterval(&rng);
    EXPECT_EQ(a.Overlaps(b), b.Overlaps(a)) << a.ToString() << b.ToString();
  }
}

TEST_P(IntervalProperty, OverlapMatchesSharedInstantSemantics) {
  // a.Overlaps(b) iff there exists an integer instant contained in both.
  Random rng(GetParam() + 1);
  for (int i = 0; i < 300; ++i) {
    Interval a = RandomInterval(&rng);
    Interval b = RandomInterval(&rng);
    bool shared = false;
    for (int32_t t = 0; t <= 1100 && !shared; ++t) {
      shared = a.Contains(TimePoint(t)) && b.Contains(TimePoint(t));
    }
    EXPECT_EQ(a.Overlaps(b), shared) << a.ToString() << " " << b.ToString();
  }
}

TEST_P(IntervalProperty, IntersectIsTightestCommon) {
  Random rng(GetParam() + 2);
  for (int i = 0; i < 300; ++i) {
    Interval a = RandomInterval(&rng);
    Interval b = RandomInterval(&rng);
    Interval x = Interval::Intersect(a, b);
    if (!x.empty() && !x.IsEvent()) {
      for (int32_t t = x.from.seconds(); t < x.to.seconds(); ++t) {
        EXPECT_TRUE(a.Contains(TimePoint(t)));
        EXPECT_TRUE(b.Contains(TimePoint(t)));
      }
    }
  }
}

TEST_P(IntervalProperty, SpanContainsBoth) {
  Random rng(GetParam() + 3);
  for (int i = 0; i < 300; ++i) {
    Interval a = RandomInterval(&rng);
    Interval b = RandomInterval(&rng);
    Interval s = Interval::Span(a, b);
    EXPECT_LE(s.from, a.from);
    EXPECT_LE(s.from, b.from);
    EXPECT_GE(s.to, a.to);
    EXPECT_GE(s.to, b.to);
  }
}

TEST_P(IntervalProperty, PrecedeAndOverlapAreMutuallyExclusiveForIntervals) {
  // For *proper* intervals the two relations exclude each other.  An event
  // [t, t] at the start of an interval both precedes it (end <= start, the
  // TQuel definition) and overlaps it (it occurs within it), so events are
  // excluded from this property.
  Random rng(GetParam() + 4);
  for (int i = 0; i < 500; ++i) {
    Interval a = RandomInterval(&rng);
    Interval b = RandomInterval(&rng);
    if (a.IsEvent() || b.IsEvent()) continue;
    if (a.Precedes(b)) {
      EXPECT_FALSE(a.Overlaps(b)) << a.ToString() << " " << b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tdb
