#include "core/result_set.h"

#include <gtest/gtest.h>

#include "exec/version.h"
#include "temporal/db_type.h"

namespace tdb {
namespace {

TEST(ResultSetTest, ToStringAlignsColumns) {
  ResultSet rs;
  rs.columns = {"name", "qty"};
  rs.rows.push_back({Value::Char("bolt"), Value::Int4(7)});
  rs.rows.push_back({Value::Char("x"), Value::Int4(123456)});
  std::string out = rs.ToString();
  EXPECT_NE(out.find("|name|qty   |"), std::string::npos);
  EXPECT_NE(out.find("|bolt|7     |"), std::string::npos);
  EXPECT_NE(out.find("|x   |123456|"), std::string::npos);
}

TEST(ResultSetTest, EmptyAndResolution) {
  ResultSet rs;
  rs.columns = {"t"};
  EXPECT_EQ(rs.num_rows(), 0u);
  rs.rows.push_back({Value::Time(*TimePoint::FromCivil(1980, 6, 1))});
  EXPECT_NE(rs.ToString(TimeResolution::kYear).find("1980"),
            std::string::npos);
  EXPECT_EQ(rs.ToString(TimeResolution::kYear).find("6/1/"),
            std::string::npos);
}

TEST(DbTypeTest, TaxonomyPredicates) {
  EXPECT_FALSE(HasTransactionTime(DbType::kStatic));
  EXPECT_FALSE(HasValidTime(DbType::kStatic));
  EXPECT_TRUE(HasTransactionTime(DbType::kRollback));
  EXPECT_FALSE(HasValidTime(DbType::kRollback));
  EXPECT_FALSE(HasTransactionTime(DbType::kHistorical));
  EXPECT_TRUE(HasValidTime(DbType::kHistorical));
  EXPECT_TRUE(HasTransactionTime(DbType::kTemporal));
  EXPECT_TRUE(HasValidTime(DbType::kTemporal));
}

TEST(DbTypeTest, Names) {
  EXPECT_STREQ(DbTypeName(DbType::kStatic), "static");
  EXPECT_STREQ(DbTypeName(DbType::kTemporal), "temporal");
  EXPECT_STREQ(EntityKindName(EntityKind::kInterval), "interval");
  EXPECT_STREQ(EntityKindName(EntityKind::kEvent), "event");
}

TEST(VersionRefTest, DecodeDerivesIntervals) {
  auto schema = Schema::Create({{"id", TypeId::kInt4, 4, false}},
                               DbType::kTemporal);
  ASSERT_TRUE(schema.ok());
  Row row = {Value::Int4(9), Value::Time(TimePoint(100)),
             Value::Time(TimePoint(200)), Value::Time(TimePoint(50)),
             Value::Time(TimePoint::Forever())};
  auto rec = EncodeRecord(*schema, row);
  ASSERT_TRUE(rec.ok());
  auto ref = DecodeVersion(*schema, rec->data(), rec->size(), Tid{3, 1},
                           /*in_history=*/true);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->valid, Interval(TimePoint(100), TimePoint(200)));
  EXPECT_EQ(ref->tx, Interval(TimePoint(50), TimePoint::Forever()));
  EXPECT_TRUE(ref->in_history);
  EXPECT_EQ(ref->tid.page, 3u);
}

TEST(VersionRefTest, IsCurrentRules) {
  auto temporal = Schema::Create({{"id", TypeId::kInt4, 4, false}},
                                 DbType::kTemporal);
  VersionRef ref;
  ref.SetRow({Value::Int4(1), Value::Time(TimePoint(1)),
              Value::Time(TimePoint::Forever()), Value::Time(TimePoint(1)),
              Value::Time(TimePoint::Forever())});
  RefreshIntervals(*temporal, &ref);
  EXPECT_TRUE(ref.IsCurrent(*temporal));

  // Closed in valid time: a correction, not current.
  ref.MutableRow()[2] = Value::Time(TimePoint(10));
  RefreshIntervals(*temporal, &ref);
  EXPECT_FALSE(ref.IsCurrent(*temporal));

  // Closed in transaction time: superseded.
  ref.MutableRow()[2] = Value::Time(TimePoint::Forever());
  ref.MutableRow()[4] = Value::Time(TimePoint(10));
  RefreshIntervals(*temporal, &ref);
  EXPECT_FALSE(ref.IsCurrent(*temporal));
}

TEST(VersionRefTest, StaticAlwaysCurrent) {
  auto schema = Schema::Create({{"id", TypeId::kInt4, 4, false}},
                               DbType::kStatic);
  VersionRef ref;
  ref.SetRow({Value::Int4(1)});
  RefreshIntervals(*schema, &ref);
  EXPECT_TRUE(ref.IsCurrent(*schema));
  EXPECT_EQ(ref.valid, Interval(TimePoint::Beginning(), TimePoint::Forever()));
}

TEST(VersionRefTest, EventRelationsUseInstant) {
  auto schema = Schema::Create({{"id", TypeId::kInt4, 4, false}},
                               DbType::kHistorical, EntityKind::kEvent);
  Row row = {Value::Int4(1), Value::Time(TimePoint(77))};
  auto rec = EncodeRecord(*schema, row);
  auto ref = DecodeVersion(*schema, rec->data(), rec->size(), Tid{}, false);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(ref->valid.IsEvent());
  EXPECT_EQ(ref->valid.from, TimePoint(77));
  EXPECT_TRUE(ref->IsCurrent(*schema));  // events never "expire"
}

}  // namespace
}  // namespace tdb
