#include "tquel/binder.h"

#include <gtest/gtest.h>

#include "tquel/parser.h"

namespace tdb {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AddRelation("s_rel", DbType::kStatic);
    AddRelation("r_rel", DbType::kRollback);
    AddRelation("h_rel", DbType::kHistorical);
    AddRelation("t_rel", DbType::kTemporal);
    ranges_ = {{"s", "s_rel"}, {"r", "r_rel"}, {"h", "h_rel"}, {"t", "t_rel"}};
  }

  void AddRelation(const std::string& name, DbType type) {
    RelationMeta meta;
    meta.name = name;
    auto schema = Schema::Create({{"id", TypeId::kInt4, 4, false},
                                  {"amount", TypeId::kInt4, 4, false},
                                  {"tag", TypeId::kChar, 8, false}},
                                 type);
    ASSERT_TRUE(schema.ok());
    meta.schema = std::move(schema).value();
    ASSERT_TRUE(catalog_.Create(std::move(meta)).ok());
  }

  Result<BoundStatement> Bind(const std::string& text) {
    auto stmt = Parser::ParseStatement(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmt_ = std::move(stmt).value();
    Binder binder(&catalog_, &ranges_);
    switch (stmt_->kind) {
      case Statement::Kind::kRetrieve:
        return binder.BindRetrieve(static_cast<RetrieveStmt*>(stmt_.get()));
      case Statement::Kind::kAppend:
        return binder.BindAppend(static_cast<AppendStmt*>(stmt_.get()));
      case Statement::Kind::kDelete:
        return binder.BindDelete(static_cast<DeleteStmt*>(stmt_.get()));
      case Statement::Kind::kReplace:
        return binder.BindReplace(static_cast<ReplaceStmt*>(stmt_.get()));
      default:
        return Status::Internal("not a bindable statement");
    }
  }

  MemEnv env_;
  Catalog catalog_{&env_, "/cat"};
  std::map<std::string, std::string> ranges_;
  std::unique_ptr<Statement> stmt_;
};

TEST_F(BinderTest, ResolvesVarsAndAttrs) {
  auto bound = Bind("retrieve (t.id, t.amount) where t.id = 5");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->vars.size(), 1u);
  EXPECT_EQ(bound->vars[0].rel->name, "t_rel");
  auto* r = static_cast<RetrieveStmt*>(stmt_.get());
  EXPECT_EQ(r->targets[0].expr->var_index, 0);
  EXPECT_EQ(r->targets[0].expr->attr_index, 0);
  EXPECT_EQ(r->targets[1].expr->attr_index, 1);
}

TEST_F(BinderTest, TwoVarsInFirstReferenceOrder) {
  auto bound = Bind("retrieve (h.id, t.id) where h.id = t.amount");
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->vars.size(), 2u);
  EXPECT_EQ(bound->vars[0].rel->name, "h_rel");
  EXPECT_EQ(bound->vars[1].rel->name, "t_rel");
}

TEST_F(BinderTest, UnknownVarFails) {
  auto bound = Bind("retrieve (z.id)");
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownAttrFails) {
  auto bound = Bind("retrieve (t.nope)");
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, ImplicitAttrsAreBindable) {
  auto bound = Bind("retrieve (t.id, t.transaction_start, t.valid_to)");
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
}

TEST_F(BinderTest, TargetNamesDerivedAndDeduped) {
  auto bound = Bind("retrieve (t.id, h.id, x = t.amount + 1)");
  ASSERT_TRUE(bound.ok());
  auto* r = static_cast<RetrieveStmt*>(stmt_.get());
  EXPECT_EQ(r->targets[0].name, "id");
  EXPECT_EQ(r->targets[1].name, "id_2");  // deduplicated
  EXPECT_EQ(r->targets[2].name, "x");
}

TEST_F(BinderTest, AllExpansion) {
  auto bound = Bind("retrieve (t.all)");
  ASSERT_TRUE(bound.ok());
  auto* r = static_cast<RetrieveStmt*>(stmt_.get());
  ASSERT_EQ(r->targets.size(), 3u);  // user attributes only
  EXPECT_EQ(r->targets[0].name, "id");
  EXPECT_EQ(r->targets[2].name, "tag");
}

TEST_F(BinderTest, WhenRequiresValidTime) {
  EXPECT_TRUE(Bind("retrieve (t.id) when t overlap \"now\"").ok());
  EXPECT_TRUE(Bind("retrieve (h.id) when h overlap \"now\"").ok());
  EXPECT_FALSE(Bind("retrieve (r.id) when r overlap \"now\"").ok());
  EXPECT_FALSE(Bind("retrieve (s.id) when s overlap \"now\"").ok());
}

TEST_F(BinderTest, AsOfRequiresTransactionTime) {
  EXPECT_TRUE(Bind("retrieve (t.id) as of \"now\"").ok());
  EXPECT_TRUE(Bind("retrieve (r.id) as of \"now\"").ok());
  EXPECT_FALSE(Bind("retrieve (h.id) as of \"now\"").ok());
  EXPECT_FALSE(Bind("retrieve (s.id) as of \"now\"").ok());
}

TEST_F(BinderTest, MixedVarsNeedCommonSupport) {
  // A when clause mentioning a valid-time var is fine, but if a rollback
  // var participates in the same statement the clause is inapplicable.
  EXPECT_FALSE(
      Bind("retrieve (t.id, r.id) where t.id = r.id when t overlap \"now\"")
          .ok());
}

TEST_F(BinderTest, AsOfMustBeConstant) {
  EXPECT_FALSE(Bind("retrieve (t.id) as of start of t").ok());
}

TEST_F(BinderTest, ValidClauseOnRollbackFails) {
  EXPECT_FALSE(
      Bind("retrieve (r.id) valid from \"1980\" to \"1981\"").ok());
}

TEST_F(BinderTest, AggregatesOnlyInTargets) {
  EXPECT_TRUE(Bind("retrieve (n = count(t.id))").ok());
  EXPECT_FALSE(Bind("retrieve (t.id) where count(t.id) > 1").ok());
}

TEST_F(BinderTest, AppendChecksRelationAndTargets) {
  EXPECT_TRUE(Bind("append to t_rel (id = 1)").ok());
  EXPECT_FALSE(Bind("append to missing (id = 1)").ok());
  EXPECT_FALSE(Bind("append to t_rel (nope = 1)").ok());
  // Implicit attributes cannot be assigned directly.
  EXPECT_FALSE(Bind("append to t_rel (valid_from = 1)").ok());
  // Bare expression targets are rejected for append.
  EXPECT_FALSE(Bind("append to t_rel (t.id)").ok());
}

TEST_F(BinderTest, AppendValidClauseApplicability) {
  EXPECT_TRUE(
      Bind("append to h_rel (id = 1) valid from \"1980\" to \"forever\"")
          .ok());
  EXPECT_FALSE(
      Bind("append to r_rel (id = 1) valid from \"1980\" to \"forever\"")
          .ok());
}

TEST_F(BinderTest, DeleteAndReplaceBindVar) {
  EXPECT_TRUE(Bind("delete t where t.id = 1").ok());
  EXPECT_TRUE(Bind("replace t (amount = t.amount + 1)").ok());
  EXPECT_FALSE(Bind("delete z").ok());
  EXPECT_FALSE(Bind("replace t (nope = 1)").ok());
}

TEST_F(BinderTest, RangeOverMissingRelation) {
  ranges_["q"] = "missing";
  EXPECT_FALSE(Bind("retrieve (q.id)").ok());
}

}  // namespace
}  // namespace tdb
