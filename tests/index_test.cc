// Tests of secondary indexing (Section 6): 1-level vs 2-level, heap vs
// hash structures, maintenance under updates, and query integration.

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/env.h"

namespace tdb {
namespace {

class IndexTest : public ::testing::TestWithParam<
                      std::tuple<const char*, int>> {  // structure, levels
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    options.start_time = TimePoint(100000);
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Exec("create persistent interval r (id = i4, amount = i4, pad = c100)");
    for (int i = 0; i < 32; ++i) {
      Exec("append to r (id = " + std::to_string(i) + ", amount = " +
           std::to_string(1000 + i) + ")");
    }
    Exec("modify r to hash on id where fillfactor = 100");
    Exec(std::string("index on r is am (amount) with structure = ") +
         Structure() + ", levels = " + std::to_string(Levels()));
    Exec("range of x is r");
  }

  const char* Structure() const { return std::get<0>(GetParam()); }
  int Levels() const { return std::get<1>(GetParam()); }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  uint64_t MeasureReads(const std::string& text, uint64_t* rows = nullptr) {
    EXPECT_TRUE(db_->DropAllBuffers().ok());
    db_->io()->ResetAll();
    auto r = db_->Execute(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    if (rows != nullptr && r.ok()) {
      *rows = static_cast<uint64_t>(r->affected);
    }
    return db_->io()->Total().TotalReads();
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_P(IndexTest, EqualityProbeFindsTheTuple) {
  auto r = db_->Execute(
      "retrieve (x.id) where x.amount = 1007 when x overlap \"now\"");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->result.num_rows(), 1u);
  EXPECT_EQ(r->result.rows[0][0].AsInt(), 7);
}

TEST_P(IndexTest, ProbeIsCheaperThanScan) {
  uint64_t with_index = MeasureReads(
      "retrieve (x.id) where x.amount = 1007 when x overlap \"now\"");
  // The relation has 4 data pages; a scan would read all of them.
  auto rel = db_->GetRelation("r");
  uint64_t scan_cost = (*rel)->primary()->page_count();
  if (std::string(Structure()) == "hash") {
    EXPECT_LT(with_index, scan_cost);
  } else {
    // A heap index scan may be comparable at this tiny size, but it must
    // at least find the right answer; cost is asserted for hash only.
    EXPECT_GT(with_index, 0u);
  }
}

TEST_P(IndexTest, IndexMaintainedAcrossReplaces) {
  for (int round = 0; round < 3; ++round) {
    db_->AdvanceSeconds(1000);
    Exec("replace x (pad = \"r\") where x.id = 7");
  }
  auto r = db_->Execute(
      "retrieve (x.id) where x.amount = 1007 when x overlap \"now\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 1u);
  // All versions are reachable through the index too.
  auto all = db_->Execute(
      "retrieve (x.id) where x.amount = 1007 "
      "as of \"beginning\" through \"forever\"");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->result.num_rows(), 7u);
}

TEST_P(IndexTest, IndexedAttributeChangeMovesEntry) {
  db_->AdvanceSeconds(1000);
  Exec("replace x (amount = 9999) where x.id = 7");
  auto old_probe = db_->Execute(
      "retrieve (x.id) where x.amount = 1007 when x overlap \"now\"");
  ASSERT_TRUE(old_probe.ok());
  EXPECT_EQ(old_probe->result.num_rows(), 0u);
  auto new_probe = db_->Execute(
      "retrieve (x.id) where x.amount = 9999 when x overlap \"now\"");
  ASSERT_TRUE(new_probe.ok());
  EXPECT_EQ(new_probe->result.num_rows(), 1u);
}

TEST_P(IndexTest, CurrentOnlyProbeStaysCheapFor2Level) {
  if (Levels() != 2 || std::string(Structure()) != "hash") GTEST_SKIP();
  uint64_t base = MeasureReads(
      "retrieve (x.id) where x.amount = 1007 when x overlap \"now\"");
  for (int round = 0; round < 5; ++round) {
    db_->AdvanceSeconds(1000);
    Exec("replace x (pad = \"u\")");
  }
  uint64_t after = MeasureReads(
      "retrieve (x.id) where x.amount = 1007 when x overlap \"now\"");
  // The 2-level index answers current-state probes from the (small)
  // current structure: flat cost — the paper's "3717 pages to 2" effect.
  EXPECT_EQ(after, base);
  EXPECT_LE(after, 2u);
}

TEST_P(IndexTest, DeleteRemovesFromCurrentProbe) {
  Exec("delete x where x.id = 7");
  auto r = db_->Execute(
      "retrieve (x.id) where x.amount = 1007 when x overlap \"now\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 0u);
}

TEST_P(IndexTest, SurvivesModifyReorganization) {
  Exec("modify r to isam on id where fillfactor = 50");
  auto r = db_->Execute(
      "retrieve (x.id) where x.amount = 1007 when x overlap \"now\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 1u);
}

TEST_P(IndexTest, PersistsAcrossReopen) {
  db_.reset();
  DatabaseOptions options;
  options.env = &env_;
  options.start_time = TimePoint(200000);
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  db_ = std::move(db).value();
  Exec("range of x is r");
  auto r = db_->Execute(
      "retrieve (x.id) where x.amount = 1010 when x overlap \"now\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, IndexTest,
    ::testing::Combine(::testing::Values("heap", "hash"),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param)) + "level";
    });

TEST(IndexDdlTest, Errors) {
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Execute("create r (id = i4, v = i4)").ok());
  // Unknown relation / attribute, duplicate index.
  EXPECT_FALSE((*db)->Execute("index on nope is i (v)").ok());
  EXPECT_FALSE((*db)->Execute("index on r is i (nope)").ok());
  ASSERT_TRUE((*db)->Execute("index on r is i (v)").ok());
  EXPECT_FALSE((*db)->Execute("index on r is j (v)").ok());
}

}  // namespace
}  // namespace tdb
