// Golden page-I/O regression test: locks the paper metrics (input/output
// page counts for Q01..Q12) for all eight test databases at update counts
// 0, 5 and 15.  Any execution-layer change that alters a page access —
// however it performs on wall-clock — fails here.
//
// The table was captured from the seed implementation (the same numbers
// the fig07/fig08 binaries print).  It must be regenerated ONLY when a
// deliberate storage/planner change moves the modeled counts, never to
// absorb an accidental executor regression.
//
// The test also exercises both evaluation modes: the compiled-expression
// path (default) and, in a second pass within the same process, nothing
// further — the AST fallback is covered by running the suite with
// TDB_COMPILED_EXPR=0 (the sanitizer CI job does this for fig07).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "benchlib/workload.h"

namespace tdb {
namespace bench {
namespace {

struct GoldenRow {
  DbType type;
  int fillfactor;
  int uc;
  int qnum;
  uint64_t input_pages;
  uint64_t output_pages;
};

// clang-format off
const GoldenRow kGolden[] = {
#include "paper_metrics_golden.inc"
};
// clang-format on

TEST(PaperMetricsTest, GoldenPageCounts) {
  BenchmarkDb* bench = nullptr;
  std::unique_ptr<BenchmarkDb> owned;
  DbType cur_type = DbType::kStatic;
  int cur_ff = -1;

  for (const GoldenRow& row : kGolden) {
    if (bench == nullptr || row.type != cur_type || row.fillfactor != cur_ff) {
      WorkloadConfig config;
      config.type = row.type;
      config.fillfactor = row.fillfactor;
      auto created = BenchmarkDb::Create(config);
      ASSERT_TRUE(created.ok()) << created.status().ToString();
      owned = std::move(created).value();
      bench = owned.get();
      cur_type = row.type;
      cur_ff = row.fillfactor;
    }
    ASSERT_LE(bench->update_count(), row.uc)
        << "golden rows must be ordered by update count within a config";
    while (bench->update_count() < row.uc) {
      ASSERT_TRUE(bench->UniformUpdateRound().ok());
    }
    auto m = bench->RunQuery(row.qnum);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    SCOPED_TRACE(testing::Message()
                 << DbTypeName(row.type) << " ff=" << row.fillfactor
                 << " uc=" << row.uc << " Q" << row.qnum);
    EXPECT_EQ(m->input_pages, row.input_pages);
    EXPECT_EQ(m->output_pages, row.output_pages);
  }
}

// Page counts must not depend on how often a query ran (buffers are dropped
// per measurement), so a repeated measurement is bit-stable.
TEST(PaperMetricsTest, RepeatedMeasurementIsStable) {
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  auto created = BenchmarkDb::Create(config);
  ASSERT_TRUE(created.ok());
  auto bench = std::move(created).value();
  auto first = bench->RunQuery(7);
  ASSERT_TRUE(first.ok());
  auto second = bench->RunQuery(7);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->input_pages, second->input_pages);
  EXPECT_EQ(first->output_pages, second->output_pages);
}

}  // namespace
}  // namespace bench
}  // namespace tdb
