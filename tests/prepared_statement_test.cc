// Tests of the statement pipeline: the prepared-statement surface
// (`prepare name as <stmt>` / `execute name (args)` / `deallocate name`,
// and the Session::Prepare / ExecutePrepared / DeallocatePrepared API the
// wire protocol lands on) and the shared plan cache behind it —
// invalidation on DML, DDL, and vacuum, cross-session sharing, and
// cache-on/cache-off result equivalence.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/session.h"
#include "env/env.h"
#include "obs/metrics.h"
#include "types/value.h"

namespace tdb {
namespace {

class PreparedStatementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(PreparedStatementTest, TquelSurfaceRoundTrip) {
  ASSERT_TRUE(db_->ExecuteScript("create emp (name = c8, sal = i4);"
                                 "range of e is emp;"
                                 "append to emp (name = \"ada\", sal = 120);"
                                 "append to emp (name = \"bob\", sal = 80)")
                  .ok());
  auto prep = db_->Execute(
      "prepare highpaid as retrieve (e.name, e.sal) where e.sal > $1");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();

  auto rows = db_->Query("execute highpaid (100)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][1].AsInt(), 120);

  // Same statement, different argument — no re-prepare needed.
  rows = db_->Query("execute highpaid (50)");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);

  ASSERT_TRUE(db_->Execute("deallocate highpaid").ok());
  EXPECT_FALSE(db_->Execute("execute highpaid (100)").ok());
}

TEST_F(PreparedStatementTest, SessionApiMirrorsTheSurface) {
  ASSERT_TRUE(db_->Execute("create emp (sal = i4)").ok());
  auto session = db_->CreateSession();
  ASSERT_TRUE(session->Execute("range of e is emp").ok());

  auto prep =
      session->Prepare("ins", "append to emp (sal = $1)");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  for (int i = 0; i < 3; ++i) {
    auto run = session->ExecutePrepared("ins", {Value::Int4(100 + i)});
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->affected, 1);
  }
  auto count = session->Query("retrieve (n = count(e.sal))");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 3);

  // Wrong arity is rejected before execution.
  EXPECT_FALSE(session->ExecutePrepared("ins", {}).ok());
  EXPECT_FALSE(
      session->ExecutePrepared("ins", {Value::Int4(1), Value::Int4(2)}).ok());

  ASSERT_TRUE(session->DeallocatePrepared("ins").ok());
  EXPECT_FALSE(session->ExecutePrepared("ins", {Value::Int4(1)}).ok());
  EXPECT_FALSE(session->DeallocatePrepared("ins").ok());  // already gone
}

TEST_F(PreparedStatementTest, FailedPrepareLeavesNoState) {
  ASSERT_TRUE(db_->Execute("create emp (sal = i4)").ok());
  auto session = db_->CreateSession();
  ASSERT_TRUE(session->Execute("range of e is emp").ok());

  // Binding failure: unknown attribute.
  EXPECT_FALSE(session->Prepare("bad", "retrieve (e.nope)").ok());
  // Unsupported inner kind.
  EXPECT_FALSE(session->Prepare("bad", "create t (v = i4)").ok());
  // The failed prepares left no entry: the name is free for a valid one.
  auto prep = session->Prepare("bad", "retrieve (e.sal) where e.sal > $1");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  EXPECT_TRUE(session->ExecutePrepared("bad", {Value::Int4(0)}).ok());

  // A name in use rejects a second prepare without disturbing the first.
  EXPECT_FALSE(session->Prepare("bad", "retrieve (e.sal)").ok());
  EXPECT_TRUE(session->ExecutePrepared("bad", {Value::Int4(0)}).ok());
}

TEST_F(PreparedStatementTest, PreparedStatementsArePerSession) {
  ASSERT_TRUE(db_->Execute("create emp (sal = i4)").ok());
  auto s1 = db_->CreateSession();
  auto s2 = db_->CreateSession();
  ASSERT_TRUE(s1->Execute("range of e is emp").ok());
  ASSERT_TRUE(s2->Execute("range of e is emp").ok());
  ASSERT_TRUE(s1->Prepare("q", "retrieve (e.sal)").ok());
  EXPECT_TRUE(s1->ExecutePrepared("q", {}).ok());
  // s2 never prepared q.
  EXPECT_FALSE(s2->ExecutePrepared("q", {}).ok());
}

TEST_F(PreparedStatementTest, ReboundAtEveryExecuteSeesNewData) {
  ASSERT_TRUE(db_->ExecuteScript("create emp (sal = i4);"
                                 "range of e is emp")
                  .ok());
  auto session = db_->CreateSession();
  ASSERT_TRUE(session->Execute("range of e is emp").ok());
  ASSERT_TRUE(session->Prepare("q", "retrieve (e.sal) where e.sal > $1").ok());

  auto before = session->ExecutePrepared("q", {Value::Int4(0)});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->result.rows.size(), 0u);
  ASSERT_TRUE(db_->Execute("append to emp (sal = 5)").ok());
  auto after = session->ExecutePrepared("q", {Value::Int4(0)});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result.rows.size(), 1u);
}

// --- the shared plan cache -------------------------------------------------

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    options.metrics = true;
    options.plan_cache = true;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    ASSERT_TRUE(db_->ExecuteScript("create emp (name = c8, sal = i4);"
                                   "range of e is emp;"
                                   "append to emp (name = \"ada\", sal = 1);"
                                   "append to emp (name = \"bob\", sal = 2)")
                    .ok());
  }

  uint64_t Hits() { return db_->Snapshot().counter("plancache.hits"); }
  uint64_t Misses() { return db_->Snapshot().counter("plancache.misses"); }

  Result<ResultSet> Read() { return db_->Query("retrieve (e.sal)"); }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(PlanCacheTest, RepeatedRetrieveHitsTheCache) {
  ASSERT_TRUE(Read().ok());  // cold: miss, populates
  const uint64_t misses = Misses();
  const uint64_t hits = Hits();
  for (int i = 0; i < 3; ++i) {
    auto rows = Read();
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows.size(), 2u);
  }
  EXPECT_EQ(Misses(), misses);
  EXPECT_EQ(Hits(), hits + 3);
}

TEST_F(PlanCacheTest, DmlInvalidates) {
  ASSERT_TRUE(Read().ok());
  ASSERT_TRUE(Read().ok());  // warm
  const uint64_t misses = Misses();
  // A write moves the relation's version stamp: the next read must miss
  // (fresh key) and see the new row.
  ASSERT_TRUE(db_->Execute("append to emp (name = \"eve\", sal = 3)").ok());
  auto rows = Read();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 3u);
  EXPECT_EQ(Misses(), misses + 1);
}

TEST_F(PlanCacheTest, DdlInvalidates) {
  ASSERT_TRUE(Read().ok());
  ASSERT_TRUE(Read().ok());
  const uint64_t misses = Misses();
  // modify rebuilds the relation's storage and bumps the catalog
  // generation: the cached plan (a heap scan) must not survive.
  ASSERT_TRUE(db_->Execute("modify emp to hash on sal").ok());
  auto rows = Read();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(Misses(), misses + 1);
}

TEST_F(PlanCacheTest, VacuumInvalidates) {
  // vacuum only applies to two-level transaction-time stores with retired
  // versions, so build one and retire a version of each tuple first.
  ASSERT_TRUE(
      db_->ExecuteScript(
             "create persistent hist (name = c8, sal = i4);"
             "range of h is hist;"
             "append to hist (name = \"ada\", sal = 1);"
             "append to hist (name = \"bob\", sal = 2);"
             "modify hist to twolevel hash on name where fillfactor = 100;"
             "replace h (sal = h.sal + 1)")
          .ok());
  auto read_hist = [&] { return db_->Query("retrieve (h.sal)"); };
  ASSERT_TRUE(read_hist().ok());
  ASSERT_TRUE(read_hist().ok());  // warm
  const uint64_t misses = Misses();
  ASSERT_TRUE(db_->Execute("vacuum hist").ok());
  auto rows = read_hist();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(Misses(), misses + 1);
}

TEST_F(PlanCacheTest, SharedAcrossSessions) {
  auto s1 = db_->CreateSession();
  auto s2 = db_->CreateSession();
  ASSERT_TRUE(s1->Execute("range of e is emp").ok());
  ASSERT_TRUE(s2->Execute("range of e is emp").ok());
  ASSERT_TRUE(s1->Query("retrieve (e.sal)").ok());  // populates
  const uint64_t hits = Hits();
  auto rows = s2->Query("retrieve (e.sal)");  // same key: s2 hits s1's entry
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(Hits(), hits + 1);
}

TEST_F(PlanCacheTest, CachedResultsMatchUncached) {
  // The same query battery against this (cache-on) database and a twin
  // with the cache off must produce identical row sets — a cache hit may
  // change CPU cost, never results.
  DatabaseOptions options;
  options.env = &env_;
  options.plan_cache = false;
  auto plain = Database::Open("/db_plain", options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE((*plain)
                  ->ExecuteScript("create emp (name = c8, sal = i4);"
                                  "range of e is emp;"
                                  "append to emp (name = \"ada\", sal = 1);"
                                  "append to emp (name = \"bob\", sal = 2)")
                  .ok());
  const char* queries[] = {
      "retrieve (e.sal)",
      "retrieve (e.name, e.sal) where e.sal > 1",
      "retrieve (e.sal) where e.sal = 2 or e.sal = 1",
  };
  for (const char* q : queries) {
    for (int round = 0; round < 2; ++round) {  // second round hits the cache
      auto cached = db_->Query(q);
      auto fresh = (*plain)->Query(q);
      ASSERT_TRUE(cached.ok()) << q;
      ASSERT_TRUE(fresh.ok()) << q;
      ASSERT_EQ(cached->rows.size(), fresh->rows.size()) << q;
      for (size_t r = 0; r < cached->rows.size(); ++r) {
        for (size_t col = 0; col < cached->rows[r].size(); ++col) {
          EXPECT_EQ(cached->rows[r][col].ToString(),
                    fresh->rows[r][col].ToString())
              << q;
        }
      }
    }
  }
}

TEST_F(PlanCacheTest, ConcurrentPrepareExecuteDeallocate) {
  // Several sessions hammer prepare/execute/deallocate and cached reads
  // at once; run under TSan in CI.  Every operation must succeed and the
  // shared cache must stay coherent with the interleaved writes.
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      auto session = db_->CreateSession();
      if (!session->Execute("range of e is emp").ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRounds; ++i) {
        const std::string name = "q" + std::to_string(t);
        if (!session->Prepare(name, "retrieve (e.sal) where e.sal > $1")
                 .ok() ||
            !session->ExecutePrepared(name, {Value::Int4(i % 3)}).ok() ||
            !session->DeallocatePrepared(name).ok()) {
          failures.fetch_add(1);
          return;
        }
        if (t == 0 && i % 5 == 0 &&
            !session->Execute("append to emp (name = \"w\", sal = 9)").ok()) {
          failures.fetch_add(1);
          return;
        }
        if (!session->Query("retrieve (e.name)").ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(Hits(), 0u);
}

}  // namespace
}  // namespace tdb
