#include "storage/hash_file.h"

#include <gtest/gtest.h>

#include <map>

#include "storage_test_util.h"
#include "util/random.h"

namespace tdb {
namespace {

using testutil::DrainKeys;
using testutil::KeyedRecord;
using testutil::SmallLayout;

class HashFileTest : public ::testing::Test {
 protected:
  std::unique_ptr<HashFile> Create(uint32_t buckets,
                                   uint16_t record_size = 32) {
    auto pager = Pager::Open(&env_, "/hash", &counters_);
    EXPECT_TRUE(pager.ok());
    auto file =
        HashFile::Create(std::move(*pager), SmallLayout(record_size), buckets);
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    return std::move(file).value();
  }

  MemEnv env_;
  IoCounters counters_;
};

TEST_F(HashFileTest, CreateFormatsPrimaryBuckets) {
  auto file = Create(8);
  EXPECT_EQ(file->page_count(), 8u);
  EXPECT_EQ(file->nbuckets(), 8u);
}

TEST_F(HashFileTest, BucketsForMatchesPaperSizing) {
  // 1024 temporal tuples (124 bytes, 8/page): 128 buckets at 100%, 256 at
  // 50% — the paper's primary page counts.
  EXPECT_EQ(HashFile::BucketsFor(1024, 124, kPageSize, 100), 128u);
  EXPECT_EQ(HashFile::BucketsFor(1024, 124, kPageSize, 50), 256u);
  // 1024 static tuples (108 bytes, 9/page) at 100%: 114 pages.
  EXPECT_EQ(HashFile::BucketsFor(1024, 108, kPageSize, 100), 114u);
  EXPECT_GE(HashFile::BucketsFor(0, 124, kPageSize, 100), 1u);
}

TEST_F(HashFileTest, DivisionHashingSpreadsSequentialKeys) {
  auto file = Create(16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(file->BucketOf(Value::Int4(i)), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(file->BucketOf(Value::Int4(16)), 0u);
}

TEST_F(HashFileTest, InsertAndScanKey) {
  auto file = Create(4);
  for (int i = 0; i < 40; ++i) {
    auto rec = KeyedRecord(i);
    ASSERT_TRUE(file->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  auto cur = file->ScanKey(Value::Int4(13));
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(DrainKeys(cur->get()), (std::vector<int32_t>{13}));
}

TEST_F(HashFileTest, ScanKeyReturnsAllVersionsInChainOrder) {
  auto file = Create(4);
  // "Versions": same key inserted repeatedly.
  for (int v = 0; v < 10; ++v) {
    auto rec = KeyedRecord(5, 32, static_cast<uint8_t>(v + 1));
    ASSERT_TRUE(file->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  auto cur = file->ScanKey(Value::Int4(5));
  int count = 0;
  uint8_t last = 0;
  while (true) {
    auto have = (*cur)->Next();
    ASSERT_TRUE(have.ok());
    if (!*have) break;
    uint8_t marker = (*cur)->record()[8];
    EXPECT_GT(marker, last);  // oldest first along the chain
    last = marker;
    ++count;
  }
  EXPECT_EQ(count, 10);
}

TEST_F(HashFileTest, OverflowChainGrowth) {
  auto file = Create(1, 32);  // single bucket: everything chains
  uint16_t cap = Page::Capacity(32);
  for (int i = 0; i < cap * 4; ++i) {
    auto rec = KeyedRecord(0, 32, static_cast<uint8_t>(1 + i % 250));
    ASSERT_TRUE(file->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  EXPECT_EQ(file->page_count(), 4u);  // 1 primary + 3 overflow
  EXPECT_EQ(file->CategoryOf(0), IoCategory::kData);
  EXPECT_EQ(file->CategoryOf(3), IoCategory::kOverflow);
}

TEST_F(HashFileTest, KeyedAccessReadsWholeChain) {
  auto file = Create(1, 32);
  uint16_t cap = Page::Capacity(32);
  for (int i = 0; i < cap * 3; ++i) {
    auto rec = KeyedRecord(0);
    ASSERT_TRUE(file->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  ASSERT_TRUE(file->pager()->FlushAndDrop().ok());
  counters_.Reset();
  auto cur = file->ScanKey(Value::Int4(0));
  (void)DrainKeys(cur->get());
  // The paper's central effect: a hashed access reads the entire chain.
  EXPECT_EQ(counters_.TotalReads(), 3u);
}

TEST_F(HashFileTest, FillSlackBeforeNewOverflow) {
  // At 50% loading the first update round fills the slack (the jagged
  // Figure 8(b) effect): inserts go to existing free slots first.
  auto file = Create(2, 100);  // capacity 10 per page
  for (int i = 0; i < 10; ++i) {
    auto rec = KeyedRecord(i % 2, 100);
    ASSERT_TRUE(file->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  EXPECT_EQ(file->page_count(), 2u);  // still primary only
}

TEST_F(HashFileTest, ScanVisitsPrimaryAndOverflow) {
  auto file = Create(2, 32);
  for (int i = 0; i < 100; ++i) {
    auto rec = KeyedRecord(i);
    ASSERT_TRUE(file->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  auto cur = file->Scan();
  EXPECT_EQ(DrainKeys(cur->get()).size(), 100u);
}

TEST_F(HashFileTest, UpdateInPlaceAndErase) {
  auto file = Create(4);
  Tid tid;
  auto rec = KeyedRecord(9);
  ASSERT_TRUE(file->Insert(rec.data(), rec.size(), &tid).ok());
  auto updated = KeyedRecord(9, 32, 0x44);
  ASSERT_TRUE(file->UpdateInPlace(tid, updated.data(), updated.size()).ok());
  EXPECT_EQ(*file->Fetch(tid), updated);
  ASSERT_TRUE(file->Erase(tid).ok());
  EXPECT_FALSE(file->Fetch(tid).ok());
  auto cur = file->ScanKey(Value::Int4(9));
  EXPECT_TRUE(DrainKeys(cur->get()).empty());
}

TEST_F(HashFileTest, OpenValidatesBucketRegion) {
  {
    auto file = Create(8);
    ASSERT_TRUE(file->pager()->Flush().ok());
  }
  auto pager = Pager::Open(&env_, "/hash", &counters_);
  EXPECT_FALSE(HashFile::Open(std::move(*pager), SmallLayout(), 16).ok());
}

TEST_F(HashFileTest, CreateRequiresKeyAndBuckets) {
  auto pager = Pager::Open(&env_, "/x", &counters_);
  RecordLayout keyless;
  keyless.record_size = 32;
  EXPECT_FALSE(HashFile::Create(std::move(*pager), keyless, 4).ok());
  auto pager2 = Pager::Open(&env_, "/y", &counters_);
  EXPECT_FALSE(HashFile::Create(std::move(*pager2), SmallLayout(), 0).ok());
}

// Property: after N inserts across random keys, every record is findable
// via its key and the total scan count matches.
class HashProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HashProperty, AllRecordsFindable) {
  MemEnv env;
  IoCounters counters;
  auto pager = Pager::Open(&env, "/h", &counters);
  auto file = HashFile::Create(std::move(*pager), SmallLayout(), GetParam());
  ASSERT_TRUE(file.ok());
  std::map<int32_t, int> expected;
  Random rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    int32_t key = static_cast<int32_t>(rng.Uniform(60));
    auto rec = KeyedRecord(key);
    ASSERT_TRUE((*file)->Insert(rec.data(), rec.size(), nullptr).ok());
    ++expected[key];
  }
  for (const auto& [key, count] : expected) {
    auto cur = (*file)->ScanKey(Value::Int4(key));
    ASSERT_TRUE(cur.ok());
    EXPECT_EQ(DrainKeys(cur->get()).size(), static_cast<size_t>(count));
  }
  auto cur = (*file)->Scan();
  EXPECT_EQ(DrainKeys(cur->get()).size(), 500u);
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, HashProperty,
                         ::testing::Values(1, 2, 7, 16, 64));

}  // namespace
}  // namespace tdb
