// Query-processing tests: access-path selection (verified through the I/O
// accounting), decomposition plans, default as-of semantics, valid-clause
// computation, and result shapes.

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/env.h"

namespace tdb {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    options.start_time = TimePoint(100000);
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  /// Executes under measurement; returns (rows, pages read).
  std::pair<uint64_t, uint64_t> Measure(const std::string& text) {
    EXPECT_TRUE(db_->DropAllBuffers().ok());
    db_->io()->ResetAll();
    auto r = db_->Execute(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return {r.ok() ? static_cast<uint64_t>(r->affected) : 0,
            db_->io()->Total().TotalReads()};
  }

  /// Builds a 64-tuple keyed relation of the given type/organization.  The
  /// c96 pad reproduces the paper's 108-byte tuples (8-9 per page), so the
  /// page-count assertions below are structural, not incidental.
  void BuildRelation(const std::string& name, const std::string& create_kind,
                     const std::string& org) {
    Exec("create " + create_kind + " " + name +
         " (id = i4, amount = i4, pad = c100)");
    for (int i = 0; i < 64; ++i) {
      Exec("append to " + name + " (id = " + std::to_string(i) +
           ", amount = " + std::to_string(i * 100) + ")");
    }
    if (org != "heap") {
      Exec("modify " + name + " to " + org + " on id where fillfactor = 100");
    }
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(QueryTest, HashedAccessReadsOneBucket) {
  BuildRelation("r", "persistent interval", "hash");
  Exec("range of x is r");
  auto [rows, reads] = Measure("retrieve (x.amount) where x.id = 7");
  EXPECT_EQ(rows, 1u);
  EXPECT_EQ(reads, 1u);  // exactly the bucket page
}

TEST_F(QueryTest, IsamAccessReadsDirectoryPlusPage) {
  BuildRelation("r", "persistent interval", "isam");
  Exec("range of x is r");
  auto [rows, reads] = Measure("retrieve (x.amount) where x.id = 7");
  EXPECT_EQ(rows, 1u);
  EXPECT_EQ(reads, 2u);  // 1 directory + 1 data page
}

TEST_F(QueryTest, NonKeyPredicateForcesSequentialScan) {
  BuildRelation("r", "persistent interval", "hash");
  Exec("range of x is r");
  auto [rows, reads] = Measure("retrieve (x.id) where x.amount = 700");
  EXPECT_EQ(rows, 1u);
  auto rel = db_->GetRelation("r");
  EXPECT_EQ(reads, (*rel)->primary()->page_count());  // whole file
}

TEST_F(QueryTest, HeapRelationAlwaysScans) {
  BuildRelation("r", "persistent interval", "heap");
  Exec("range of x is r");
  auto [rows, reads] = Measure("retrieve (x.id) where x.id = 7");
  EXPECT_EQ(rows, 1u);
  auto rel = db_->GetRelation("r");
  EXPECT_EQ(reads, (*rel)->primary()->page_count());
}

TEST_F(QueryTest, KeyedAccessFindsAllVersions) {
  BuildRelation("r", "persistent interval", "hash");
  Exec("range of x is r");
  Exec("replace x (amount = x.amount + 1) where x.id = 7");
  Exec("replace x (amount = x.amount + 1) where x.id = 7");
  // Version scan: 1 original + 2 per replace.
  auto r = db_->Execute(
      "retrieve (x.amount) where x.id = 7 "
      "as of \"beginning\" through \"forever\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 5u);
}

TEST_F(QueryTest, DefaultAsOfNowHidesSupersededVersions) {
  BuildRelation("r", "persistent interval", "hash");
  Exec("range of x is r");
  Exec("replace x (amount = 1) where x.id = 7");
  auto r = db_->Execute("retrieve (x.amount) where x.id = 7");
  ASSERT_TRUE(r.ok());
  // As of now: the correction (old value, closed validity) and the new
  // version; the superseded original is invisible.
  EXPECT_EQ(r->result.num_rows(), 2u);
}

TEST_F(QueryTest, SubstitutionJoinUsesKeyedInner) {
  BuildRelation("a", "persistent interval", "hash");
  BuildRelation("b", "persistent interval", "isam");
  Exec("range of x is a");
  Exec("range of y is b");
  // Join y.amount (0,100,...) to x.id (0..63): 1 match (id=0... id=100/100?)
  // amounts 0..6300 step 100; ids 0..63: matches where amount==id: only 0.
  auto [rows, reads] = Measure(
      "retrieve (x.id, y.id) where x.id = y.amount "
      "when x overlap y and y overlap \"now\"");
  EXPECT_EQ(rows, 1u);
  // Plan: scan b (ISAM data pages) + temp I/O + 64 hashed probes into a.
  auto a = db_->GetRelation("a");
  auto b = db_->GetRelation("b");
  uint64_t b_data = (*b)->primary()->page_count() - 1;  // minus directory
  EXPECT_GE(reads, b_data + 64);
  EXPECT_LE(reads, b_data + 64 + 20);  // + temp and probe chains
}

TEST_F(QueryTest, NestedLoopWhenNoKeyedPath) {
  BuildRelation("a", "persistent interval", "hash");
  BuildRelation("b", "persistent interval", "hash");
  Exec("range of x is a");
  Exec("range of y is b");
  // No equality on any key: nested sequential scans.
  auto r = db_->Execute(
      "retrieve (x.id, y.id) where x.amount = y.amount and x.id < 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 3u);
}

TEST_F(QueryTest, ConstantKeyJoinQ12Shape) {
  BuildRelation("a", "persistent interval", "hash");
  BuildRelation("b", "persistent interval", "isam");
  Exec("range of x is a");
  Exec("range of y is b");
  auto [rows, reads] = Measure(
      "retrieve (x.id, y.id) where x.id = 5 and y.amount = 700 "
      "when x overlap y");
  EXPECT_EQ(rows, 1u);
  // Plan: sequential scan of b + ONE hashed access into a + temp.
  auto b = db_->GetRelation("b");
  uint64_t b_data = (*b)->primary()->page_count() - 1;
  EXPECT_GE(reads, b_data + 1);
  EXPECT_LE(reads, b_data + 5);
}

TEST_F(QueryTest, DefaultValidIsIntersection) {
  Exec("create interval r (id = i4)");
  Exec("create interval s (id = i4)");
  Exec("append to r (id = 1) valid from \"1/1/80\" to \"6/1/80\"");
  Exec("append to s (id = 1) valid from \"3/1/80\" to \"9/1/80\"");
  Exec("range of x is r");
  Exec("range of y is s");
  auto result =
      db_->Execute("retrieve (x.id) where x.id = y.id when x overlap y");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->result.num_rows(), 1u);
  // Columns: id, valid_from, valid_to.
  const Row& row = result->result.rows[0];
  EXPECT_EQ(row[1].AsTime(), *TimePoint::Parse("3/1/80"));
  EXPECT_EQ(row[2].AsTime(), *TimePoint::Parse("6/1/80"));
}

TEST_F(QueryTest, ExplicitValidClauseComputesInterval) {
  Exec("create interval r (id = i4)");
  Exec("append to r (id = 1) valid from \"1/1/80\" to \"6/1/80\"");
  Exec("range of x is r");
  auto result = db_->Execute(
      "retrieve (x.id) valid from end of x to \"forever\"");
  ASSERT_TRUE(result.ok());
  const Row& row = result->result.rows[0];
  EXPECT_EQ(row[1].AsTime(), *TimePoint::Parse("6/1/80"));
  EXPECT_TRUE(row[2].AsTime().is_forever());
}

TEST_F(QueryTest, NonOverlappingDefaultValidDropsRow) {
  Exec("create interval r (id = i4)");
  Exec("create interval s (id = i4)");
  Exec("append to r (id = 1) valid from \"1/1/80\" to \"2/1/80\"");
  Exec("append to s (id = 1) valid from \"5/1/80\" to \"6/1/80\"");
  Exec("range of x is r");
  Exec("range of y is s");
  // No when clause: the pair qualifies on where alone, but the default
  // valid interval (the overlap) is empty, so the row vanishes.
  auto result = db_->Execute("retrieve (x.id) where x.id = y.id");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.num_rows(), 0u);
}

TEST_F(QueryTest, StaticResultsCarryNoValidColumns) {
  Exec("create r (id = i4)");
  Exec("append to r (id = 1)");
  Exec("range of x is r");
  auto result = db_->Execute("retrieve (x.id)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.columns,
            (std::vector<std::string>{"id"}));
}

TEST_F(QueryTest, AggregatesIgnoreStatementFilters) {
  Exec("create r (id = i4, v = i4)");
  Exec("append to r (id = 1, v = 10)");
  Exec("append to r (id = 2, v = 20)");
  Exec("range of x is r");
  // The aggregate is an independent subquery over the whole relation.
  auto result = db_->Execute(
      "retrieve (x.id, frac = x.v * 100 / sum(x.v)) where x.id = 2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->result.num_rows(), 1u);
  EXPECT_EQ(result->result.rows[0][1].AsInt(), 66);  // 20 * 100 / 30
}

TEST_F(QueryTest, AggregateWithWhereClause) {
  Exec("create r (id = i4, v = i4)");
  for (int i = 1; i <= 6; ++i) {
    Exec("append to r (id = " + std::to_string(i) + ", v = " +
         std::to_string(i) + ")");
  }
  Exec("range of x is r");
  auto result =
      db_->Execute("retrieve (n = count(x.id where x.v > 3), "
                   "m = min(x.v where x.v > 3), a = avg(x.v))");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.rows[0][0].AsInt(), 3);
  EXPECT_EQ(result->result.rows[0][1].AsInt(), 4);
  EXPECT_DOUBLE_EQ(result->result.rows[0][2].AsDouble(), 3.5);
}

TEST_F(QueryTest, AggregateOverCurrentVersionsOnly) {
  Exec("create persistent interval r (id = i4, v = i4)");
  Exec("append to r (id = 1, v = 10)");
  Exec("range of x is r");
  Exec("replace x (v = 30)");
  auto result = db_->Execute("retrieve (s = sum(x.v), n = count(x.v))");
  ASSERT_TRUE(result.ok());
  // Only the current version (v=30) counts, not the 3 stored versions.
  EXPECT_EQ(result->result.rows[0][0].AsInt(), 30);
  EXPECT_EQ(result->result.rows[0][1].AsInt(), 1);
}

TEST_F(QueryTest, PlanSummariesDescribeAccessChoices) {
  BuildRelation("a", "persistent interval", "hash");
  BuildRelation("b", "persistent interval", "isam");
  Exec("range of x is a");
  Exec("range of y is b");

  auto keyed = db_->Execute("retrieve (x.amount) where x.id = 7");
  ASSERT_TRUE(keyed.ok());
  EXPECT_EQ(keyed->message, "plan: a:keyed");

  auto current = db_->Execute(
      "retrieve (x.amount) where x.id = 7 when x overlap \"now\"");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->message, "plan: a:keyed(current)");

  auto range = db_->Execute("retrieve (y.id) where y.id > 5 and y.id < 9");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->message, "plan: b:range");

  auto join = db_->Execute(
      "retrieve (x.id, y.id) where x.id = y.amount "
      "when x overlap y and y overlap \"now\"");
  ASSERT_TRUE(join.ok());
  // Substitution into the keyed inner; the outer was detached first.
  EXPECT_NE(join->message.find("substitution(a:keyed)"), std::string::npos)
      << join->message;
  EXPECT_NE(join->message.find("b:scan"), std::string::npos) << join->message;

  auto agg = db_->Execute("retrieve (n = count(x.id))");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->message, "plan: constant");
}

TEST_F(QueryTest, AggregatesHonorTheRollbackPoint) {
  Exec("create persistent r (id = i4, v = i4)");
  db_->SetNow(TimePoint(1000));
  Exec("append to r (id = 1, v = 10)");
  Exec("append to r (id = 2, v = 20)");
  Exec("range of x is r");
  db_->SetNow(TimePoint(2000));
  Exec("replace x (v = 100) where x.id = 1");
  Exec("delete x where x.id = 2");

  auto now_total = db_->Execute("retrieve (s = sum(x.v))");
  ASSERT_TRUE(now_total.ok());
  EXPECT_EQ(now_total->result.rows[0][0].AsInt(), 100);

  // As of 1500 the state was {10, 20}: the aggregate reflects it.
  auto then_total = db_->Execute("retrieve (s = sum(x.v)) as of \"" +
                                 TimePoint(1500).ToString() + "\"");
  ASSERT_TRUE(then_total.ok());
  EXPECT_EQ(then_total->result.rows[0][0].AsInt(), 30);
}

TEST_F(QueryTest, AsOfThroughSelectsTransactionRange) {
  Exec("create persistent r (id = i4, v = i4)");
  db_->SetNow(TimePoint(1000));
  Exec("append to r (id = 1, v = 1)");
  Exec("range of x is r");
  db_->SetNow(TimePoint(2000));
  Exec("replace x (v = 2)");
  db_->SetNow(TimePoint(3000));
  Exec("replace x (v = 3)");

  auto at1500 = db_->Execute("retrieve (x.v) as of \"" +
                             TimePoint(1500).ToString() + "\"");
  ASSERT_TRUE(at1500.ok());
  ASSERT_EQ(at1500->result.num_rows(), 1u);
  EXPECT_EQ(at1500->result.rows[0][0].AsInt(), 1);

  auto range = db_->Execute(
      "retrieve (x.v) as of \"" + TimePoint(1500).ToString() +
      "\" through \"" + TimePoint(2500).ToString() + "\"");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->result.num_rows(), 2u);  // v=1 and v=2 were current
}

TEST_F(QueryTest, EmptyRelationYieldsNoRows) {
  Exec("create persistent interval r (id = i4)");
  Exec("range of x is r");
  auto result = db_->Execute("retrieve (x.id)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.num_rows(), 0u);
}

TEST_F(QueryTest, ThreeWayJoin) {
  for (const char* name : {"a", "b", "c"}) {
    Exec(std::string("create ") + name + " (id = i4)");
    Exec(std::string("append to ") + name + " (id = 1)");
    Exec(std::string("append to ") + name + " (id = 2)");
    Exec(std::string("range of ") + name + " is " + name);
  }
  auto result = db_->Execute(
      "retrieve (a.id, b.id, c.id) where a.id = b.id and b.id = c.id");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.num_rows(), 2u);
}

TEST_F(QueryTest, RetrieveIntoHistoricalCarriesValidTime) {
  Exec("create interval r (id = i4)");
  Exec("append to r (id = 1) valid from \"1/1/80\" to \"6/1/80\"");
  Exec("range of x is r");
  Exec("retrieve into snap (x.id)");
  Exec("range of s is snap");
  auto result = db_->Execute("retrieve (s.id) when s overlap \"3/1/80\"");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.num_rows(), 1u);
  auto miss = db_->Execute("retrieve (s.id) when s overlap \"7/1/80\"");
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->result.num_rows(), 0u);
}

}  // namespace
}  // namespace tdb
