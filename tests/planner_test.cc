// Unit tests of the access-path planner: conjunct splitting, variable
// collection, access choice, and current-only detection.

#include "exec/planner.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/env.h"
#include "tquel/binder.h"
#include "tquel/parser.h"

namespace tdb {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Exec("create persistent interval hrel (id = i4, amount = i4, pad = c96)");
    Exec("create persistent interval irel (id = i4, amount = i4, pad = c96)");
    for (int i = 0; i < 20; ++i) {
      Exec("append to hrel (id = " + std::to_string(i) + ", amount = " +
           std::to_string(i * 7) + ")");
      Exec("append to irel (id = " + std::to_string(i) + ", amount = " +
           std::to_string(i * 7) + ")");
    }
    Exec("modify hrel to hash on id where fillfactor = 100");
    Exec("modify irel to isam on id where fillfactor = 100");
    Exec("index on hrel is am_h (amount) with structure = hash");
    Exec("range of h is hrel");
    Exec("range of i is irel");
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  /// Parses & binds a retrieve; returns the where conjuncts and keeps the
  /// statement alive.
  std::vector<Conjunct> Conjuncts(const std::string& text) {
    auto stmt = Parser::ParseStatement(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmt_ = std::move(stmt).value();
    auto* retrieve = static_cast<RetrieveStmt*>(stmt_.get());
    std::map<std::string, std::string> ranges = {{"h", "hrel"}, {"i", "irel"}};
    Binder binder(db_->catalog(), &ranges);
    auto bound = binder.BindRetrieve(retrieve);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    bound_ = std::move(bound).value();
    std::vector<Conjunct> out;
    SplitWhere(retrieve->where.get(), &out);
    return out;
  }

  Relation* Rel(const std::string& name) {
    auto rel = db_->GetRelation(name);
    EXPECT_TRUE(rel.ok());
    return *rel;
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Statement> stmt_;
  BoundStatement bound_;
};

TEST_F(PlannerTest, SplitWhereFlattensTopLevelAnds) {
  auto conjuncts = Conjuncts(
      "retrieve (h.id) where h.id = 1 and h.amount > 2 and "
      "(h.id = 3 or h.amount = 4)");
  ASSERT_EQ(conjuncts.size(), 3u);
  // The OR stays as one conjunct.
  EXPECT_EQ(conjuncts[2].expr->op, ExprOp::kOr);
  for (const Conjunct& c : conjuncts) {
    EXPECT_EQ(c.vars, std::set<int>{0});
  }
}

TEST_F(PlannerTest, KeyEqualityPicksKeyedAccess) {
  auto conjuncts = Conjuncts("retrieve (h.id) where h.id = 5");
  AccessChoice choice = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kKeyed);
}

TEST_F(PlannerTest, ReversedOperandsStillMatch) {
  auto conjuncts = Conjuncts("retrieve (h.id) where 5 = h.id");
  AccessChoice choice = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kKeyed);
}

TEST_F(PlannerTest, IndexedAttributePicksIndex) {
  auto conjuncts = Conjuncts("retrieve (h.id) where h.amount = 35");
  AccessChoice choice = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kIndexEq);
  EXPECT_NE(choice.index, nullptr);
}

TEST_F(PlannerTest, KeyBeatsIndex) {
  auto conjuncts =
      Conjuncts("retrieve (h.id) where h.amount = 35 and h.id = 5");
  AccessChoice choice = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kKeyed);
}

TEST_F(PlannerTest, NonKeyedFallsBackToScan) {
  auto conjuncts = Conjuncts("retrieve (i.id) where i.amount = 35");
  AccessChoice choice = ChooseAccess(0, Rel("irel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kScan);
}

TEST_F(PlannerTest, JoinKeyNeedsAvailability) {
  auto conjuncts = Conjuncts("retrieve (h.id, i.id) where h.id = i.amount");
  // Without i bound, h cannot be probed...
  AccessChoice scan = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(scan.kind, AccessChoice::Kind::kScan);
  // ...with i available it can.
  AccessChoice keyed = ChooseAccess(0, Rel("hrel"), conjuncts, {1});
  EXPECT_EQ(keyed.kind, AccessChoice::Kind::kKeyed);
}

TEST_F(PlannerTest, IsamRangeFromInequalities) {
  auto conjuncts =
      Conjuncts("retrieve (i.id) where i.id >= 4 and i.id < 9");
  AccessChoice choice = ChooseAccess(0, Rel("irel"), conjuncts, {});
  ASSERT_EQ(choice.kind, AccessChoice::Kind::kRange);
  EXPECT_NE(choice.lo_expr, nullptr);
  EXPECT_TRUE(choice.lo_inclusive);
  EXPECT_NE(choice.hi_expr, nullptr);
  EXPECT_FALSE(choice.hi_inclusive);
}

TEST_F(PlannerTest, MirroredInequalityIsNormalized) {
  // `9 > i.id` means i.id < 9: an upper bound.
  auto conjuncts = Conjuncts("retrieve (i.id) where 9 > i.id");
  AccessChoice choice = ChooseAccess(0, Rel("irel"), conjuncts, {});
  ASSERT_EQ(choice.kind, AccessChoice::Kind::kRange);
  EXPECT_EQ(choice.lo_expr, nullptr);
  EXPECT_NE(choice.hi_expr, nullptr);
}

TEST_F(PlannerTest, HashRelationGetsNoRange) {
  auto conjuncts = Conjuncts("retrieve (h.id) where h.id >= 4");
  AccessChoice choice = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kScan);
}

TEST_F(PlannerTest, EqualityBeatsRange) {
  auto conjuncts =
      Conjuncts("retrieve (i.id) where i.id >= 4 and i.id = 6");
  AccessChoice choice = ChooseAccess(0, Rel("irel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kKeyed);
}

TEST_F(PlannerTest, CurrentOnlyDetection) {
  auto stmt = Parser::ParseStatement(
      "retrieve (h.id) when h overlap \"now\" and h overlap i");
  ASSERT_TRUE(stmt.ok());
  stmt_ = std::move(stmt).value();
  auto* retrieve = static_cast<RetrieveStmt*>(stmt_.get());
  std::map<std::string, std::string> ranges = {{"h", "hrel"}, {"i", "irel"}};
  Binder binder(db_->catalog(), &ranges);
  ASSERT_TRUE(binder.BindRetrieve(retrieve).ok());
  std::vector<TemporalConjunct> when;
  SplitWhen(retrieve->when.get(), &when);
  ASSERT_EQ(when.size(), 2u);
  EXPECT_TRUE(WantsCurrentOnly(0, Rel("hrel"), when, /*as_of_is_now=*/true));
  EXPECT_FALSE(WantsCurrentOnly(1, Rel("irel"), when, true));
}

TEST_F(PlannerTest, CollectTemporalVars) {
  auto stmt = Parser::ParseStatement(
      "retrieve (h.id) when start of (h overlap i) precede \"1981\"");
  ASSERT_TRUE(stmt.ok());
  stmt_ = std::move(stmt).value();
  auto* retrieve = static_cast<RetrieveStmt*>(stmt_.get());
  std::map<std::string, std::string> ranges = {{"h", "hrel"}, {"i", "irel"}};
  Binder binder(db_->catalog(), &ranges);
  ASSERT_TRUE(binder.BindRetrieve(retrieve).ok());
  std::set<int> vars;
  CollectTemporalPredVars(retrieve->when.get(), &vars);
  EXPECT_EQ(vars, (std::set<int>{0, 1}));
}

}  // namespace
}  // namespace tdb
