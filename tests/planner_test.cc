// Unit tests of the access-path planner: conjunct splitting, variable
// collection, access choice, and current-only detection.

#include "exec/planner.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/env.h"
#include "exec/plan.h"
#include "tquel/binder.h"
#include "tquel/parser.h"

namespace tdb {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Exec("create persistent interval hrel (id = i4, amount = i4, pad = c96)");
    Exec("create persistent interval irel (id = i4, amount = i4, pad = c96)");
    for (int i = 0; i < 20; ++i) {
      Exec("append to hrel (id = " + std::to_string(i) + ", amount = " +
           std::to_string(i * 7) + ")");
      Exec("append to irel (id = " + std::to_string(i) + ", amount = " +
           std::to_string(i * 7) + ")");
    }
    Exec("modify hrel to hash on id where fillfactor = 100");
    Exec("modify irel to isam on id where fillfactor = 100");
    Exec("index on hrel is am_h (amount) with structure = hash");
    Exec("range of h is hrel");
    Exec("range of i is irel");
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  /// Parses & binds a retrieve; returns the where conjuncts and keeps the
  /// statement alive.
  std::vector<Conjunct> Conjuncts(const std::string& text) {
    auto stmt = Parser::ParseStatement(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmt_ = std::move(stmt).value();
    auto* retrieve = static_cast<RetrieveStmt*>(stmt_.get());
    std::map<std::string, std::string> ranges = {{"h", "hrel"}, {"i", "irel"}};
    Binder binder(db_->catalog(), &ranges);
    auto bound = binder.BindRetrieve(retrieve);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    bound_ = std::move(bound).value();
    std::vector<Conjunct> out;
    SplitWhere(retrieve->where.get(), &out);
    return out;
  }

  Relation* Rel(const std::string& name) {
    auto rel = db_->GetRelation(name);
    EXPECT_TRUE(rel.ok());
    return *rel;
  }

  /// Builds the physical plan for a retrieve through the Database facade
  /// (which routes to BuildPlan without executing).
  std::shared_ptr<const PhysicalPlan> Plan(const std::string& text) {
    auto plan = db_->Plan(text);
    EXPECT_TRUE(plan.ok()) << text << " -> " << plan.status().ToString();
    return plan.ok() ? std::move(plan).value() : nullptr;
  }

  /// The access leaf of a one-variable plan (reaching through any filter).
  const AccessNode* Access(const std::shared_ptr<const PhysicalPlan>& plan) {
    if (plan == nullptr || plan->root == nullptr) return nullptr;
    return AccessOf(plan->root->child.get());
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Statement> stmt_;
  BoundStatement bound_;
};

TEST_F(PlannerTest, SplitWhereFlattensTopLevelAnds) {
  auto conjuncts = Conjuncts(
      "retrieve (h.id) where h.id = 1 and h.amount > 2 and "
      "(h.id = 3 or h.amount = 4)");
  ASSERT_EQ(conjuncts.size(), 3u);
  // The OR stays as one conjunct.
  EXPECT_EQ(conjuncts[2].expr->op, ExprOp::kOr);
  for (const Conjunct& c : conjuncts) {
    EXPECT_EQ(c.vars, std::set<int>{0});
  }
}

TEST_F(PlannerTest, KeyEqualityPicksKeyedAccess) {
  auto conjuncts = Conjuncts("retrieve (h.id) where h.id = 5");
  AccessChoice choice = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kKeyed);
}

TEST_F(PlannerTest, ReversedOperandsStillMatch) {
  auto conjuncts = Conjuncts("retrieve (h.id) where 5 = h.id");
  AccessChoice choice = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kKeyed);
}

TEST_F(PlannerTest, IndexedAttributePicksIndex) {
  auto conjuncts = Conjuncts("retrieve (h.id) where h.amount = 35");
  AccessChoice choice = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kIndexEq);
  EXPECT_NE(choice.index, nullptr);
}

TEST_F(PlannerTest, KeyBeatsIndex) {
  auto conjuncts =
      Conjuncts("retrieve (h.id) where h.amount = 35 and h.id = 5");
  AccessChoice choice = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kKeyed);
}

TEST_F(PlannerTest, NonKeyedFallsBackToScan) {
  auto conjuncts = Conjuncts("retrieve (i.id) where i.amount = 35");
  AccessChoice choice = ChooseAccess(0, Rel("irel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kScan);
}

TEST_F(PlannerTest, JoinKeyNeedsAvailability) {
  auto conjuncts = Conjuncts("retrieve (h.id, i.id) where h.id = i.amount");
  // Without i bound, h cannot be probed...
  AccessChoice scan = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(scan.kind, AccessChoice::Kind::kScan);
  // ...with i available it can.
  AccessChoice keyed = ChooseAccess(0, Rel("hrel"), conjuncts, {1});
  EXPECT_EQ(keyed.kind, AccessChoice::Kind::kKeyed);
}

TEST_F(PlannerTest, IsamRangeFromInequalities) {
  auto conjuncts =
      Conjuncts("retrieve (i.id) where i.id >= 4 and i.id < 9");
  AccessChoice choice = ChooseAccess(0, Rel("irel"), conjuncts, {});
  ASSERT_EQ(choice.kind, AccessChoice::Kind::kRange);
  EXPECT_NE(choice.lo_expr, nullptr);
  EXPECT_TRUE(choice.lo_inclusive);
  EXPECT_NE(choice.hi_expr, nullptr);
  EXPECT_FALSE(choice.hi_inclusive);
}

TEST_F(PlannerTest, MirroredInequalityIsNormalized) {
  // `9 > i.id` means i.id < 9: an upper bound.
  auto conjuncts = Conjuncts("retrieve (i.id) where 9 > i.id");
  AccessChoice choice = ChooseAccess(0, Rel("irel"), conjuncts, {});
  ASSERT_EQ(choice.kind, AccessChoice::Kind::kRange);
  EXPECT_EQ(choice.lo_expr, nullptr);
  EXPECT_NE(choice.hi_expr, nullptr);
}

TEST_F(PlannerTest, HashRelationGetsNoRange) {
  auto conjuncts = Conjuncts("retrieve (h.id) where h.id >= 4");
  AccessChoice choice = ChooseAccess(0, Rel("hrel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kScan);
}

TEST_F(PlannerTest, EqualityBeatsRange) {
  auto conjuncts =
      Conjuncts("retrieve (i.id) where i.id >= 4 and i.id = 6");
  AccessChoice choice = ChooseAccess(0, Rel("irel"), conjuncts, {});
  EXPECT_EQ(choice.kind, AccessChoice::Kind::kKeyed);
}

TEST_F(PlannerTest, CurrentOnlyDetection) {
  auto stmt = Parser::ParseStatement(
      "retrieve (h.id) when h overlap \"now\" and h overlap i");
  ASSERT_TRUE(stmt.ok());
  stmt_ = std::move(stmt).value();
  auto* retrieve = static_cast<RetrieveStmt*>(stmt_.get());
  std::map<std::string, std::string> ranges = {{"h", "hrel"}, {"i", "irel"}};
  Binder binder(db_->catalog(), &ranges);
  ASSERT_TRUE(binder.BindRetrieve(retrieve).ok());
  std::vector<TemporalConjunct> when;
  SplitWhen(retrieve->when.get(), &when);
  ASSERT_EQ(when.size(), 2u);
  EXPECT_TRUE(WantsCurrentOnly(0, Rel("hrel"), when, /*as_of_is_now=*/true));
  EXPECT_FALSE(WantsCurrentOnly(1, Rel("irel"), when, true));
}

TEST_F(PlannerTest, CollectTemporalVars) {
  auto stmt = Parser::ParseStatement(
      "retrieve (h.id) when start of (h overlap i) precede \"1981\"");
  ASSERT_TRUE(stmt.ok());
  stmt_ = std::move(stmt).value();
  auto* retrieve = static_cast<RetrieveStmt*>(stmt_.get());
  std::map<std::string, std::string> ranges = {{"h", "hrel"}, {"i", "irel"}};
  Binder binder(db_->catalog(), &ranges);
  ASSERT_TRUE(binder.BindRetrieve(retrieve).ok());
  std::set<int> vars;
  CollectTemporalPredVars(retrieve->when.get(), &vars);
  EXPECT_EQ(vars, (std::set<int>{0, 1}));
}

// --- BuildPlan: the plan IR makes the same decisions ChooseAccess does ---

TEST_F(PlannerTest, BuildPlanAgreesWithChooseAccessPerShape) {
  // Each one-variable query shape: the plan's access leaf must be the node
  // kind corresponding to what ChooseAccess picks for the same conjuncts.
  struct Case {
    const char* query;
    const char* rel;
    PlanNode::Kind expect;
  };
  const Case cases[] = {
      {"retrieve (h.id) where h.id = 5", "hrel", PlanNode::Kind::kKeyedLookup},
      {"retrieve (h.id) where 5 = h.id", "hrel", PlanNode::Kind::kKeyedLookup},
      {"retrieve (h.id) where h.amount = 35", "hrel", PlanNode::Kind::kIndexEq},
      {"retrieve (h.id) where h.amount = 35 and h.id = 5", "hrel",
       PlanNode::Kind::kKeyedLookup},
      {"retrieve (i.id) where i.amount = 35", "irel", PlanNode::Kind::kSeqScan},
      {"retrieve (i.id) where i.id >= 4 and i.id < 9", "irel",
       PlanNode::Kind::kRangeScan},
      {"retrieve (h.id) where h.id >= 4", "hrel", PlanNode::Kind::kSeqScan},
      {"retrieve (i.id) where i.id >= 4 and i.id = 6", "irel",
       PlanNode::Kind::kKeyedLookup},
  };
  auto kind_of = [](AccessChoice::Kind k) {
    switch (k) {
      case AccessChoice::Kind::kKeyed:
        return PlanNode::Kind::kKeyedLookup;
      case AccessChoice::Kind::kIndexEq:
        return PlanNode::Kind::kIndexEq;
      case AccessChoice::Kind::kRange:
        return PlanNode::Kind::kRangeScan;
      case AccessChoice::Kind::kScan:
        return PlanNode::Kind::kSeqScan;
    }
    return PlanNode::Kind::kSeqScan;
  };
  for (const Case& c : cases) {
    auto plan = Plan(c.query);  // keeps the nodes alive while we inspect
    const AccessNode* access = Access(plan);
    ASSERT_NE(access, nullptr) << c.query;
    EXPECT_EQ(access->kind, c.expect) << c.query;
    // Cross-check against ChooseAccess on the same statement.
    AccessChoice choice = ChooseAccess(0, Rel(c.rel), Conjuncts(c.query), {});
    EXPECT_EQ(access->kind, kind_of(choice.kind)) << c.query;
  }
}

TEST_F(PlannerTest, BuildPlanKeyedRendersProbe) {
  auto plan = Plan("retrieve (h.id) where h.id = 5");
  const AccessNode* access = Access(plan);
  ASSERT_NE(access, nullptr);
  ASSERT_EQ(access->kind, PlanNode::Kind::kKeyedLookup);
  EXPECT_EQ(static_cast<const KeyedLookupNode*>(access)->key_text, "5");
  EXPECT_EQ(access->rel_name, "hrel");
  EXPECT_EQ(access->var_name, "h");
}

TEST_F(PlannerTest, BuildPlanRangeKeepsBounds) {
  auto plan = Plan("retrieve (i.id) where i.id >= 4 and i.id < 9");
  const AccessNode* access = Access(plan);
  ASSERT_NE(access, nullptr);
  ASSERT_EQ(access->kind, PlanNode::Kind::kRangeScan);
  const auto* range = static_cast<const RangeScanNode*>(access);
  EXPECT_EQ(range->lo_text, "4");
  EXPECT_TRUE(range->lo_inclusive);
  EXPECT_EQ(range->hi_text, "9");
  EXPECT_FALSE(range->hi_inclusive);
}

TEST_F(PlannerTest, BuildPlanResidualConjunctsBecomeFilter) {
  auto plan = Plan("retrieve (i.id) where i.amount = 35");
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->root->child->kind, PlanNode::Kind::kFilter);
  const auto* filter = static_cast<const FilterNode*>(plan->root->child.get());
  ASSERT_EQ(filter->pred_text.size(), 1u);
  EXPECT_EQ(filter->pred_text[0], "(i.amount = 35)");
  EXPECT_EQ(filter->child->kind, PlanNode::Kind::kSeqScan);
}

TEST_F(PlannerTest, BuildPlanUnfilteredScanHasNoFilterNode) {
  auto plan = Plan("retrieve (h.id)");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->root->child->kind, PlanNode::Kind::kSeqScan);
}

TEST_F(PlannerTest, BuildPlanJoinPrefersKeyedInner) {
  // h is hashed on id, so the join conjunct makes it the substitution
  // inner; i detaches as the outer — exactly ChooseAccess's preference.
  auto plan = Plan("retrieve (h.id, i.amount) where h.id = i.id");
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->root->child->kind, PlanNode::Kind::kSubstitution);
  const auto* sub =
      static_cast<const SubstitutionNode*>(plan->root->child.get());
  const AccessNode* inner = AccessOf(sub->inner.get());
  const AccessNode* outer = AccessOf(sub->outer.get());
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(inner->kind, PlanNode::Kind::kKeyedLookup);
  EXPECT_EQ(inner->rel_name, "hrel");
  EXPECT_EQ(outer->kind, PlanNode::Kind::kSeqScan);
  EXPECT_EQ(outer->rel_name, "irel");
  EXPECT_EQ(plan->Summary(), "substitution(hrel:keyed); irel:scan");
}

TEST_F(PlannerTest, BuildPlanJoinFallsBackToIndexInner) {
  // No key join exists, but hrel's secondary index on amount still allows
  // an indexed substitution inner.
  auto plan = Plan("retrieve (h.id, i.id) where h.amount = i.amount");
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->root->child->kind, PlanNode::Kind::kSubstitution);
  const auto* sub =
      static_cast<const SubstitutionNode*>(plan->root->child.get());
  const AccessNode* inner = AccessOf(sub->inner.get());
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->kind, PlanNode::Kind::kIndexEq);
  EXPECT_EQ(inner->rel_name, "hrel");
}

TEST_F(PlannerTest, BuildPlanCrossProductNestsScans) {
  auto plan = Plan("retrieve (h.id, i.id)");
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->root->child->kind, PlanNode::Kind::kNestedLoop);
  const auto* nested =
      static_cast<const NestedLoopNode*>(plan->root->child.get());
  ASSERT_EQ(nested->levels.size(), 2u);
  for (const auto& level : nested->levels) {
    EXPECT_EQ(level->kind, PlanNode::Kind::kSeqScan);
  }
}

TEST_F(PlannerTest, BuildPlanPlainAggregateIsConstant) {
  auto plan = Plan("retrieve (n = count(h.id))");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->root->child, nullptr);
  EXPECT_EQ(plan->Summary(), "constant");
}

TEST_F(PlannerTest, BuildPlanPropagatesCurrentOnly) {
  auto current = Plan("retrieve (h.id) where h.id = 5 when h overlap \"now\"");
  const AccessNode* access = Access(current);
  ASSERT_NE(access, nullptr);
  EXPECT_TRUE(access->current_only);
  auto historical = Plan("retrieve (h.id) where h.id = 5");
  const AccessNode* history = Access(historical);
  ASSERT_NE(history, nullptr);
  EXPECT_FALSE(history->current_only);
}

TEST_F(PlannerTest, BuildPlanEvaluatesAsOfAtPlanTime) {
  auto now_plan = Plan("retrieve (h.id)");
  ASSERT_NE(now_plan, nullptr);
  EXPECT_EQ(now_plan->as_of_at, db_->now());
  auto past_plan = Plan("retrieve (h.id) as of \"1990\"");
  ASSERT_NE(past_plan, nullptr);
  EXPECT_GT(past_plan->as_of_at, db_->now());
  EXPECT_FALSE(past_plan->root->as_of_text.empty());
}

}  // namespace
}  // namespace tdb
