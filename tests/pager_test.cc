// Tests of the single-frame pager: the paper's "1 buffer per relation"
// accounting discipline.  Every test here runs the PRIVATE-frame mode (no
// shared pool), so the per-file counter assertions are exact statements
// about one file's single frame; the pool-mode equivalents — including the
// proof that a pool capped at 1 frame/file reproduces these counters bit
// for bit, and the stale-frame-pointer generation regression — live in
// buffer_pool_test.cc.  The production page-size and checksum levers are
// per-file StorageOptions, so their contracts are pinned here.

#include "storage/pager.h"

#include <gtest/gtest.h>

#include "env/env.h"

namespace tdb {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  std::unique_ptr<Pager> Open(const std::string& name) {
    auto pager = Pager::Open(&env_, "/" + name, &counters_);
    EXPECT_TRUE(pager.ok());
    return std::move(pager).value();
  }

  MemEnv env_;
  IoCounters counters_;
};

TEST_F(PagerTest, StartsEmpty) {
  auto pager = Open("a");
  EXPECT_EQ(pager->page_count(), 0u);
  EXPECT_FALSE(pager->ReadPage(0, IoCategory::kData).ok());
}

TEST_F(PagerTest, AllocateExtendsAndLoadsFrame) {
  auto pager = Open("a");
  auto p0 = pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(pager->page_count(), 1u);
  auto p1 = pager->AllocatePage(IoCategory::kData);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(pager->page_count(), 2u);
}

TEST_F(PagerTest, ReadOfResidentPageIsFree) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  (void)pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(pager->Flush().ok());
  counters_.Reset();

  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 1u);
  // Re-reading the resident page costs nothing.
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 1u);
  // Another page evicts and costs one more read.
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 2u);
  // Ping-pong: every switch is a miss (exactly the paper's discipline).
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 4u);
}

TEST_F(PagerTest, DirtyFrameWriteCountedOnEviction) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  (void)pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(pager->Flush().ok());
  counters_.Reset();

  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  pager->MarkDirty();
  EXPECT_EQ(counters_.TotalWrites(), 0u);  // buffered
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kData).ok());  // evicts
  EXPECT_EQ(counters_.TotalWrites(), 1u);
}

TEST_F(PagerTest, FlushIsIdempotent) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  pager->MarkDirty();
  ASSERT_TRUE(pager->Flush().ok());
  uint64_t writes = counters_.TotalWrites();
  ASSERT_TRUE(pager->Flush().ok());
  EXPECT_EQ(counters_.TotalWrites(), writes);
}

TEST_F(PagerTest, WritesPersistAcrossReopen) {
  {
    auto pager = Open("a");
    auto frame = pager->ReadPage(*pager->AllocatePage(IoCategory::kData),
                                 IoCategory::kData);
    (*frame)[100] = 0xAB;
    pager->MarkDirty();
    ASSERT_TRUE(pager->Flush().ok());
  }
  auto pager = Open("a");
  EXPECT_EQ(pager->page_count(), 1u);
  auto frame = pager->ReadPage(0, IoCategory::kData);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)[100], 0xAB);
}

TEST_F(PagerTest, CategoriesAreTracked) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  (void)pager->AllocatePage(IoCategory::kDirectory);
  ASSERT_TRUE(pager->Flush().ok());
  counters_.Reset();
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kDirectory).ok());
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kData)], 1u);
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kDirectory)], 1u);
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kTemp)], 0u);
}

TEST_F(PagerTest, FlushAndDropMakesNextReadCount) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(pager->FlushAndDrop().ok());  // start with an empty frame
  counters_.Reset();
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(pager->FlushAndDrop().ok());
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 2u);
}

TEST_F(PagerTest, NullCountersAllowed) {
  auto pager = Pager::Open(&env_, "/n", nullptr);
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE((*pager)->AllocatePage(IoCategory::kData).ok());
  EXPECT_TRUE((*pager)->Flush().ok());
}

TEST_F(PagerTest, RejectsUnalignedFile) {
  ASSERT_TRUE(env_.WriteStringToFile("/bad", "not a page").ok());
  EXPECT_FALSE(Pager::Open(&env_, "/bad", &counters_).ok());
}

TEST_F(PagerTest, ResetTruncates) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  (void)pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(pager->Reset().ok());
  EXPECT_EQ(pager->page_count(), 0u);
}

TEST_F(PagerTest, ConfigurablePageSizeRoundTrips) {
  StorageOptions sopts;
  sopts.page_size = 4096;
  {
    auto pager = Pager::Open(&env_, "/big", &counters_, 1, nullptr, sopts);
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*pager)->page_size(), 4096u);
    EXPECT_EQ((*pager)->usable_size(), 4096u);  // no checksum trailer
    auto pno = (*pager)->AllocatePage(IoCategory::kData);
    ASSERT_TRUE(pno.ok());
    auto frame = (*pager)->ReadPage(*pno, IoCategory::kData);
    ASSERT_TRUE(frame.ok());
    (*frame)[4000] = 0x5A;  // past the 1024-byte boundary
    (*pager)->MarkDirty();
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  auto image = env_.ReadFileToString("/big");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->size(), 4096u);
  auto pager = Pager::Open(&env_, "/big", &counters_, 1, nullptr, sopts);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->page_count(), 1u);
  auto frame = (*pager)->ReadPage(0, IoCategory::kData);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)[4000], 0x5A);
}

TEST_F(PagerTest, PageSizeMisalignedFileRejected) {
  // A paper-sized (1024-byte) file is not a whole number of 4096-byte
  // pages; opening it at the wrong page size must fail, not shear pages.
  {
    auto pager = Open("a");
    (void)pager->AllocatePage(IoCategory::kData);
    ASSERT_TRUE(pager->Flush().ok());
  }
  StorageOptions sopts;
  sopts.page_size = 4096;
  EXPECT_FALSE(Pager::Open(&env_, "/a", &counters_, 1, nullptr, sopts).ok());
}

TEST_F(PagerTest, ChecksumDetectsCorruption) {
  StorageOptions sopts;
  sopts.checksum = true;
  {
    auto pager = Pager::Open(&env_, "/ck", &counters_, 1, nullptr, sopts);
    ASSERT_TRUE(pager.ok());
    // The CRC trailer costs 4 bytes of record space.
    EXPECT_EQ((*pager)->usable_size(), (*pager)->page_size() - 4);
    auto pno = (*pager)->AllocatePage(IoCategory::kData);
    auto frame = (*pager)->ReadPage(*pno, IoCategory::kData);
    ASSERT_TRUE(frame.ok());
    (*frame)[10] = 0x77;
    (*pager)->MarkDirty();
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  // Intact image verifies on load.
  {
    auto pager = Pager::Open(&env_, "/ck", &counters_, 1, nullptr, sopts);
    ASSERT_TRUE(pager.ok());
    auto frame = (*pager)->ReadPage(0, IoCategory::kData);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ((*frame)[10], 0x77);
  }
  // Flip one byte on disk: the next verified load must fail loudly.
  auto image = env_.ReadFileToString("/ck");
  ASSERT_TRUE(image.ok());
  std::string corrupt = *image;
  corrupt[10] ^= 0xFF;
  ASSERT_TRUE(env_.WriteStringToFile("/ck", corrupt).ok());
  auto pager = Pager::Open(&env_, "/ck", &counters_, 1, nullptr, sopts);
  ASSERT_TRUE(pager.ok());  // Open does not read data pages
  EXPECT_FALSE((*pager)->ReadPage(0, IoCategory::kData).ok());
}

TEST_F(PagerTest, GenerationTracksFrameContentChanges) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  (void)pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(pager->Flush().ok());

  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  uint64_t gen = pager->generation();
  // A buffer hit leaves every outstanding frame pointer valid.
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  EXPECT_EQ(pager->generation(), gen);
  // A miss recycles the single frame: pointers from before are stale.
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kData).ok());
  EXPECT_NE(pager->generation(), gen);
  // Dropping frames invalidates too, even with no subsequent read.
  gen = pager->generation();
  ASSERT_TRUE(pager->FlushAndDrop().ok());
  EXPECT_NE(pager->generation(), gen);
}

TEST(IoRegistryTest, ForFileAndTotals) {
  IoRegistry registry;
  IoCounters* a = registry.ForFile("a");
  IoCounters* b = registry.ForFile("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.ForFile("a"), a);  // stable
  a->reads[0] = 3;
  b->reads[1] = 4;
  b->writes[4] = 2;
  IoCounters total = registry.Total();
  EXPECT_EQ(total.TotalReads(), 7u);
  EXPECT_EQ(total.TotalWrites(), 2u);
  registry.ResetAll();
  EXPECT_EQ(registry.Total().TotalReads(), 0u);
}

}  // namespace
}  // namespace tdb
