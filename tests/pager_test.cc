// Tests of the single-frame pager: the paper's "1 buffer per relation"
// accounting discipline.

#include "storage/pager.h"

#include <gtest/gtest.h>

#include "env/env.h"

namespace tdb {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  std::unique_ptr<Pager> Open(const std::string& name) {
    auto pager = Pager::Open(&env_, "/" + name, &counters_);
    EXPECT_TRUE(pager.ok());
    return std::move(pager).value();
  }

  MemEnv env_;
  IoCounters counters_;
};

TEST_F(PagerTest, StartsEmpty) {
  auto pager = Open("a");
  EXPECT_EQ(pager->page_count(), 0u);
  EXPECT_FALSE(pager->ReadPage(0, IoCategory::kData).ok());
}

TEST_F(PagerTest, AllocateExtendsAndLoadsFrame) {
  auto pager = Open("a");
  auto p0 = pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(pager->page_count(), 1u);
  auto p1 = pager->AllocatePage(IoCategory::kData);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(pager->page_count(), 2u);
}

TEST_F(PagerTest, ReadOfResidentPageIsFree) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  (void)pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(pager->Flush().ok());
  counters_.Reset();

  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 1u);
  // Re-reading the resident page costs nothing.
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 1u);
  // Another page evicts and costs one more read.
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 2u);
  // Ping-pong: every switch is a miss (exactly the paper's discipline).
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 4u);
}

TEST_F(PagerTest, DirtyFrameWriteCountedOnEviction) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  (void)pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(pager->Flush().ok());
  counters_.Reset();

  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  pager->MarkDirty();
  EXPECT_EQ(counters_.TotalWrites(), 0u);  // buffered
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kData).ok());  // evicts
  EXPECT_EQ(counters_.TotalWrites(), 1u);
}

TEST_F(PagerTest, FlushIsIdempotent) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  pager->MarkDirty();
  ASSERT_TRUE(pager->Flush().ok());
  uint64_t writes = counters_.TotalWrites();
  ASSERT_TRUE(pager->Flush().ok());
  EXPECT_EQ(counters_.TotalWrites(), writes);
}

TEST_F(PagerTest, WritesPersistAcrossReopen) {
  {
    auto pager = Open("a");
    auto frame = pager->ReadPage(*pager->AllocatePage(IoCategory::kData),
                                 IoCategory::kData);
    (*frame)[100] = 0xAB;
    pager->MarkDirty();
    ASSERT_TRUE(pager->Flush().ok());
  }
  auto pager = Open("a");
  EXPECT_EQ(pager->page_count(), 1u);
  auto frame = pager->ReadPage(0, IoCategory::kData);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)[100], 0xAB);
}

TEST_F(PagerTest, CategoriesAreTracked) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  (void)pager->AllocatePage(IoCategory::kDirectory);
  ASSERT_TRUE(pager->Flush().ok());
  counters_.Reset();
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kDirectory).ok());
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kData)], 1u);
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kDirectory)], 1u);
  EXPECT_EQ(counters_.reads[static_cast<int>(IoCategory::kTemp)], 0u);
}

TEST_F(PagerTest, FlushAndDropMakesNextReadCount) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(pager->FlushAndDrop().ok());  // start with an empty frame
  counters_.Reset();
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(pager->FlushAndDrop().ok());
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 2u);
}

TEST_F(PagerTest, NullCountersAllowed) {
  auto pager = Pager::Open(&env_, "/n", nullptr);
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE((*pager)->AllocatePage(IoCategory::kData).ok());
  EXPECT_TRUE((*pager)->Flush().ok());
}

TEST_F(PagerTest, RejectsUnalignedFile) {
  ASSERT_TRUE(env_.WriteStringToFile("/bad", "not a page").ok());
  EXPECT_FALSE(Pager::Open(&env_, "/bad", &counters_).ok());
}

TEST_F(PagerTest, ResetTruncates) {
  auto pager = Open("a");
  (void)pager->AllocatePage(IoCategory::kData);
  (void)pager->AllocatePage(IoCategory::kData);
  ASSERT_TRUE(pager->Reset().ok());
  EXPECT_EQ(pager->page_count(), 0u);
}

TEST(IoRegistryTest, ForFileAndTotals) {
  IoRegistry registry;
  IoCounters* a = registry.ForFile("a");
  IoCounters* b = registry.ForFile("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.ForFile("a"), a);  // stable
  a->reads[0] = 3;
  b->reads[1] = 4;
  b->writes[4] = 2;
  IoCounters total = registry.Total();
  EXPECT_EQ(total.TotalReads(), 7u);
  EXPECT_EQ(total.TotalWrites(), 2u);
  registry.ResetAll();
  EXPECT_EQ(registry.Total().TotalReads(), 0u);
}

}  // namespace
}  // namespace tdb
