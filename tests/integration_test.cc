// End-to-end scenario tests: multi-statement workloads exercising the whole
// stack together, including durability on a real (Posix) filesystem.

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/env.h"

namespace tdb {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    options.start_time = *TimePoint::FromCivil(1984, 1, 1);
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  ExecResult Exec(const std::string& text) {
    auto r = db_->Execute(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ExecResult{};
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(ScenarioTest, SalaryHistoryScenario) {
  // The classic TQuel motivating example: employee salary history with a
  // retroactive correction, audited through transaction time.
  Exec("create persistent interval emp (name = c12, sal = i4)");
  Exec("range of e is emp");

  Exec("append to emp (name = \"merrie\", sal = 25000)");
  db_->AdvanceSeconds(86400 * 30);
  TimePoint after_hire = db_->now();
  db_->AdvanceSeconds(86400 * 30);  // the raise comes well after the audit point

  // A raise...
  Exec("replace e (sal = 27000) where e.name = \"merrie\"");
  db_->AdvanceSeconds(86400 * 30);

  // ...later discovered to have been recorded wrong and corrected
  // retroactively (the raise was actually 28000).
  Exec("replace e (sal = 28000) where e.name = \"merrie\"");

  // Current knowledge, current validity.
  ExecResult now = Exec(
      "retrieve (e.sal) where e.name = \"merrie\" when e overlap \"now\"");
  ASSERT_EQ(now.result.num_rows(), 1u);
  EXPECT_EQ(now.result.rows[0][0].AsInt(), 28000);

  // What did the database believe just after the hire?  (rollback)
  ExecResult audit = Exec("retrieve (e.sal) where e.name = \"merrie\" as of \"" +
                          after_hire.ToString() + "\"");
  ASSERT_EQ(audit.result.num_rows(), 1u);
  EXPECT_EQ(audit.result.rows[0][0].AsInt(), 25000);

  // The full validity history as known now: 3 salary periods.
  ExecResult history = Exec("retrieve (e.sal) where e.name = \"merrie\"");
  EXPECT_EQ(history.result.num_rows(), 3u);
}

TEST_F(ScenarioTest, InventoryTrendScenario) {
  Exec("create interval stock (part = c8, qty = i4)");
  Exec("range of s is stock");
  // Build a month of history.
  const int kLevels[] = {100, 80, 120, 60};
  for (int week = 0; week < 4; ++week) {
    if (week == 0) {
      Exec("append to stock (part = \"bolt\", qty = 100)");
    } else {
      Exec("replace s (qty = " + std::to_string(kLevels[week]) +
           ") where s.part = \"bolt\"");
    }
    db_->AdvanceSeconds(86400 * 7);
  }
  // Ask for the level during week 2.
  TimePoint week2 = TimePoint(
      TimePoint::FromCivil(1984, 1, 1)->seconds() + 86400 * 10);
  ExecResult r = Exec("retrieve (s.qty) where s.part = \"bolt\" "
                      "when s overlap \"" + week2.ToString() + "\"");
  ASSERT_EQ(r.result.num_rows(), 1u);
  EXPECT_EQ(r.result.rows[0][0].AsInt(), 80);
  // Average across all recorded levels.
  ExecResult avg = Exec("retrieve (m = max(s.qty))");
  EXPECT_EQ(avg.result.rows[0][0].AsInt(), 60);  // current version only
}

TEST_F(ScenarioTest, FullLifecycleWithReorganizations) {
  Exec("create persistent interval t (id = i4, v = i4, pad = c96)");
  for (int i = 0; i < 40; ++i) {
    Exec("append to t (id = " + std::to_string(i) + ", v = 0)");
  }
  Exec("range of x is t");
  Exec("modify t to hash on id where fillfactor = 100");
  Exec("replace x (v = 1)");
  Exec("modify t to isam on id where fillfactor = 50");
  Exec("replace x (v = 2)");
  Exec("modify t to twolevel hash on id where fillfactor = 100, "
       "history = clustered");
  Exec("replace x (v = 3)");
  Exec("index on t is vi (v) with structure = hash, levels = 2");

  ExecResult r = Exec(
      "retrieve (n = count(x.id where x.v = 3))");
  EXPECT_EQ(r.result.rows[0][0].AsInt(), 40);
  // Every tuple has 1 + 3*2 = 7 versions after three replaces.
  ExecResult versions = Exec(
      "retrieve (x.v) where x.id = 17 "
      "as of \"beginning\" through \"forever\"");
  EXPECT_EQ(versions.result.num_rows(), 7u);
  // The index answers the probe.
  ExecResult probe = Exec(
      "retrieve (x.id) where x.v = 3 and x.id = 17 when x overlap \"now\"");
  EXPECT_EQ(probe.result.num_rows(), 1u);
}

TEST_F(ScenarioTest, DestroyRemovesEverything) {
  Exec("create persistent interval t (id = i4)");
  Exec("append to t (id = 1)");
  Exec("index on t is i1 (id)");
  Exec("destroy t");
  EXPECT_FALSE(db_->Execute("range of x is t").ok());
  // Name can be reused.
  Exec("create t (id = i4)");
  Exec("range of x is t");
  ExecResult r = Exec("retrieve (x.id)");
  EXPECT_EQ(r.result.num_rows(), 0u);
}

TEST_F(ScenarioTest, ErrorsLeaveDatabaseUsable) {
  Exec("create t (id = i4)");
  EXPECT_FALSE(db_->Execute("retrieve (z.id)").ok());
  EXPECT_FALSE(db_->Execute("create t (id = i4)").ok());
  EXPECT_FALSE(db_->Execute("garbage statement").ok());
  Exec("append to t (id = 5)");
  Exec("range of x is t");
  ExecResult r = Exec("retrieve (x.id)");
  EXPECT_EQ(r.result.num_rows(), 1u);
}

TEST_F(ScenarioTest, ScriptExecution) {
  ExecResult r = Exec(
      "create t (id = i4); append to t (id = 1); append to t (id = 2); "
      "range of x is t; retrieve (x.id) where x.id = 2");
  EXPECT_EQ(r.result.num_rows(), 1u);
}

TEST(PosixIntegrationTest, DurableAcrossProcessLikeReopen) {
  char tmpl[] = "/tmp/tdb_integ_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  std::string dir = tmpl;
  {
    DatabaseOptions options;  // default Posix env
    auto db = Database::Open(dir, options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        (*db)->Execute("create persistent interval acct (id = i4, bal = i4)")
            .ok());
    ASSERT_TRUE((*db)->Execute("append to acct (id = 1, bal = 10)").ok());
    ASSERT_TRUE(
        (*db)->Execute("modify acct to hash on id where fillfactor = 100")
            .ok());
    ASSERT_TRUE((*db)->Execute("range of a is acct").ok());
    ASSERT_TRUE((*db)->Execute("replace a (bal = 20)").ok());
  }
  {
    DatabaseOptions options;
    auto db = Database::Open(dir, options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Execute("range of a is acct").ok());
    auto r = (*db)->Execute(
        "retrieve (a.bal) where a.id = 1 when a overlap \"now\"");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->result.num_rows(), 1u);
    EXPECT_EQ(r->result.rows[0][0].AsInt(), 20);
  }
}

TEST(PosixIntegrationTest, CopyDumpLoadableElsewhere) {
  char tmpl[] = "/tmp/tdb_copy_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  std::string dir = tmpl;
  DatabaseOptions options;
  auto db = Database::Open(dir, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Execute("create interval t (id = i4, s = c8)").ok());
  ASSERT_TRUE((*db)->Execute(
                  "append to t (id = 1, s = \"a\") "
                  "valid from \"1/1/80\" to \"6/1/80\"")
                  .ok());
  ASSERT_TRUE(
      (*db)->Execute("copy t to \"" + dir + "/dump.tsv\"").ok());
  ASSERT_TRUE((*db)->Execute("create interval u (id = i4, s = c8)").ok());
  ASSERT_TRUE(
      (*db)->Execute("copy u from \"" + dir + "/dump.tsv\"").ok());
  ASSERT_TRUE((*db)->Execute("range of u is u").ok());
  auto r = (*db)->Execute("retrieve (u.s) when u overlap \"3/1/80\"");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->result.num_rows(), 1u);
  EXPECT_EQ(r->result.rows[0][0].ToString(), "a");
}

}  // namespace
}  // namespace tdb
