// Join-method differential harness: the vectorization fuzz extended with a
// join-method axis.  Every seeded join query runs under all five planner
// methods (paper substitution, forced nested loop, batched hash, sort/merge
// interval, cost-based auto) crossed with the vectorized vs tuple engines.
//
// Two invariants, deliberately different in strength:
//   * WITHIN one method, the vectorized and tuple runs must be
//     byte-identical — rows in the same order AND the per-node IoCounters
//     reported by `explain analyze` (batching never changes semantics or
//     I/O attribution, the PR-5 guarantee carried over to the new
//     operators).
//   * ACROSS methods, the row multiset must agree (compared as sorted
//     renderings): a hash join and a merge sweep legitimately emit pairs
//     in different orders, but never different pairs.
//
// A third axis — 1, 2, and 4 executor threads — pins the morsel-
// parallelism contract on top: within one method the vectorized engine
// must return byte-identical rows (and, in the seeded fuzz, identical
// analyzed per-node stats) at every thread count.
//
// A second sweep replays the join queries of the eight paper databases
// (4 database types x 2 fillfactors) under every method, and a unit test
// pins the advisory-only stats contract: wildly wrong cached statistics
// may flip the chosen plan but can never change results, and any append
// invalidates the cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "benchlib/workload.h"
#include "catalog/catalog.h"
#include "core/database.h"
#include "env/env.h"
#include "exec/compiled_expr.h"
#include "exec/join_method.h"
#include "exec/morsel.h"
#include "exec/worker_pool.h"
#include "util/random.h"
#include "util/stringx.h"

namespace tdb {
namespace {

int NumSeeds() {
  if (const char* env = std::getenv("TDB_DIFF_SEEDS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return 25;
}

constexpr JoinMethod kAllMethods[] = {
    JoinMethod::kPaper, JoinMethod::kNestedLoop, JoinMethod::kHash,
    JoinMethod::kMerge, JoinMethod::kAuto,
};

/// Sorts the lines of a result rendering: the row-multiset view, order-
/// insensitive.  Header/separator lines are identical across variants, so
/// whole-rendering sorted-line equality is exactly multiset equality.
std::string SortedLines(const std::string& rendering) {
  std::vector<std::string> lines = Split(rendering, '\n');
  std::sort(lines.begin(), lines.end());
  return Join(lines, "\n");
}

/// Masks wall-clock times in an `explain analyze` rendering, leaving the
/// deterministic parts — structure, loops, rows, est, and the per-node
/// IoCounters — intact for byte comparison.
std::string MaskTimes(const std::string& text) {
  static const std::regex kTime("time=[0-9]+\\.[0-9]{3}ms");
  return std::regex_replace(text, kTime, "time=*");
}

struct Instance {
  std::unique_ptr<MemEnv> env;
  std::unique_ptr<Database> db;
};

/// Seeded database: the differential_test generator, join-focused — two
/// interval relations with seed-dependent organizations and history rounds,
/// so forced methods face keyed, ISAM, and heap sides alike.
Instance MakeInstance(uint64_t seed) {
  Instance inst;
  inst.env = std::make_unique<MemEnv>();
  DatabaseOptions options;
  options.env = inst.env.get();
  options.metrics = true;
  auto db = Database::Open("/db", options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return inst;
  inst.db = std::move(db).value();
  Database* d = inst.db.get();

  auto exec = [&](const std::string& text) {
    auto r = d->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  };

  Random rng(seed);
  exec("create persistent interval hrel (id = i4, amount = i4, tag = c8)");
  exec("create persistent interval irel (id = i4, amount = i4)");
  exec("range of h is hrel");
  exec("range of i is irel");

  int nrows = 20 + static_cast<int>(rng.Uniform(30));
  for (int t = 0; t < nrows; ++t) {
    exec(StrPrintf("append to hrel (id = %d, amount = %d, tag = \"%s\")", t,
                   static_cast<int>(rng.Uniform(50)),
                   rng.NextString(4).c_str()));
    exec(StrPrintf("append to irel (id = %d, amount = %d)", t,
                   static_cast<int>(rng.Uniform(50))));
    if (rng.Uniform(4) == 0) d->AdvanceSeconds(60);
  }

  switch (rng.Uniform(3)) {
    case 0:
      exec("modify hrel to hash on id where fillfactor = 100");
      break;
    case 1:
      exec("modify hrel to isam on id where fillfactor = 50");
      break;
    default:
      break;  // heap
  }
  if (rng.Uniform(2) == 0) {
    exec("modify irel to hash on id where fillfactor = 100");
  }

  // History rounds: interval joins must sweep closed versions too.
  int rounds = 1 + static_cast<int>(rng.Uniform(3));
  for (int round = 0; round < rounds; ++round) {
    d->AdvanceSeconds(3600);
    exec(StrPrintf("replace h (amount = h.amount + %d) where h.id < %d",
                   static_cast<int>(rng.Uniform(9)) + 1,
                   static_cast<int>(rng.Uniform(nrows))));
    if (rng.Uniform(2) == 0) {
      exec(StrPrintf("delete h where h.id = %d",
                     static_cast<int>(rng.Uniform(nrows))));
    }
  }
  d->AdvanceSeconds(60);
  return inst;
}

/// Random two-variable query: equality joins (hash-eligible), overlap
/// joins (merge-eligible), and mixes with residual cross conjuncts and
/// single-variable restrictions — the partitioning paths of the planner.
std::string GenJoinQuery(Random& rng) {
  if (rng.Uniform(3) == 0) {
    // Pure temporal join: no equality, the interval sweep's home turf.
    std::string q = "retrieve (h.id, i.id) when h overlap i";
    if (rng.Uniform(2) == 0) {
      q = StrPrintf("retrieve (h.id, i.id) where h.amount < %d when "
                    "h overlap i",
                    static_cast<int>(rng.Uniform(40)) + 5);
    }
    return q;
  }
  std::string q = "retrieve (h.id, i.amount) where h.id = i.id";
  if (rng.Uniform(2) == 0) {
    q += StrPrintf(" and h.amount + %d < %d",
                   static_cast<int>(rng.Uniform(5)),
                   static_cast<int>(rng.Uniform(50)) + 10);
  }
  if (rng.Uniform(3) == 0) {
    q += StrPrintf(" and i.amount != %d", static_cast<int>(rng.Uniform(50)));
  }
  if (rng.Uniform(2) == 0) q += " when h overlap i";
  return q;
}

TEST(JoinMethodDifferentialTest, AllMethodsAgree) {
  int seeds = NumSeeds();
  int queries_checked = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    Instance inst = MakeInstance(seed);
    ASSERT_NE(inst.db, nullptr);
    Database* db = inst.db.get();

    Random qrng(seed * 0x9E3779B9ULL + 7);
    for (int qi = 0; qi < 6; ++qi) {
      std::string text = GenJoinQuery(qrng);
      SCOPED_TRACE(text);
      std::string baseline_sorted;  // paper-method row multiset
      for (JoinMethod method : kAllMethods) {
        SCOPED_TRACE(JoinMethodName(method));
        SetJoinMethodForTest(method);
        std::vector<std::string> rows;     // per vec variant
        std::vector<std::string> analyze;  // per vec variant, times masked
        for (bool vec : {true, false}) {
          SetVectorExecEnabledForTest(vec);
          auto r = db->Execute(text);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          rows.push_back(r->result.ToString(TimeResolution::kSecond) +
                         StrPrintf("(%zu rows)", r->result.num_rows()));
          auto a = db->Execute("explain analyze " + text);
          ASSERT_TRUE(a.ok()) << a.status().ToString();
          std::string tree;
          for (const auto& row : a->result.rows) {
            tree += row[0].AsString() + "\n";
          }
          analyze.push_back(MaskTimes(tree));
        }
        SetVectorExecEnabledForTest(std::nullopt);
        // Within one method the engines must agree exactly: same rows in
        // the same order, and the same per-node loops/rows/IoCounters in
        // the analyzed plan.
        EXPECT_EQ(rows[0], rows[1]);
        EXPECT_EQ(analyze[0], analyze[1]);
        // Threads axis: the vectorized engine at 2 and 4 workers must match
        // its single-threaded run byte for byte — rows, row order, and the
        // analyzed per-node stats and IoCounters (the chunk-order merge and
        // frame-normalization contract of the parallel scan).
        SetVectorExecEnabledForTest(true);
        for (int threads : {2, 4}) {
          SCOPED_TRACE(testing::Message() << threads << " threads");
          SetExecThreadsForTest(threads);
          auto r = db->Execute(text);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          EXPECT_EQ(rows[0],
                    r->result.ToString(TimeResolution::kSecond) +
                        StrPrintf("(%zu rows)", r->result.num_rows()));
          auto a = db->Execute("explain analyze " + text);
          ASSERT_TRUE(a.ok()) << a.status().ToString();
          std::string tree;
          for (const auto& row : a->result.rows) {
            tree += row[0].AsString() + "\n";
          }
          EXPECT_EQ(analyze[0], MaskTimes(tree));
        }
        SetExecThreadsForTest(std::nullopt);
        SetVectorExecEnabledForTest(std::nullopt);
        // Across methods only the multiset is pinned.
        std::string sorted = SortedLines(rows[0]);
        if (method == JoinMethod::kPaper) {
          baseline_sorted = sorted;
        } else {
          EXPECT_EQ(baseline_sorted, sorted);
        }
      }
      SetJoinMethodForTest(std::nullopt);
      ++queries_checked;
    }
  }
  EXPECT_EQ(queries_checked, seeds * 6);
}

// ---- the eight paper databases ----

/// Every join query the paper workload defines for this database type runs
/// under all five methods; row multisets must agree.  kStatic/kRollback
/// relations carry no valid time, so the forced merge method falls back to
/// the paper plan there — the differential still holds.
TEST(JoinMethodDifferentialTest, MethodsAgreeOnAllPaperDatabases) {
  const DbType types[] = {DbType::kStatic, DbType::kRollback,
                          DbType::kHistorical, DbType::kTemporal};
  for (DbType type : types) {
    for (int fillfactor : {100, 50}) {
      // Page-size axis: the method differential repeats on 4096-byte
      // production pages, and the row multiset is pinned across page sizes
      // too (the baseline map outlives the page-size loop).
      std::map<int, std::string> baselines;
      for (uint32_t page_size : {0u, 4096u}) {
      SCOPED_TRACE(testing::Message()
                   << "type " << static_cast<int>(type) << " ff "
                   << fillfactor << " page " << (page_size ? page_size
                                                           : 1024u));
      bench::WorkloadConfig config;
      config.type = type;
      config.fillfactor = fillfactor;
      config.page_size = page_size;
      auto db = bench::BenchmarkDb::Create(config);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      ASSERT_TRUE((*db)->UniformUpdateRound().ok());
      ASSERT_TRUE((*db)->UniformUpdateRound().ok());

      for (int qnum : {9, 10}) {
        std::string text = (*db)->QueryText(qnum);
        if (text.empty()) continue;
        SCOPED_TRACE(testing::Message() << "Q" << qnum << ": " << text);
        std::string& baseline = baselines[qnum];
        for (JoinMethod method : kAllMethods) {
          SCOPED_TRACE(JoinMethodName(method));
          SetJoinMethodForTest(method);
          // Threads axis: within one method the result must be byte-
          // identical (same rows, same order) at 1, 2, and 4 executor
          // threads under the vectorized engine — the parallel build,
          // probe, and gather paths merge in chunk order by construction.
          SetVectorExecEnabledForTest(true);
          std::string exact_1thread;
          for (int threads : {1, 2, 4}) {
            SCOPED_TRACE(testing::Message() << threads << " threads");
            SetExecThreadsForTest(threads);
            auto r = (*db)->db()->Execute(text);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            std::string exact =
                r->result.ToString(TimeResolution::kSecond) +
                StrPrintf("(%zu rows)", r->result.num_rows());
            if (threads == 1) {
              exact_1thread = exact;
            } else {
              EXPECT_EQ(exact_1thread, exact);
            }
          }
          SetExecThreadsForTest(std::nullopt);
          SetVectorExecEnabledForTest(std::nullopt);
          SetJoinMethodForTest(std::nullopt);
          std::string sorted = SortedLines(exact_1thread);
          if (baseline.empty()) {
            baseline = sorted;  // paper method at paper page size
          } else {
            EXPECT_EQ(baseline, sorted);
          }
        }
      }
      }
    }
  }
}

// ---- the stats contract: advisory, never load-bearing ----

class StatsTest : public testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    DatabaseOptions options;
    options.env = env_.get();
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    Exec("create persistent interval hrel (id = i4, amount = i4)");
    Exec("create persistent interval irel (id = i4, amount = i4)");
    Exec("range of h is hrel");
    Exec("range of i is irel");
    for (int t = 0; t < 24; ++t) {
      Exec(StrPrintf("append to hrel (id = %d, amount = %d)", t, t % 5));
      Exec(StrPrintf("append to irel (id = %d, amount = %d)", t, t % 7));
    }
    db_->AdvanceSeconds(60);
  }

  void TearDown() override { SetJoinMethodForTest(std::nullopt); }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  std::string Rows(const std::string& text) {
    auto r = db_->Execute(text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "<error>";
    return SortedLines(r->result.ToString(TimeResolution::kSecond) +
                       StrPrintf("(%zu rows)", r->result.num_rows()));
  }

  std::string Explain(const std::string& text) {
    auto e = db_->Explain(text);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return e.ok() ? *e : "<error>";
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<Database> db_;
};

TEST_F(StatsTest, PaperModeNeverComputesStats) {
  const std::string q = "retrieve (h.id, i.amount) where h.id = i.id";
  Exec(q);  // default method: paper
  EXPECT_EQ(db_->catalog()->FindStats("hrel"), nullptr);
  EXPECT_EQ(db_->catalog()->FindStats("irel"), nullptr);
}

TEST_F(StatsTest, StaleStatsChangePlansNotResults) {
  const std::string q = "retrieve (h.id, i.amount) where h.id = i.id";
  const std::string paper_rows = Rows(q);

  // Warm the cache under cost-based planning; the lazily profiled stats
  // must now be cached and exact.
  SetJoinMethodForTest(JoinMethod::kAuto);
  EXPECT_EQ(Rows(q), paper_rows);
  const RelationStats* hs = db_->catalog()->FindStats("hrel");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->rows, 24u);
  EXPECT_EQ(hs->DistinctOr("id", 0), 24u);
  EXPECT_EQ(hs->DistinctOr("amount", 0), 5u);

  // Inject wildly wrong statistics, slanted one way then the other.  The
  // chosen plan flips with the injected cardinalities — stats steer the
  // planner — but the result multiset never moves: stats are advisory.
  RelationStats huge;
  huge.rows = 1000000;
  huge.primary_pages = 4096;
  huge.distinct["id"] = 1000000;
  RelationStats tiny;
  tiny.rows = 2;
  tiny.primary_pages = 1;
  tiny.distinct["id"] = 2;

  db_->catalog()->SetStats("hrel", huge);
  db_->catalog()->SetStats("irel", tiny);
  std::string plan_build_i = Explain(q);
  EXPECT_EQ(Rows(q), paper_rows);

  db_->catalog()->SetStats("hrel", tiny);
  db_->catalog()->SetStats("irel", huge);
  std::string plan_build_h = Explain(q);
  EXPECT_EQ(Rows(q), paper_rows);

  EXPECT_NE(plan_build_i, plan_build_h);
}

TEST_F(StatsTest, DmlInvalidatesStats) {
  SetJoinMethodForTest(JoinMethod::kAuto);
  Exec("retrieve (h.id, i.amount) where h.id = i.id");
  ASSERT_NE(db_->catalog()->FindStats("hrel"), nullptr);
  ASSERT_NE(db_->catalog()->FindStats("irel"), nullptr);

  Exec("append to hrel (id = 99, amount = 1)");
  EXPECT_EQ(db_->catalog()->FindStats("hrel"), nullptr);
  // The untouched relation keeps its cache.
  EXPECT_NE(db_->catalog()->FindStats("irel"), nullptr);

  // Recomputation sees the new row.
  Exec("retrieve (h.id, i.amount) where h.id = i.id");
  const RelationStats* hs = db_->catalog()->FindStats("hrel");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->rows, 25u);

  Exec("delete h where h.id = 99");
  EXPECT_EQ(db_->catalog()->FindStats("hrel"), nullptr);

  Exec("modify irel to hash on id where fillfactor = 100");
  EXPECT_EQ(db_->catalog()->FindStats("irel"), nullptr);
}

}  // namespace
}  // namespace tdb
