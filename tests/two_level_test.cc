// Tests of the two-level store (Section 6): current versions stay in the
// primary store, retired versions move to the history store; static queries
// stay flat; version scans follow the per-key history chain.

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/env.h"

namespace tdb {
namespace {

class TwoLevelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    options.start_time = TimePoint(100000);
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Exec("create persistent interval r (id = i4, v = i4, pad = c100)");
    for (int i = 0; i < 32; ++i) {
      Exec("append to r (id = " + std::to_string(i) + ", v = 0)");
    }
    Exec("range of x is r");
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  void Modify(bool clustered) {
    Exec(std::string("modify r to twolevel hash on id where fillfactor = 100"
                     ", history = ") +
         (clustered ? "clustered" : "simple"));
  }

  uint64_t MeasureReads(const std::string& text) {
    EXPECT_TRUE(db_->DropAllBuffers().ok());
    db_->io()->ResetAll();
    auto r = db_->Execute(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return db_->io()->Total().TotalReads();
  }

  Relation* Rel() {
    auto rel = db_->GetRelation("r");
    EXPECT_TRUE(rel.ok());
    return *rel;
  }

  void UpdateRounds(int n) {
    for (int round = 0; round < n; ++round) {
      db_->AdvanceSeconds(1000);
      Exec("replace x (v = x.v + 1)");
    }
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(TwoLevelTest, ModifySplitsCurrentAndHistory) {
  UpdateRounds(2);  // conventional store accumulates versions first
  Modify(/*clustered=*/false);
  Relation* rel = Rel();
  ASSERT_TRUE(rel->two_level());
  ASSERT_NE(rel->history(), nullptr);
  ASSERT_NE(rel->anchors(), nullptr);
  // Primary holds exactly the 32 current versions (4 pages at 8/page).
  EXPECT_EQ(rel->primary()->page_count(), 4u);
  EXPECT_GT(rel->history()->page_count(), 0u);
}

TEST_F(TwoLevelTest, PrimaryStaysFlatUnderUpdates) {
  Modify(false);
  uint32_t before = Rel()->primary()->page_count();
  UpdateRounds(5);
  EXPECT_EQ(Rel()->primary()->page_count(), before);
  EXPECT_GT(Rel()->history()->page_count(), 0u);
}

TEST_F(TwoLevelTest, StaticQueryCostIsConstant) {
  Modify(false);
  uint64_t base =
      MeasureReads("retrieve (x.v) where x.id = 5 when x overlap \"now\"");
  UpdateRounds(6);
  uint64_t after =
      MeasureReads("retrieve (x.v) where x.id = 5 when x overlap \"now\"");
  EXPECT_EQ(after, base);  // the paper's headline two-level effect
  EXPECT_EQ(base, 1u);     // one bucket page
}

TEST_F(TwoLevelTest, VersionScanWalksHistoryChain) {
  Modify(false);
  UpdateRounds(3);
  auto r = db_->Execute(
      "retrieve (x.v) where x.id = 5 "
      "as of \"beginning\" through \"forever\"");
  ASSERT_TRUE(r.ok());
  // 1 original + 2 per replace = 7 versions reachable.
  EXPECT_EQ(r->result.num_rows(), 7u);
}

TEST_F(TwoLevelTest, RollbackQueryScansBothStores) {
  Modify(false);
  TimePoint past = db_->now();
  UpdateRounds(3);
  auto r = db_->Execute("retrieve (x.id) as of \"" + past.ToString() + "\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 32u);  // the full state at `past`
}

TEST_F(TwoLevelTest, ClusteredHistorySharesPerTuplePages) {
  Modify(/*clustered=*/true);
  UpdateRounds(6);  // 12 history versions per tuple
  // Version scan: 1 bucket + 1 anchor + ceil(12/7) = 2 history pages.
  uint64_t reads = MeasureReads(
      "retrieve (x.v) where x.id = 5 "
      "as of \"beginning\" through \"forever\"");
  EXPECT_LE(reads, 4u);
}

TEST_F(TwoLevelTest, SimpleHistoryScattersVersions) {
  Modify(/*clustered=*/false);
  UpdateRounds(6);
  uint64_t simple_reads = MeasureReads(
      "retrieve (x.v) where x.id = 5 "
      "as of \"beginning\" through \"forever\"");
  // Scattered chains cost roughly one page per round (the two versions of
  // one round land adjacently), clearly above the clustered cost.
  EXPECT_GE(simple_reads, 6u);
}

TEST_F(TwoLevelTest, DeleteMovesTupleOutOfPrimary) {
  Modify(false);
  Exec("delete x where x.id = 5");
  auto cur = db_->Execute("retrieve (x.id) when x overlap \"now\"");
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(cur->result.num_rows(), 31u);
  // The history still knows it.
  auto all = db_->Execute(
      "retrieve (x.id) where x.id = 5 "
      "as of \"beginning\" through \"forever\"");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->result.num_rows(), 2u);  // stamped + correction
}

TEST_F(TwoLevelTest, AnchorsTrackNewestHistoryVersion) {
  Modify(false);
  UpdateRounds(1);
  Relation* rel = Rel();
  auto head = rel->AnchorLookup(Value::Int4(5));
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(head->has_value());
  auto back = rel->HistoryBackPtr(**head);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->has_value());  // two history versions: chain of 2
  auto end = rel->HistoryBackPtr(**back);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST_F(TwoLevelTest, ModifyBackToConventionalKeepsVersions) {
  Modify(false);
  UpdateRounds(2);
  Exec("modify r to hash on id where fillfactor = 100");
  Relation* rel = Rel();
  EXPECT_FALSE(rel->two_level());
  auto all = db_->Execute(
      "retrieve (x.v) where x.id = 5 "
      "as of \"beginning\" through \"forever\"");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->result.num_rows(), 5u);
}

TEST_F(TwoLevelTest, TwoLevelIsamPrimary) {
  Exec("modify r to twolevel isam on id where fillfactor = 100, "
       "history = clustered");
  UpdateRounds(3);
  uint64_t reads =
      MeasureReads("retrieve (x.v) where x.id = 5 when x overlap \"now\"");
  EXPECT_EQ(reads, 2u);  // 1 directory + 1 data page, flat forever
  auto r = db_->Execute("retrieve (x.v) where x.id = 5 when x overlap \"now\"");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->result.num_rows(), 1u);
  EXPECT_EQ(r->result.rows[0][0].AsInt(), 3);
}

TEST_F(TwoLevelTest, TwoLevelRequiresKeyedOrganization) {
  auto bad = db_->Execute("modify r to twolevel heap");
  EXPECT_FALSE(bad.ok());
}

TEST_F(TwoLevelTest, StaticRelationCannotBeTwoLevel) {
  Exec("create s (id = i4)");
  auto bad = db_->Execute(
      "modify s to twolevel hash on id where fillfactor = 100");
  EXPECT_FALSE(bad.ok());
}

TEST_F(TwoLevelTest, PersistsAcrossReopen) {
  Modify(true);
  UpdateRounds(2);
  db_.reset();
  DatabaseOptions options;
  options.env = &env_;
  options.start_time = TimePoint(500000);
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  db_ = std::move(db).value();
  Exec("range of x is r");
  auto r = db_->Execute(
      "retrieve (x.v) where x.id = 5 "
      "as of \"beginning\" through \"forever\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 5u);
}

}  // namespace
}  // namespace tdb
