#include "env/env.h"

#include <gtest/gtest.h>

#include <cstring>

namespace tdb {
namespace {

class EnvTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      env_ = Env::Default();
      char tmpl[] = "/tmp/tdb_env_test_XXXXXX";
      ASSERT_NE(::mkdtemp(tmpl), nullptr);
      dir_ = tmpl;
    } else {
      mem_ = std::make_unique<MemEnv>();
      env_ = mem_.get();
      dir_ = "/mem";
    }
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::unique_ptr<MemEnv> mem_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvTest, CreateWriteReadRoundTrip) {
  auto file = env_->OpenOrCreate(Path("a"));
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  uint8_t data[5] = {1, 2, 3, 4, 5};
  ASSERT_TRUE((*file)->Write(0, data, 5).ok());
  uint8_t back[5] = {0};
  ASSERT_TRUE((*file)->Read(0, 5, back).ok());
  EXPECT_EQ(std::memcmp(data, back, 5), 0);
}

TEST_P(EnvTest, WriteAtOffsetExtends) {
  auto file = env_->OpenOrCreate(Path("b"));
  uint8_t byte = 9;
  ASSERT_TRUE((*file)->Write(100, &byte, 1).ok());
  auto size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 101u);
  // The gap reads as zeros.
  uint8_t gap = 1;
  ASSERT_TRUE((*file)->Read(50, 1, &gap).ok());
  EXPECT_EQ(gap, 0);
}

TEST_P(EnvTest, ReadPastEofFails) {
  auto file = env_->OpenOrCreate(Path("c"));
  uint8_t buf[4];
  EXPECT_FALSE((*file)->Read(0, 4, buf).ok());
}

TEST_P(EnvTest, TruncateShrinksAndExtends) {
  auto file = env_->OpenOrCreate(Path("d"));
  uint8_t data[8] = {1, 1, 1, 1, 1, 1, 1, 1};
  ASSERT_TRUE((*file)->Write(0, data, 8).ok());
  ASSERT_TRUE((*file)->Truncate(4).ok());
  EXPECT_EQ(*(*file)->Size(), 4u);
  ASSERT_TRUE((*file)->Truncate(16).ok());
  EXPECT_EQ(*(*file)->Size(), 16u);
  uint8_t tail = 9;
  ASSERT_TRUE((*file)->Read(12, 1, &tail).ok());
  EXPECT_EQ(tail, 0);  // zero filled
}

TEST_P(EnvTest, FileExistsAndDelete) {
  EXPECT_FALSE(env_->FileExists(Path("e")));
  { auto file = env_->OpenOrCreate(Path("e")); ASSERT_TRUE(file.ok()); }
  EXPECT_TRUE(env_->FileExists(Path("e")));
  EXPECT_TRUE(env_->DeleteFile(Path("e")).ok());
  EXPECT_FALSE(env_->FileExists(Path("e")));
  EXPECT_FALSE(env_->DeleteFile(Path("e")).ok());
}

TEST_P(EnvTest, RenameFile) {
  ASSERT_TRUE(env_->WriteStringToFile(Path("old"), "xyz").ok());
  ASSERT_TRUE(env_->RenameFile(Path("old"), Path("new")).ok());
  EXPECT_FALSE(env_->FileExists(Path("old")));
  auto text = env_->ReadFileToString(Path("new"));
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "xyz");
}

TEST_P(EnvTest, StringFileHelpers) {
  ASSERT_TRUE(env_->WriteStringToFile(Path("s"), "hello world").ok());
  auto text = env_->ReadFileToString(Path("s"));
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello world");
  // Overwrite replaces content entirely.
  ASSERT_TRUE(env_->WriteStringToFile(Path("s"), "hi").ok());
  EXPECT_EQ(*env_->ReadFileToString(Path("s")), "hi");
}

TEST_P(EnvTest, ListDir) {
  ASSERT_TRUE(env_->WriteStringToFile(Path("f1"), "1").ok());
  ASSERT_TRUE(env_->WriteStringToFile(Path("f2"), "2").ok());
  auto names = env_->ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_NE(std::find(names->begin(), names->end(), "f1"), names->end());
  EXPECT_NE(std::find(names->begin(), names->end(), "f2"), names->end());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Posix" : "Mem";
                         });

TEST(MemEnvTest, OpenHandleSurvivesDelete) {
  MemEnv env;
  auto file = env.OpenOrCreate("/x");
  uint8_t b = 7;
  ASSERT_TRUE((*file)->Write(0, &b, 1).ok());
  ASSERT_TRUE(env.DeleteFile("/x").ok());
  // Posix semantics: the open handle still works.
  uint8_t back = 0;
  EXPECT_TRUE((*file)->Read(0, 1, &back).ok());
  EXPECT_EQ(back, 7);
  // A re-created file is fresh.
  auto fresh = env.OpenOrCreate("/x");
  EXPECT_EQ(*(*fresh)->Size(), 0u);
}

}  // namespace
}  // namespace tdb
