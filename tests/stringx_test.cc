#include "util/stringx.h"

#include <gtest/gtest.h>

namespace tdb {
namespace {

TEST(StrPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrPrintf("%05d", 42), "00042");
  EXPECT_EQ(StrPrintf("%s", ""), "");
}

TEST(StrPrintfTest, LongOutput) {
  std::string s = StrPrintf("%200d", 1);
  EXPECT_EQ(s.size(), 200u);
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MiXeD_09"), "mixed_09");
  EXPECT_EQ(ToUpper("MiXeD_09"), "MIXED_09");
  EXPECT_EQ(ToLower(""), "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(SplitTest, SplitsAndKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(EqualsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(EqualsIgnoreCase("RETRIEVE", "retrieve"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(ParseInt64Test, ValidInputs) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-9", &v));
  EXPECT_EQ(v, -9);
  EXPECT_TRUE(ParseInt64("  42  ", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
}

TEST(ParseInt64Test, InvalidInputs) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("x12", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("999999999999999999999999", &v));  // overflow
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

}  // namespace
}  // namespace tdb
