// End-to-end tests of the tquel server: real sockets, real threads, the
// whole stack from Client::Execute through the wire protocol, a
// per-connection Session, and the concurrent service layer underneath.

#include "net/server.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "net/client.h"

namespace tdb {
namespace net {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  /// Thread-per-connection by default; the epoll fixture below overrides.
  virtual bool UseEpoll() const { return false; }

  void SetUp() override {
    socket_path_ = "/tmp/tquel_test_" + std::to_string(::getpid()) + "_" +
                   std::to_string(counter_++) + ".sock";
    DatabaseOptions options;
    options.env = &env_;
    registry_ = std::make_unique<DatabaseRegistry>("/dbs", options);
    ServerOptions sopts;
    sopts.unix_path = socket_path_;
    sopts.epoll = UseEpoll();
    server_ = std::make_unique<Server>(registry_.get(), sopts);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    ASSERT_EQ(server_->epoll_mode(), UseEpoll());
  }

  void TearDown() override { server_->Stop(); }

  Result<std::unique_ptr<Client>> Connect(const std::string& db = "testdb") {
    return Client::ConnectUnix(socket_path_, db);
  }

  static int counter_;
  MemEnv env_;
  std::string socket_path_;
  std::unique_ptr<DatabaseRegistry> registry_;
  std::unique_ptr<Server> server_;
};

int ServerTest::counter_ = 0;

TEST_F(ServerTest, ExecuteRoundTripsRowsAndMessages) {
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto results = (*client)->Execute(
      "create emp (name = c8, sal = i4);"
      "range of e is emp;"
      "append to emp (name = \"ada\", sal = 120);"
      "append to emp (name = \"bob\", sal = 80);"
      "retrieve (e.name, e.sal) where e.sal > 100");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 5u);
  EXPECT_EQ((*results)[2].affected, 1);
  const WireResult& rows = (*results)[4];
  ASSERT_EQ(rows.columns.size(), 2u);
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].AsString(), "ada     ");  // c8, blank padded
  EXPECT_EQ(rows.rows[0][1].AsInt(), 120);
}

TEST_F(ServerTest, ErrorsTravelWithStatementContext) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto results = (*client)->Execute(
      "create emp (sal = i4);"
      "range of e is nope");
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kBindError);
  ASSERT_NE(results.status().statement_context(), nullptr);
  EXPECT_EQ(results.status().statement_context()->statement_index, 2);
  // The connection survives a statement error.
  EXPECT_TRUE((*client)->Ping().ok());
  EXPECT_TRUE((*client)->Execute("help").ok());
}

TEST_F(ServerTest, SessionsAreIsolatedButDataIsShared) {
  auto c1 = Connect();
  auto c2 = Connect();
  ASSERT_TRUE(c1.ok() && c2.ok());
  ASSERT_TRUE((*c1)
                  ->Execute("create emp (sal = i4);"
                            "range of e is emp;"
                            "append to emp (sal = 1)")
                  .ok());
  // c2 sees the data but not c1's range declarations.
  EXPECT_FALSE((*c2)->Execute("retrieve (e.sal)").ok());
  auto rows = (*c2)->Execute("range of w is emp;"
                             "retrieve (w.sal)");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->back().rows.size(), 1u);
  EXPECT_EQ(rows->back().rows[0][0].AsInt(), 1);
}

TEST_F(ServerTest, DistinctDatabaseNamesAreDistinctDatabases) {
  auto c1 = Connect("alpha");
  auto c2 = Connect("beta");
  ASSERT_TRUE(c1.ok() && c2.ok());
  ASSERT_TRUE((*c1)->Execute("create r (v = i4)").ok());
  // beta has no relation r.
  EXPECT_FALSE((*c2)->Execute("range of x is r").ok());
  EXPECT_EQ(registry_->OpenNames(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(ServerTest, HostileDatabaseNamesAreRejected) {
  auto evil = Connect("../escape");
  EXPECT_FALSE(evil.ok());
  auto empty = Connect("");
  EXPECT_FALSE(empty.ok());
}

TEST_F(ServerTest, PinAsOfFreezesAClientsView) {
  auto writer = Connect();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)
                  ->Execute("create persistent emp (sal = i4);"
                            "range of e is emp;"
                            "append to emp (sal = 1)")
                  .ok());
  auto reader = Connect();
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->Execute("range of e is emp").ok());

  // Pin the reader at the present instant, then write more.
  auto now_rows = (*reader)->Execute("retrieve (n = count(e.sal))");
  ASSERT_TRUE(now_rows.ok());
  ASSERT_EQ(now_rows->back().rows[0][0].AsInt(), 1);

  auto db = registry_->GetOrOpen("testdb");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*reader)->PinAsOf((*db)->now()).ok());
  (*db)->AdvanceSeconds(1);  // move the clock past the pin instant
  ASSERT_TRUE((*writer)->Execute("append to emp (sal = 2)").ok());

  auto pinned = (*reader)->Execute("retrieve (n = count(e.sal))");
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->back().rows[0][0].AsInt(), 1);  // frozen

  ASSERT_TRUE((*reader)->PinAsOf(std::nullopt).ok());
  auto fresh = (*reader)->Execute("retrieve (n = count(e.sal))");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->back().rows[0][0].AsInt(), 2);
}

TEST_F(ServerTest, EightConcurrentClientsSustainAMixedWorkload) {
  {
    auto setup = Connect();
    ASSERT_TRUE(setup.ok());
    std::string script = "create shared (v = i4)";
    for (int c = 0; c < 8; ++c) {
      script += ";create own" + std::to_string(c) + " (v = i4)";
    }
    ASSERT_TRUE((*setup)->Execute(script).ok());
  }
  constexpr int kClients = 8;
  constexpr int kStatementsEach = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, &failures, c] {
      auto client = Connect();
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kStatementsEach; ++i) {
        if (!(*client)
                 ->Execute("append to shared (v = " + std::to_string(i) +
                           ");append to own" + std::to_string(c) +
                           " (v = " + std::to_string(i) + ")")
                 .ok()) {
          failures.fetch_add(1);
        }
        auto read = (*client)->Execute("range of s is shared;"
                                       "retrieve (n = count(s.v))");
        if (!read.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  auto check = Connect();
  ASSERT_TRUE(check.ok());
  auto total = (*check)->Execute("range of s is shared;"
                                 "retrieve (n = count(s.v))");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->back().rows[0][0].AsInt(), kClients * kStatementsEach);
}

TEST_F(ServerTest, PreparedStatementsOverTheWire) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)
                  ->Execute("create emp (name = c8, sal = i4);"
                            "range of e is emp;"
                            "append to emp (name = \"ada\", sal = 120);"
                            "append to emp (name = \"bob\", sal = 80)")
                  .ok());
  auto prep = (*client)->Prepare(
      "highpaid", "retrieve (e.name, e.sal) where e.sal > $1");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();

  auto rows = (*client)->ExecutePrepared("highpaid", {Value::Int4(100)});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][1].AsInt(), 120);

  rows = (*client)->ExecutePrepared("highpaid", {Value::Int4(50)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);

  ASSERT_TRUE((*client)->ClosePrepared("highpaid").ok());
  EXPECT_FALSE((*client)->ExecutePrepared("highpaid", {Value::Int4(1)}).ok());
}

TEST_F(ServerTest, PreparedStatementErrorsKeepTheConnectionAlive) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Execute("create emp (sal = i4)").ok());
  // Prepare of an unbindable statement fails cleanly...
  EXPECT_FALSE((*client)->Prepare("bad", "retrieve (z.sal)").ok());
  // ...execute of an unknown name fails cleanly...
  EXPECT_FALSE((*client)->ExecutePrepared("nope", {}).ok());
  // ...close of an unknown name fails cleanly...
  EXPECT_FALSE((*client)->ClosePrepared("nope").ok());
  // ...and the connection keeps serving.
  EXPECT_TRUE((*client)->Ping().ok());
  ASSERT_TRUE((*client)->Execute("range of e is emp").ok());
  auto prep = (*client)->Prepare("good", "append to emp (sal = $1)");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  auto run = (*client)->ExecutePrepared("good", {Value::Int4(7)});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->affected, 1);
}

/// The whole ServerTest battery again on the epoll event loop: identical
/// observable behavior is the point of the dispatch abstraction.
class EpollServerTest : public ServerTest {
 protected:
  bool UseEpoll() const override { return true; }
};

TEST_F(EpollServerTest, ExecuteAndPreparedRoundTrip) {
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto results = (*client)->Execute(
      "create emp (name = c8, sal = i4);"
      "range of e is emp;"
      "append to emp (name = \"ada\", sal = 120);"
      "retrieve (e.name, e.sal) where e.sal > 100");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(results->back().rows.size(), 1u);

  auto prep = (*client)->Prepare("q", "retrieve (e.sal) where e.sal > $1");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  auto rows = (*client)->ExecutePrepared("q", {Value::Int4(100)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);
  EXPECT_TRUE((*client)->ClosePrepared("q").ok());
}

TEST_F(EpollServerTest, StatementErrorsKeepTheConnectionAlive) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE((*client)->Execute("range of e is nope").ok());
  EXPECT_TRUE((*client)->Ping().ok());
  EXPECT_TRUE((*client)->Execute("help").ok());
}

TEST_F(EpollServerTest, ThirtyTwoClientsWithoutPerConnectionThreads) {
  {
    auto setup = Connect();
    ASSERT_TRUE(setup.ok());
    std::string script = "create shared (v = i4)";
    for (int c = 0; c < 32; ++c) {
      script += ";create own" + std::to_string(c) + " (v = i4)";
    }
    ASSERT_TRUE((*setup)->Execute(script).ok());
  }
  constexpr int kClients = 32;
  constexpr int kStatementsEach = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, &failures, c] {
      auto client = Connect();
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      if (!(*client)->Execute("range of s is shared").ok()) {
        failures.fetch_add(1);
        return;
      }
      auto prep = (*client)->Prepare(
          "ins", "append to own" + std::to_string(c) + " (v = $1)");
      if (!prep.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kStatementsEach; ++i) {
        if (!(*client)->ExecutePrepared("ins", {Value::Int4(i)}).ok() ||
            !(*client)
                 ->Execute("append to shared (v = " + std::to_string(i) + ")")
                 .ok() ||
            !(*client)->Execute("retrieve (n = count(s.v))").ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  auto check = Connect();
  ASSERT_TRUE(check.ok());
  auto total = (*check)->Execute("range of s is shared;"
                                 "retrieve (n = count(s.v))");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->back().rows[0][0].AsInt(), kClients * kStatementsEach);
}

}  // namespace
}  // namespace net
}  // namespace tdb
