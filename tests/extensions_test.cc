// Tests of the Quel-completeness extensions: `sort by`, group aggregates
// (`agg(x by g)`), ISAM key-range scans, and the multi-frame buffer pool.

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/env.h"
#include "storage/isam_file.h"
#include "tquel/parser.h"

namespace tdb {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    options.start_time = TimePoint(100000);
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Exec("create emp (name = c8, dept = c8, sal = i4)");
    Exec("append to emp (name = \"ann\", dept = \"toy\", sal = 12)");
    Exec("append to emp (name = \"bob\", dept = \"toy\", sal = 10)");
    Exec("append to emp (name = \"cal\", dept = \"ops\", sal = 30)");
    Exec("append to emp (name = \"dee\", dept = \"ops\", sal = 20)");
    Exec("range of e is emp");
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  ResultSet Query(const std::string& text) {
    auto r = db_->Execute(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return r.ok() ? std::move(r->result) : ResultSet{};
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(ExtensionsTest, SortByAscending) {
  ResultSet r = Query("retrieve (e.name, e.sal) sort by sal");
  ASSERT_EQ(r.num_rows(), 4u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 10);
  EXPECT_EQ(r.rows[3][1].AsInt(), 30);
}

TEST_F(ExtensionsTest, SortByDescending) {
  ResultSet r = Query("retrieve (e.name, e.sal) sort by sal desc");
  ASSERT_EQ(r.num_rows(), 4u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 30);
  EXPECT_EQ(r.rows[3][1].AsInt(), 10);
}

TEST_F(ExtensionsTest, SortByMultipleKeys) {
  ResultSet r = Query("retrieve (e.dept, e.sal) sort by dept, sal desc");
  ASSERT_EQ(r.num_rows(), 4u);
  // ops 30, ops 20, toy 12, toy 10.
  EXPECT_EQ(r.rows[0][0].ToString(), "ops");
  EXPECT_EQ(r.rows[0][1].AsInt(), 30);
  EXPECT_EQ(r.rows[1][1].AsInt(), 20);
  EXPECT_EQ(r.rows[2][0].ToString(), "toy");
  EXPECT_EQ(r.rows[2][1].AsInt(), 12);
}

TEST_F(ExtensionsTest, SortByStringColumn) {
  ResultSet r = Query("retrieve (e.name) sort by name desc");
  EXPECT_EQ(r.rows[0][0].ToString(), "dee");
  EXPECT_EQ(r.rows[3][0].ToString(), "ann");
}

TEST_F(ExtensionsTest, SortByUnknownColumnFails) {
  auto r = db_->Execute("retrieve (e.name) sort by nope");
  EXPECT_FALSE(r.ok());
}

TEST_F(ExtensionsTest, GroupAggregateByDept) {
  // Quel aggregate functions: one value per group, attached per row.
  ResultSet r = Query(
      "retrieve unique (e.dept, total = sum(e.sal by e.dept), "
      "n = count(e.sal by e.dept)) sort by dept");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.rows[0][0].ToString(), "ops");
  EXPECT_EQ(r.rows[0][1].AsInt(), 50);
  EXPECT_EQ(r.rows[0][2].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].ToString(), "toy");
  EXPECT_EQ(r.rows[1][1].AsInt(), 22);
  EXPECT_EQ(r.rows[1][2].AsInt(), 2);
}

TEST_F(ExtensionsTest, GroupAggregateInExpression) {
  // Each employee's share of their department's payroll (x100).
  ResultSet r = Query(
      "retrieve (e.name, share = e.sal * 100 / sum(e.sal by e.dept)) "
      "sort by name");
  ASSERT_EQ(r.num_rows(), 4u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 54);  // ann: 12*100/22
  EXPECT_EQ(r.rows[2][1].AsInt(), 60);  // cal: 30*100/50
}

TEST_F(ExtensionsTest, GroupAggregateWithWhere) {
  ResultSet r = Query(
      "retrieve unique (e.dept, rich = count(e.sal by e.dept "
      "where e.sal >= 20)) sort by dept");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);  // ops: 30 and 20
  EXPECT_EQ(r.rows[1][1].AsInt(), 0);  // toy: none
}

TEST_F(ExtensionsTest, GroupAggregateMinMaxAvg) {
  ResultSet r = Query(
      "retrieve unique (e.dept, lo = min(e.sal by e.dept), "
      "hi = max(e.sal by e.dept), mid = avg(e.sal by e.dept)) sort by dept");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 20);
  EXPECT_EQ(r.rows[0][2].AsInt(), 30);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 25.0);
}

class RangeScanTest : public ExtensionsTest {
 protected:
  void SetUp() override {
    ExtensionsTest::SetUp();
    Exec("create persistent interval t (id = i4, v = i4, pad = c100)");
    for (int i = 0; i < 64; ++i) {
      Exec("append to t (id = " + std::to_string(i * 2) + ", v = " +
           std::to_string(i) + ")");
    }
    Exec("modify t to isam on id where fillfactor = 100");
    Exec("range of x is t");
  }

  uint64_t MeasureReads(const std::string& text, uint64_t* rows) {
    EXPECT_TRUE(db_->DropAllBuffers().ok());
    db_->io()->ResetAll();
    auto r = db_->Execute(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    *rows = r.ok() ? static_cast<uint64_t>(r->affected) : 0;
    return db_->io()->Total().TotalReads();
  }
};

TEST_F(RangeScanTest, BoundedRangeReadsFewPages) {
  uint64_t rows = 0;
  uint64_t reads = MeasureReads(
      "retrieve (x.id) where x.id >= 40 and x.id < 56 "
      "when x overlap \"now\"",
      &rows);
  EXPECT_EQ(rows, 8u);  // ids 40,42,...,54
  // Directory + the 1-2 covering data pages, not the whole 8-page file.
  EXPECT_LE(reads, 4u);
}

TEST_F(RangeScanTest, LowerBoundOnly) {
  uint64_t rows = 0;
  uint64_t reads = MeasureReads(
      "retrieve (x.id) where x.id > 100 when x overlap \"now\"", &rows);
  EXPECT_EQ(rows, 13u);  // 102..126
  auto rel = db_->GetRelation("t");
  EXPECT_LT(reads, (*rel)->primary()->page_count());
}

TEST_F(RangeScanTest, UpperBoundOnlyScansPrefix) {
  uint64_t rows = 0;
  uint64_t reads = MeasureReads(
      "retrieve (x.id) where x.id <= 10 when x overlap \"now\"", &rows);
  EXPECT_EQ(rows, 6u);  // 0,2,...,10
  EXPECT_LE(reads, 3u);
}

TEST_F(RangeScanTest, InclusiveExclusiveBoundaries) {
  uint64_t rows = 0;
  MeasureReads("retrieve (x.id) where x.id > 40 and x.id <= 44 "
               "when x overlap \"now\"",
               &rows);
  EXPECT_EQ(rows, 2u);  // 42, 44
  MeasureReads("retrieve (x.id) where x.id >= 40 and x.id < 44 "
               "when x overlap \"now\"",
               &rows);
  EXPECT_EQ(rows, 2u);  // 40, 42
}

TEST_F(RangeScanTest, EmptyRange) {
  uint64_t rows = 0;
  MeasureReads("retrieve (x.id) where x.id > 37 and x.id < 38", &rows);
  EXPECT_EQ(rows, 0u);
}

TEST_F(RangeScanTest, RangeSeesOverflowVersions) {
  Exec("replace x (v = 999) where x.id = 42");
  uint64_t rows = 0;
  MeasureReads(
      "retrieve (x.id, x.v) where x.id >= 42 and x.id <= 42 "
      "when x overlap \"now\"",
      &rows);
  EXPECT_EQ(rows, 1u);
  auto r = db_->Execute(
      "retrieve (x.v) where x.id >= 42 and x.id <= 42 "
      "as of \"beginning\" through \"forever\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 3u);  // original + correction + new
}

TEST_F(RangeScanTest, HashRelationIgnoresRangePath) {
  Exec("modify t to hash on id where fillfactor = 100");
  uint64_t rows = 0;
  uint64_t reads = MeasureReads(
      "retrieve (x.id) where x.id >= 40 and x.id < 56 "
      "when x overlap \"now\"",
      &rows);
  EXPECT_EQ(rows, 8u);
  auto rel = db_->GetRelation("t");
  EXPECT_EQ(reads, (*rel)->primary()->page_count());  // full scan
}

TEST_F(ExtensionsTest, HelpListsRelations) {
  ResultSet all = Query("help");
  ASSERT_EQ(all.num_rows(), 1u);
  EXPECT_EQ(all.rows[0][0].ToString(), "emp");
  EXPECT_EQ(all.rows[0][1].ToString(), "static");

  Exec("create persistent interval t (id = i4)");
  Exec("modify t to hash on id where fillfactor = 100");
  ResultSet both = Query("help");
  EXPECT_EQ(both.num_rows(), 2u);

  ResultSet described = Query("help t");
  ASSERT_EQ(described.num_rows(), 5u);  // id + 4 implicit time attributes
  EXPECT_EQ(described.rows[0][0].ToString(), "id");
  EXPECT_EQ(described.rows[0][4].ToString(), "hash key");
  EXPECT_EQ(described.rows[1][3].ToString(), "yes");  // implicit

  auto missing = db_->Execute("help nope");
  EXPECT_FALSE(missing.ok());
}

class BtreeDbTest : public ExtensionsTest {};

TEST_F(BtreeDbTest, ModifyToBtreeAndQuery) {
  Exec("create persistent interval t (id = i4, v = i4, pad = c100)");
  for (int i = 0; i < 64; ++i) {
    Exec("append to t (id = " + std::to_string(i) + ", v = " +
         std::to_string(i) + ")");
  }
  Exec("modify t to btree on id");
  Exec("range of x is t");
  ResultSet point = Query(
      "retrieve (x.v) where x.id = 33 when x overlap \"now\"");
  ASSERT_EQ(point.num_rows(), 1u);
  EXPECT_EQ(point.rows[0][0].AsInt(), 33);
  ResultSet range = Query(
      "retrieve (x.id) where x.id >= 10 and x.id < 15 "
      "when x overlap \"now\"");
  EXPECT_EQ(range.num_rows(), 5u);
}

TEST_F(BtreeDbTest, VersionsSurviveUpdatesAndReopen) {
  Exec("create persistent interval t (id = i4, v = i4, pad = c100)");
  for (int i = 0; i < 32; ++i) {
    Exec("append to t (id = " + std::to_string(i) + ", v = 0)");
  }
  Exec("modify t to btree on id");
  Exec("range of x is t");
  for (int round = 0; round < 4; ++round) {
    db_->AdvanceSeconds(1000);
    Exec("replace x (v = x.v + 1)");
  }
  ResultSet versions = Query(
      "retrieve (x.v) where x.id = 17 "
      "as of \"beginning\" through \"forever\"");
  EXPECT_EQ(versions.num_rows(), 9u);  // 1 + 4 rounds x 2

  db_.reset();
  DatabaseOptions options;
  options.env = &env_;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  db_ = std::move(db).value();
  Exec("range of x is t");
  ResultSet current = Query(
      "retrieve (x.v) where x.id = 17 when x overlap \"now\"");
  ASSERT_EQ(current.num_rows(), 1u);
  EXPECT_EQ(current.rows[0][0].AsInt(), 4);
}

TEST_F(BtreeDbTest, SecondaryIndexesAreRejected) {
  Exec("create persistent interval t (id = i4, v = i4)");
  Exec("append to t (id = 1, v = 2)");
  Exec("modify t to btree on id");
  // Indexing a btree relation is refused (leaf splits would stale entries).
  auto idx = db_->Execute("index on t is vi (v)");
  EXPECT_EQ(idx.status().code(), StatusCode::kNotSupported);
  // ...as is converting an indexed relation to btree.
  Exec("create persistent interval u (id = i4, v = i4)");
  Exec("index on u is vi2 (v)");
  auto conv = db_->Execute("modify u to btree on id");
  EXPECT_EQ(conv.status().code(), StatusCode::kNotSupported);
}

TEST_F(BtreeDbTest, TwoLevelBtreePrimary) {
  Exec("create persistent interval t (id = i4, v = i4, pad = c100)");
  for (int i = 0; i < 32; ++i) {
    Exec("append to t (id = " + std::to_string(i) + ", v = 0)");
  }
  Exec("modify t to twolevel btree on id where history = clustered");
  Exec("range of x is t");
  for (int round = 0; round < 3; ++round) {
    db_->AdvanceSeconds(1000);
    Exec("replace x (v = x.v + 1)");
  }
  ResultSet current = Query(
      "retrieve (x.v) where x.id = 5 when x overlap \"now\"");
  ASSERT_EQ(current.num_rows(), 1u);
  EXPECT_EQ(current.rows[0][0].AsInt(), 3);
  ResultSet all = Query(
      "retrieve (x.v) where x.id = 5 "
      "as of \"beginning\" through \"forever\"");
  EXPECT_EQ(all.num_rows(), 7u);
}

TEST(BufferPoolTest, MultiFrameCachesHotPages) {
  MemEnv env;
  IoCounters counters;
  auto pager = Pager::Open(&env, "/p", &counters, /*frames=*/3);
  ASSERT_TRUE(pager.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*pager)->AllocatePage(IoCategory::kData).ok());
  }
  ASSERT_TRUE((*pager)->FlushAndDrop().ok());
  counters.Reset();
  // Three pages ping-ponged in a 3-frame pool: only cold misses count.
  for (int round = 0; round < 5; ++round) {
    for (uint32_t p = 0; p < 3; ++p) {
      ASSERT_TRUE((*pager)->ReadPage(p, IoCategory::kData).ok());
    }
  }
  EXPECT_EQ(counters.TotalReads(), 3u);
  // A fourth page evicts the LRU (page 0 after the last loop touched 0,1,2
  // in order -> LRU is 0).
  ASSERT_TRUE((*pager)->ReadPage(3, IoCategory::kData).ok());
  EXPECT_EQ(counters.TotalReads(), 4u);
  ASSERT_TRUE((*pager)->ReadPage(1, IoCategory::kData).ok());  // still hot
  EXPECT_EQ(counters.TotalReads(), 4u);
  ASSERT_TRUE((*pager)->ReadPage(0, IoCategory::kData).ok());  // was evicted
  EXPECT_EQ(counters.TotalReads(), 5u);
}

TEST(BufferPoolTest, DirtyEvictionWritesOnce) {
  MemEnv env;
  IoCounters counters;
  auto pager = Pager::Open(&env, "/p", &counters, /*frames=*/2);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*pager)->AllocatePage(IoCategory::kData).ok());
  }
  ASSERT_TRUE((*pager)->FlushAndDrop().ok());
  counters.Reset();
  ASSERT_TRUE((*pager)->ReadPage(0, IoCategory::kData).ok());
  (*pager)->MarkDirty();
  ASSERT_TRUE((*pager)->ReadPage(1, IoCategory::kData).ok());
  EXPECT_EQ(counters.TotalWrites(), 0u);  // page 0 still pooled
  ASSERT_TRUE((*pager)->ReadPage(2, IoCategory::kData).ok());  // evicts 0
  EXPECT_EQ(counters.TotalWrites(), 1u);
}

TEST(BufferPoolTest, FrameCountValidation) {
  MemEnv env;
  EXPECT_FALSE(Pager::Open(&env, "/p", nullptr, 0).ok());
  EXPECT_FALSE(Pager::Open(&env, "/p", nullptr, -3).ok());
  EXPECT_TRUE(Pager::Open(&env, "/p", nullptr, 1024).ok());
}

TEST(BufferPoolTest, DatabaseOptionPlumbsThrough) {
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  options.buffer_frames = 4;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Execute("create t (id = i4)").ok());
  ASSERT_TRUE((*db)->Execute("append to t (id = 1)").ok());
  auto rel = (*db)->GetRelation("t");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->primary()->pager()->num_frames(), 4);
}

TEST(ExtensionsParserTest, SortByAndAggBySyntax) {
  auto stmt = Parser::ParseStatement(
      "retrieve (e.dept, s = sum(e.sal by e.dept where e.sal > 0)) "
      "where e.sal > 1 sort by dept desc, s");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* r = static_cast<RetrieveStmt*>(stmt->get());
  ASSERT_EQ(r->sort_by.size(), 2u);
  EXPECT_EQ(r->sort_by[0].target, "dept");
  EXPECT_TRUE(r->sort_by[0].descending);
  EXPECT_FALSE(r->sort_by[1].descending);
  EXPECT_NE(r->targets[1].expr->agg_by, nullptr);
  EXPECT_NE(r->targets[1].expr->agg_where, nullptr);
}

}  // namespace
}  // namespace tdb
