#include "types/timepoint.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace tdb {
namespace {

TEST(TimePointTest, EpochIsUnix) {
  CivilTime c = ToCivil(TimePoint(0));
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
  EXPECT_EQ(c.hour, 0);
}

TEST(TimePointTest, FromCivilKnownValue) {
  // Jan 1 1980 00:00:00 UTC = 315532800.
  auto tp = TimePoint::FromCivil(1980, 1, 1);
  ASSERT_TRUE(tp.ok());
  EXPECT_EQ(tp->seconds(), 315532800);
}

TEST(TimePointTest, FromCivilRejectsBadFields) {
  EXPECT_FALSE(TimePoint::FromCivil(1980, 13, 1).ok());
  EXPECT_FALSE(TimePoint::FromCivil(1980, 0, 1).ok());
  EXPECT_FALSE(TimePoint::FromCivil(1980, 2, 30).ok());
  EXPECT_FALSE(TimePoint::FromCivil(1981, 2, 29).ok());  // not a leap year
  EXPECT_TRUE(TimePoint::FromCivil(1980, 2, 29).ok());   // leap year
  EXPECT_FALSE(TimePoint::FromCivil(1980, 1, 1, 24, 0, 0).ok());
  EXPECT_FALSE(TimePoint::FromCivil(1980, 1, 1, 0, 60, 0).ok());
  EXPECT_FALSE(TimePoint::FromCivil(1980, 1, 1, 0, 0, 60).ok());
}

TEST(TimePointTest, FromCivilRejectsOutOf32BitRange) {
  EXPECT_FALSE(TimePoint::FromCivil(2200, 1, 1).ok());
  EXPECT_FALSE(TimePoint::FromCivil(1800, 1, 1).ok());
}

TEST(TimePointTest, ParsePaperFormats) {
  struct Case {
    const char* text;
    int year, month, day, hour, minute, second;
  } cases[] = {
      {"1/1/80", 1980, 1, 1, 0, 0, 0},
      {"08:00 1/1/80", 1980, 1, 1, 8, 0, 0},
      {"4:00 1/1/80", 1980, 1, 1, 4, 0, 0},
      {"2/15/1980", 1980, 2, 15, 0, 0, 0},
      {"12:30:45 2/15/1980", 1980, 2, 15, 12, 30, 45},
      {"1981", 1981, 1, 1, 0, 0, 0},
      {"  08:00 1/1/80  ", 1980, 1, 1, 8, 0, 0},
  };
  for (const Case& c : cases) {
    auto tp = TimePoint::Parse(c.text);
    ASSERT_TRUE(tp.ok()) << c.text << ": " << tp.status().ToString();
    CivilTime got = ToCivil(*tp);
    EXPECT_EQ(got.year, c.year) << c.text;
    EXPECT_EQ(got.month, c.month) << c.text;
    EXPECT_EQ(got.day, c.day) << c.text;
    EXPECT_EQ(got.hour, c.hour) << c.text;
    EXPECT_EQ(got.minute, c.minute) << c.text;
    EXPECT_EQ(got.second, c.second) << c.text;
  }
}

TEST(TimePointTest, ParseForeverAndBeginning) {
  auto f = TimePoint::Parse("forever");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->is_forever());
  auto b = TimePoint::Parse("beginning");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, TimePoint::Beginning());
  EXPECT_TRUE(TimePoint::Parse("FOREVER").ok());  // case-insensitive
}

TEST(TimePointTest, ParseRejectsGarbage) {
  for (const char* bad :
       {"", "abc", "13/1/80", "1/32/80", "25:00 1/1/80", "1/1", "1/1/80/2",
        "08:61 1/1/80", "2/30/80", "99"}) {
    EXPECT_FALSE(TimePoint::Parse(bad).ok()) << bad;
  }
}

TEST(TimePointTest, TwoDigitYearMeans19xx) {
  auto tp = TimePoint::Parse("1/1/85");
  ASSERT_TRUE(tp.ok());
  EXPECT_EQ(ToCivil(*tp).year, 1985);
}

TEST(TimePointTest, FormatResolutions) {
  auto tp = TimePoint::FromCivil(1980, 2, 15, 8, 30, 45);
  ASSERT_TRUE(tp.ok());
  EXPECT_EQ(tp->ToString(TimeResolution::kSecond), "08:30:45 2/15/1980");
  EXPECT_EQ(tp->ToString(TimeResolution::kMinute), "08:30 2/15/1980");
  EXPECT_EQ(tp->ToString(TimeResolution::kHour), "08:00 2/15/1980");
  EXPECT_EQ(tp->ToString(TimeResolution::kDay), "2/15/1980");
  EXPECT_EQ(tp->ToString(TimeResolution::kMonth), "2/1980");
  EXPECT_EQ(tp->ToString(TimeResolution::kYear), "1980");
}

TEST(TimePointTest, FormatSpecials) {
  EXPECT_EQ(TimePoint::Forever().ToString(), "forever");
  EXPECT_EQ(TimePoint::Beginning().ToString(), "beginning");
}

TEST(TimePointTest, AddSecondsSaturates) {
  EXPECT_EQ(TimePoint::Forever().AddSeconds(100), TimePoint::Forever());
  EXPECT_EQ(TimePoint::Beginning().AddSeconds(-5), TimePoint::Beginning());
  EXPECT_EQ(TimePoint(INT32_MAX - 1).AddSeconds(100), TimePoint::Forever());
  EXPECT_EQ(TimePoint(10).AddSeconds(-3), TimePoint(7));
}

TEST(TimePointTest, Ordering) {
  EXPECT_LT(TimePoint(1), TimePoint(2));
  EXPECT_LT(TimePoint::Beginning(), TimePoint(0));
  EXPECT_LT(TimePoint(0), TimePoint::Forever());
  EXPECT_EQ(TimePoint(5), TimePoint(5));
}

TEST(TimePointTest, DaysFromCivilKnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(1980, 1, 1), 3652);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
}

// Property: format at second resolution, parse, and get the value back.
class TimeRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimeRoundTrip, FormatParseRoundTrips) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    // Restrict to the representable civil window.
    TimePoint tp(static_cast<int32_t>(rng.UniformRange(-2000000000,
                                                       2000000000)));
    std::string text = tp.ToString(TimeResolution::kSecond);
    auto parsed = TimePoint::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(*parsed, tp) << text;
  }
}

// Property: civil conversion round trips through FromCivil.
TEST_P(TimeRoundTrip, CivilRoundTrips) {
  Random rng(GetParam() + 100);
  for (int i = 0; i < 200; ++i) {
    TimePoint tp(static_cast<int32_t>(rng.UniformRange(-2000000000,
                                                       2000000000)));
    CivilTime c = ToCivil(tp);
    auto back = TimePoint::FromCivil(c.year, c.month, c.day, c.hour, c.minute,
                                     c.second);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, tp);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tdb
