// End-to-end tests of the Database facade: the full TQuel surface over an
// in-memory environment, covering all four database types.

#include "core/database.h"

#include <gtest/gtest.h>

#include "env/env.h"

namespace tdb {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  ExecResult Exec(const std::string& text) {
    auto r = db_->Execute(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ExecResult{};
  }

  Status ExecErr(const std::string& text) {
    auto r = db_->Execute(text);
    EXPECT_FALSE(r.ok()) << "expected failure: " << text;
    return r.status();
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CreateAndAppendStatic) {
  Exec("create parts (id = i4, name = c12, qty = i4)");
  Exec("append to parts (id = 1, name = \"bolt\", qty = 40)");
  Exec("append to parts (id = 2, name = \"nut\", qty = 7)");
  Exec("range of p is parts");
  ExecResult r = Exec("retrieve (p.id, p.name, p.qty) where p.qty > 10");
  ASSERT_EQ(r.result.num_rows(), 1u);
  EXPECT_EQ(r.result.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.result.rows[0][1].ToString(), "bolt");
}

TEST_F(DatabaseTest, StaticDeleteAndReplace) {
  Exec("create parts (id = i4, qty = i4)");
  Exec("append to parts (id = 1, qty = 10)");
  Exec("append to parts (id = 2, qty = 20)");
  Exec("range of p is parts");
  ExecResult del = Exec("delete p where p.id = 1");
  EXPECT_EQ(del.affected, 1);
  ExecResult rep = Exec("replace p (qty = p.qty + 5)");
  EXPECT_EQ(rep.affected, 1);
  ExecResult r = Exec("retrieve (p.id, p.qty)");
  ASSERT_EQ(r.result.num_rows(), 1u);
  EXPECT_EQ(r.result.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.result.rows[0][1].AsInt(), 25);
}

TEST_F(DatabaseTest, RollbackAsOf) {
  Exec("create persistent emp (name = c10, sal = i4)");
  Exec("append to emp (name = \"ann\", sal = 100)");
  TimePoint after_insert = db_->now();
  db_->AdvanceSeconds(100);
  Exec("range of e is emp");
  Exec("replace e (sal = 200) where e.name = \"ann\"");

  // Current state.
  ExecResult cur = Exec("retrieve (e.sal) as of \"now\"");
  ASSERT_EQ(cur.result.num_rows(), 1u);
  EXPECT_EQ(cur.result.rows[0][0].AsInt(), 200);

  // Rolled-back state: reconstructs the pre-replace salary.
  ExecResult old = Exec("retrieve (e.sal) as of \"" +
                        after_insert.ToString() + "\"");
  ASSERT_EQ(old.result.num_rows(), 1u);
  EXPECT_EQ(old.result.rows[0][0].AsInt(), 100);
}

TEST_F(DatabaseTest, HistoricalWhenOverlap) {
  Exec("create interval emp (name = c10, sal = i4)");
  Exec("append to emp (name = \"bob\", sal = 50) "
       "valid from \"1/1/80\" to \"6/1/80\"");
  Exec("append to emp (name = \"bob\", sal = 75) "
       "valid from \"6/1/80\" to \"forever\"");
  Exec("range of e is emp");

  ExecResult spring = Exec(
      "retrieve (e.sal) where e.name = \"bob\" when e overlap \"3/1/80\"");
  ASSERT_EQ(spring.result.num_rows(), 1u);
  EXPECT_EQ(spring.result.rows[0][0].AsInt(), 50);

  ExecResult later = Exec(
      "retrieve (e.sal) where e.name = \"bob\" when e overlap \"7/1/80\"");
  ASSERT_EQ(later.result.num_rows(), 1u);
  EXPECT_EQ(later.result.rows[0][0].AsInt(), 75);

  // Result rows carry the valid interval.
  ASSERT_EQ(later.result.columns.size(), 3u);
  EXPECT_EQ(later.result.columns[1], "valid_from");
  EXPECT_EQ(later.result.columns[2], "valid_to");
}

TEST_F(DatabaseTest, TemporalReplaceKeepsFullHistory) {
  Exec("create persistent interval acct (id = i4, bal = i4)");
  Exec("append to acct (id = 7, bal = 10)");
  Exec("range of a is acct");
  db_->AdvanceSeconds(50);
  Exec("replace a (bal = 20) where a.id = 7");
  db_->AdvanceSeconds(50);
  Exec("replace a (bal = 30) where a.id = 7");

  // As of now (the TQuel default) the validity history has three entries:
  // bal 10 until the first replace, 20 until the second, 30 since.
  ExecResult history = Exec("retrieve (a.bal)");
  EXPECT_EQ(history.result.num_rows(), 3u);

  // Every stored version — including the two superseded ones — is reachable
  // by rolling back across all of transaction time: 1 + 2 + 2 = 5.
  ExecResult all =
      Exec("retrieve (a.bal) as of \"beginning\" through \"forever\"");
  EXPECT_EQ(all.result.num_rows(), 5u);

  // Static-style query sees only the latest balance.
  ExecResult cur = Exec(
      "retrieve (a.bal) where a.id = 7 when a overlap \"now\" as of \"now\"");
  ASSERT_EQ(cur.result.num_rows(), 1u);
  EXPECT_EQ(cur.result.rows[0][0].AsInt(), 30);
}

TEST_F(DatabaseTest, TemporalJoinQ12Shape) {
  Exec("create persistent interval t_h (id = i4, amount = i4)");
  Exec("create persistent interval t_i (id = i4, amount = i4)");
  Exec("append to t_h (id = 500, amount = 1)");
  Exec("append to t_i (id = 9, amount = 73700)");
  Exec("range of h is t_h");
  Exec("range of i is t_i");
  ExecResult r = Exec(
      "retrieve (h.id, i.id, i.amount) "
      "valid from start of (h overlap i) to end of (h extend i) "
      "where h.id = 500 and i.amount = 73700 "
      "when h overlap i as of \"now\"");
  ASSERT_EQ(r.result.num_rows(), 1u);
  EXPECT_EQ(r.result.rows[0][0].AsInt(), 500);
  EXPECT_EQ(r.result.rows[0][2].AsInt(), 73700);
}

TEST_F(DatabaseTest, ClauseApplicabilityErrors) {
  Exec("create s (id = i4)");
  Exec("create persistent r (id = i4)");
  Exec("create interval h (id = i4)");
  Exec("range of s is s");
  Exec("range of r is r");
  Exec("range of h is h");
  // Static relations accept neither when nor as-of.
  ExecErr("retrieve (s.id) when s overlap \"now\"");
  ExecErr("retrieve (s.id) as of \"now\"");
  // Rollback relations have no valid time -> no when.
  ExecErr("retrieve (r.id) when r overlap \"now\"");
  // Historical relations have no transaction time -> no as-of.
  ExecErr("retrieve (h.id) as of \"now\"");
  // But the applicable clauses work.
  Exec("retrieve (r.id) as of \"now\"");
  Exec("retrieve (h.id) when h overlap \"now\"");
}

TEST_F(DatabaseTest, ModifyToHashAndIsamPreservesData) {
  Exec("create parts (id = i4, qty = i4)");
  for (int i = 0; i < 50; ++i) {
    Exec("append to parts (id = " + std::to_string(i) + ", qty = " +
         std::to_string(i * 10) + ")");
  }
  Exec("modify parts to hash on id where fillfactor = 100");
  Exec("range of p is parts");
  ExecResult r1 = Exec("retrieve (p.qty) where p.id = 33");
  ASSERT_EQ(r1.result.num_rows(), 1u);
  EXPECT_EQ(r1.result.rows[0][0].AsInt(), 330);

  Exec("modify parts to isam on id where fillfactor = 50");
  ExecResult r2 = Exec("retrieve (p.qty) where p.id = 33");
  ASSERT_EQ(r2.result.num_rows(), 1u);
  EXPECT_EQ(r2.result.rows[0][0].AsInt(), 330);
  ExecResult all = Exec("retrieve (p.id)");
  EXPECT_EQ(all.result.num_rows(), 50u);
}

TEST_F(DatabaseTest, RetrieveIntoAndAggregates) {
  Exec("create parts (id = i4, qty = i4)");
  Exec("append to parts (id = 1, qty = 10)");
  Exec("append to parts (id = 2, qty = 30)");
  Exec("range of p is parts");
  ExecResult agg = Exec(
      "retrieve (n = count(p.id), total = sum(p.qty), top = max(p.qty))");
  ASSERT_EQ(agg.result.num_rows(), 1u);
  EXPECT_EQ(agg.result.rows[0][0].AsInt(), 2);
  EXPECT_EQ(agg.result.rows[0][1].AsInt(), 40);
  EXPECT_EQ(agg.result.rows[0][2].AsInt(), 30);

  Exec("retrieve into big (p.id, p.qty) where p.qty > 15");
  Exec("range of b is big");
  ExecResult r = Exec("retrieve (b.id)");
  ASSERT_EQ(r.result.num_rows(), 1u);
  EXPECT_EQ(r.result.rows[0][0].AsInt(), 2);
}

TEST_F(DatabaseTest, CopyRoundTrip) {
  Exec("create parts (id = i4, name = c8)");
  Exec("append to parts (id = 1, name = \"ab\")");
  Exec("append to parts (id = 2, name = \"cd\")");
  Exec("copy parts to \"/dump.tsv\"");
  Exec("create parts2 (id = i4, name = c8)");
  ExecResult r = Exec("copy parts2 from \"/dump.tsv\"");
  EXPECT_EQ(r.affected, 2);
  Exec("range of q is parts2");
  ExecResult rows = Exec("retrieve (q.id, q.name) where q.id = 2");
  ASSERT_EQ(rows.result.num_rows(), 1u);
  EXPECT_EQ(rows.result.rows[0][1].ToString(), "cd");
}

TEST_F(DatabaseTest, PersistenceAcrossReopen) {
  Exec("create persistent interval acct (id = i4, bal = i4)");
  Exec("append to acct (id = 1, bal = 10)");
  Exec("modify acct to hash on id where fillfactor = 100");
  db_.reset();

  DatabaseOptions options;
  options.env = &env_;
  auto reopened = Database::Open("/db", options);
  ASSERT_TRUE(reopened.ok());
  db_ = std::move(reopened).value();
  Exec("range of a is acct");
  ExecResult r = Exec("retrieve (a.bal) where a.id = 1");
  ASSERT_EQ(r.result.num_rows(), 1u);
  EXPECT_EQ(r.result.rows[0][0].AsInt(), 10);
}

TEST_F(DatabaseTest, DeleteOnTemporalKeepsRollbackView) {
  Exec("create persistent interval acct (id = i4, bal = i4)");
  Exec("append to acct (id = 1, bal = 10)");
  TimePoint before_delete = db_->now();
  db_->AdvanceSeconds(100);
  Exec("range of a is acct");
  Exec("delete a where a.id = 1");

  // Gone from the current state...
  ExecResult cur = Exec(
      "retrieve (a.bal) when a overlap \"now\" as of \"now\"");
  EXPECT_EQ(cur.result.num_rows(), 0u);
  // ...but the rollback view still reconstructs it.
  ExecResult old = Exec("retrieve (a.bal) when a overlap \"" +
                        before_delete.ToString() + "\" as of \"" +
                        before_delete.ToString() + "\"");
  ASSERT_EQ(old.result.num_rows(), 1u);
  EXPECT_EQ(old.result.rows[0][0].AsInt(), 10);
}

TEST_F(DatabaseTest, EventRelation) {
  Exec("create event ping (host = c8, ms = i4)");
  Exec("append to ping (host = \"a\", ms = 12) valid at \"08:00 1/1/80\"");
  Exec("append to ping (host = \"a\", ms = 20) valid at \"09:00 1/1/80\"");
  Exec("range of p is ping");
  ExecResult r = Exec(
      "retrieve (p.ms) when p overlap \"08:00 1/1/80\"");
  ASSERT_EQ(r.result.num_rows(), 1u);
  EXPECT_EQ(r.result.rows[0][0].AsInt(), 12);
}

TEST_F(DatabaseTest, UniqueAndExpressionTargets) {
  Exec("create parts (id = i4, qty = i4)");
  Exec("append to parts (id = 1, qty = 5)");
  Exec("append to parts (id = 2, qty = 5)");
  Exec("range of p is parts");
  ExecResult r = Exec("retrieve unique (p.qty)");
  EXPECT_EQ(r.result.num_rows(), 1u);
  ExecResult e = Exec("retrieve (twice = p.qty * 2) where p.id = 1");
  ASSERT_EQ(e.result.num_rows(), 1u);
  EXPECT_EQ(e.result.rows[0][0].AsInt(), 10);
}

TEST_F(DatabaseTest, ExecuteScriptReturnsPerStatementResults) {
  auto results = db_->ExecuteScript(
      "create parts (id = i4, qty = i4);"
      "append to parts (id = 1, qty = 5);"
      "range of p is parts;"
      "retrieve (p.id, p.qty)");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 4u);
  EXPECT_NE((*results)[0].message.find("created"), std::string::npos);
  EXPECT_EQ((*results)[1].affected, 1);
  EXPECT_EQ((*results)[3].result.num_rows(), 1u);
}

TEST_F(DatabaseTest, ExecuteIsLastResultOfScript) {
  auto r = db_->Execute(
      "create parts (id = i4);"
      "append to parts (id = 7);"
      "range of p is parts;"
      "retrieve (p.id)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result.num_rows(), 1u);
  EXPECT_EQ(r->result.rows[0][0].AsInt(), 7);
}

TEST_F(DatabaseTest, ScriptErrorCarriesStatementContext) {
  const std::string script =
      "create parts (id = i4);"
      "range of p is nonexistent";
  Status s = db_->ExecuteScript(script).status();
  ASSERT_FALSE(s.ok());
  ASSERT_NE(s.statement_context(), nullptr);
  EXPECT_EQ(s.statement_context()->statement_index, 2);
  EXPECT_EQ(s.statement_context()->source_offset,
            script.find("range of p"));
  EXPECT_NE(s.ToString().find("(statement 2, offset"), std::string::npos)
      << s.ToString();
  // Statement 1 ran before the failure.
  EXPECT_NE(db_->catalog()->Find("parts"), nullptr);
}

TEST_F(DatabaseTest, ParseErrorCarriesStatementContext) {
  const std::string script =
      "create parts (id = i4);"
      "banana split";
  Status s = db_->Execute(script).status();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  ASSERT_NE(s.statement_context(), nullptr);
  EXPECT_EQ(s.statement_context()->statement_index, 2);
  EXPECT_EQ(s.statement_context()->source_offset, script.find("banana"));
}

TEST_F(DatabaseTest, SingleStatementErrorContextIsStatementOne) {
  Status s = ExecErr("retrieve (zz.id)");
  ASSERT_NE(s.statement_context(), nullptr);
  EXPECT_EQ(s.statement_context()->statement_index, 1);
  EXPECT_EQ(s.statement_context()->source_offset, 0u);
}

TEST(DatabaseDurabilityTest, JournaledExecutionMatchesUnjournaled) {
  auto run = [](DurabilityMode mode) {
    MemEnv env;
    DatabaseOptions options;
    options.env = &env;
    options.durability = mode;
    auto db = Database::Open("/db", options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    auto results = (*db)->ExecuteScript(
        "create persistent emp (name = c8, sal = i4);"
        "append to emp (name = \"ada\", sal = 100);"
        "append to emp (name = \"bob\", sal = 200);"
        "range of e is emp;"
        "replace e (sal = e.sal + 10) where e.name = \"ada\";"
        "retrieve (e.name, e.sal) sort by name");
    EXPECT_TRUE(results.ok()) << results.status().ToString();
    return results.ok() ? results->back().result.ToString() : std::string();
  };
  std::string off = run(DurabilityMode::kOff);
  EXPECT_EQ(run(DurabilityMode::kJournal), off);
  EXPECT_EQ(run(DurabilityMode::kJournalSync), off);
  EXPECT_FALSE(off.empty());
}

TEST(DatabaseDurabilityTest, FailedStatementRollsBackAndReportsContext) {
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  options.durability = DurabilityMode::kJournal;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Execute("create parts (id = i4)").ok());
  ASSERT_TRUE((*db)->Execute("append to parts (id = 1)").ok());

  // Statement 2 fails after statement 1 mutated: the script error names
  // statement 2 and statement 1's append stays committed.
  Status s = (*db)
                 ->ExecuteScript(
                     "append to parts (id = 2);"
                     "append to nonexistent (id = 3)")
                 .status();
  ASSERT_FALSE(s.ok());
  ASSERT_NE(s.statement_context(), nullptr);
  EXPECT_EQ(s.statement_context()->statement_index, 2);

  ASSERT_TRUE((*db)->Execute("range of p is parts").ok());
  auto rows = (*db)->Query("retrieve (p.id)");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->num_rows(), 2u);
}

}  // namespace
}  // namespace tdb
