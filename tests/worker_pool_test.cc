// Tests of the morsel-parallelism layer, bottom-up:
//
//   * WorkerPool — the id contract (body(id) exactly once per id in
//     [0, n)), the inline single-worker path, and the nested-Run fallback
//     that keeps correctness independent of helper availability;
//   * ResolveExecThreads — the full precedence chain (test override >
//     per-database option > TDB_EXEC_THREADS > 1) and the [1, 64] clamp;
//   * CutScanChunks — page-range tiling of linear-scan stores in the
//     serial visit order, the cursor fallback for directory-bearing
//     organizations, empty-store skipping, and history-after-primary
//     ordering on two-level relations;
//   * end-to-end determinism — a skewed database (one giant store, tiny
//     and empty neighbors) where rows, per-file IoCounters, and analyzed
//     per-node plan stats must be byte-identical at 1, 2, 4, and 8
//     executor threads, and per-Database exec options must not change
//     results.

#include "exec/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "env/env.h"
#include "exec/morsel.h"
#include "exec/version_source.h"
#include "storage/io_stats.h"
#include "util/stringx.h"

namespace tdb {
namespace {

// ---- WorkerPool: the id contract ----

TEST(WorkerPoolTest, RunCoversEveryIdExactlyOnce) {
  for (int workers : {2, 3, 8, 16}) {
    std::vector<std::atomic<int>> hits(workers);
    for (auto& h : hits) h = 0;
    WorkerPool::Shared().Run(workers,
                             [&](int id) { hits[id].fetch_add(1); });
    for (int id = 0; id < workers; ++id) {
      EXPECT_EQ(hits[id].load(), 1) << "id " << id << " of " << workers;
    }
  }
}

TEST(WorkerPoolTest, SingleWorkerRunsInlineOnTheCaller) {
  std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  WorkerPool::Shared().Run(1, [&](int id) {
    EXPECT_EQ(id, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(WorkerPoolTest, NestedRunFallsBackInline) {
  // While an outer Run owns the pool, an inner Run must execute every id
  // on the thread that issued it — never deadlock, never drop an id.
  constexpr int kOuter = 2;
  constexpr int kInner = 3;
  std::atomic<int> inner_hits[kOuter][kInner] = {};
  WorkerPool::Shared().Run(kOuter, [&](int outer) {
    std::thread::id outer_thread = std::this_thread::get_id();
    WorkerPool::Shared().Run(kInner, [&, outer](int inner) {
      EXPECT_EQ(std::this_thread::get_id(), outer_thread);
      inner_hits[outer][inner].fetch_add(1);
    });
  });
  for (int o = 0; o < kOuter; ++o) {
    for (int i = 0; i < kInner; ++i) {
      EXPECT_EQ(inner_hits[o][i].load(), 1) << o << "/" << i;
    }
  }
}

TEST(WorkerPoolTest, RepeatedRunsKeepTheContract) {
  // Helpers park between runs; the epoch guard must keep stale helpers
  // out of new work.  Hammer the pool and check coverage every round.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    WorkerPool::Shared().Run(4, [&](int id) { sum.fetch_add(id + 1); });
    ASSERT_EQ(sum.load(), 1 + 2 + 3 + 4) << "round " << round;
  }
}

// ---- ResolveExecThreads: precedence and clamping ----

class ResolveExecThreadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* env = std::getenv("TDB_EXEC_THREADS");
    if (env != nullptr) saved_env_ = env;
    ::unsetenv("TDB_EXEC_THREADS");
    SetExecThreadsForTest(std::nullopt);
  }
  void TearDown() override {
    if (saved_env_.has_value()) {
      ::setenv("TDB_EXEC_THREADS", saved_env_->c_str(), 1);
    } else {
      ::unsetenv("TDB_EXEC_THREADS");
    }
    SetExecThreadsForTest(std::nullopt);
  }
  std::optional<std::string> saved_env_;
};

TEST_F(ResolveExecThreadsTest, DefaultIsSingleThreaded) {
  EXPECT_EQ(ResolveExecThreads(0), 1);
  EXPECT_EQ(ResolveExecThreads(-3), 1);  // non-positive option = unset
}

TEST_F(ResolveExecThreadsTest, EnvParsesAndClamps) {
  ::setenv("TDB_EXEC_THREADS", "3", 1);
  EXPECT_EQ(ResolveExecThreads(0), 3);
  ::setenv("TDB_EXEC_THREADS", "100", 1);
  EXPECT_EQ(ResolveExecThreads(0), 64);
  ::setenv("TDB_EXEC_THREADS", "0", 1);
  EXPECT_EQ(ResolveExecThreads(0), 1);
  ::setenv("TDB_EXEC_THREADS", "-5", 1);
  EXPECT_EQ(ResolveExecThreads(0), 1);
  // Malformed values are ignored, not clamped.
  ::setenv("TDB_EXEC_THREADS", "abc", 1);
  EXPECT_EQ(ResolveExecThreads(0), 1);
  ::setenv("TDB_EXEC_THREADS", "7x", 1);
  EXPECT_EQ(ResolveExecThreads(0), 1);
}

TEST_F(ResolveExecThreadsTest, OptionBeatsEnv) {
  ::setenv("TDB_EXEC_THREADS", "3", 1);
  EXPECT_EQ(ResolveExecThreads(2), 2);
  EXPECT_EQ(ResolveExecThreads(100), 64);  // option is clamped too
  EXPECT_EQ(ResolveExecThreads(0), 3);     // unset option falls to env
}

TEST_F(ResolveExecThreadsTest, TestOverrideBeatsEverything) {
  ::setenv("TDB_EXEC_THREADS", "3", 1);
  SetExecThreadsForTest(5);
  EXPECT_EQ(ResolveExecThreads(2), 5);
  SetExecThreadsForTest(999);
  EXPECT_EQ(ResolveExecThreads(2), 64);
  SetExecThreadsForTest(0);
  EXPECT_EQ(ResolveExecThreads(2), 1);
  SetExecThreadsForTest(std::nullopt);
  EXPECT_EQ(ResolveExecThreads(2), 2);  // restored
}

// ---- CutScanChunks: the dispatch units of a parallel scan ----

class CutScanChunksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  Relation* Rel(const std::string& name) {
    auto rel = db_->GetRelation(name);
    EXPECT_TRUE(rel.ok()) << rel.status().ToString();
    return rel.ok() ? *rel : nullptr;
  }

  /// A heap relation with enough pages that chunk_pages = 2 cuts several
  /// chunks (the c100 pad keeps tuples-per-page low).
  void MakePaddedHeap(const std::string& name, int rows) {
    Exec("create persistent interval " + name +
         " (id = i4, v = i4, pad = c100)");
    for (int i = 0; i < rows; ++i) {
      Exec(StrPrintf("append to %s (id = %d, v = %d)", name.c_str(), i,
                     i * 10));
    }
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(CutScanChunksTest, PageRangeChunksTileLinearStores) {
  MakePaddedHeap("r", 60);
  Relation* rel = Rel("r");
  ASSERT_NE(rel, nullptr);
  const uint32_t pages = rel->primary()->page_count();
  ASSERT_GE(pages, 4u);

  auto chunks = CutScanChunks(rel, /*current_only=*/false, 2);
  ASSERT_GE(chunks.size(), 2u);
  uint32_t expect_begin = 0;
  for (const ScanChunk& c : chunks) {
    EXPECT_EQ(c.file, rel->primary());
    EXPECT_FALSE(c.in_history);
    EXPECT_FALSE(c.use_cursor);
    EXPECT_EQ(c.begin, expect_begin);  // contiguous, ascending, disjoint
    EXPECT_GT(c.end, c.begin);
    EXPECT_LE(c.end - c.begin, 2u);
    expect_begin = c.end;
  }
  EXPECT_EQ(expect_begin, pages);  // full coverage, nothing beyond

  // chunk_pages = 0 degrades to single-page chunks, never an empty cut.
  auto fine = CutScanChunks(rel, false, 0);
  EXPECT_EQ(fine.size(), pages);
}

TEST_F(CutScanChunksTest, DirectoryOrganizationsFallBackToCursor) {
  MakePaddedHeap("r", 40);
  Exec("modify r to isam on id where fillfactor = 100");
  Relation* rel = Rel("r");
  ASSERT_NE(rel, nullptr);
  auto chunks = CutScanChunks(rel, false, 2);
  // ISAM scans skip directory pages, so the store cannot be cut by page
  // number: one whole-store cursor chunk.
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(chunks[0].use_cursor);
  EXPECT_EQ(chunks[0].file, rel->primary());
}

TEST_F(CutScanChunksTest, EmptyStoreYieldsNoChunks) {
  Exec("create persistent interval r (id = i4, v = i4)");
  Relation* rel = Rel("r");
  ASSERT_NE(rel, nullptr);
  EXPECT_TRUE(CutScanChunks(rel, false, 2).empty());
}

TEST_F(CutScanChunksTest, HistoryChunksFollowPrimaryInVisitOrder) {
  MakePaddedHeap("r", 40);
  Exec("range of x is r");
  Exec("modify r to twolevel hash on id where fillfactor = 100, "
       "history = simple");
  for (int round = 0; round < 3; ++round) {
    db_->AdvanceSeconds(1000);
    Exec("replace x (v = x.v + 1)");
  }
  Relation* rel = Rel("r");
  ASSERT_NE(rel, nullptr);
  ASSERT_TRUE(rel->two_level());
  ASSERT_NE(rel->history(), nullptr);
  ASSERT_GT(rel->history()->page_count(), 0u);

  auto chunks = CutScanChunks(rel, /*current_only=*/false, 2);
  // All primary chunks strictly precede all history chunks — the serial
  // scan's visit order, which chunk-order merging relies on.
  bool seen_history = false;
  size_t history_chunks = 0;
  for (const ScanChunk& c : chunks) {
    if (c.in_history) {
      seen_history = true;
      ++history_chunks;
      EXPECT_EQ(c.file, static_cast<StorageFile*>(rel->history()));
      EXPECT_FALSE(c.use_cursor);  // history heap is linear
    } else {
      EXPECT_FALSE(seen_history) << "primary chunk after a history chunk";
    }
  }
  EXPECT_GT(history_chunks, 0u);

  // current_only drops the history store entirely.
  for (const ScanChunk& c : CutScanChunks(rel, /*current_only=*/true, 2)) {
    EXPECT_FALSE(c.in_history);
  }
}

// ---- end-to-end determinism on a skewed database ----

/// Masks wall-clock times in an `explain analyze` rendering, leaving
/// structure, loops, rows, and per-node IoCounters for byte comparison.
std::string MaskTimes(const std::string& text) {
  static const std::regex kTime("time=[0-9]+\\.[0-9]{3}ms");
  return std::regex_replace(text, kTime, "time=*");
}

/// Renders the registry's per-file counters for byte comparison.
std::string CountersString(Database* db) {
  std::string out;
  for (const auto& [name, c] : db->io()->by_file()) {
    out += name;
    for (int i = 0; i < kNumIoCategories; ++i) {
      out += StrPrintf(" %s=%llu/%llu", IoCategoryName(IoCategory(i)),
                       static_cast<unsigned long long>(c->reads[i]),
                       static_cast<unsigned long long>(c->writes[i]));
    }
    out += "\n";
  }
  return out;
}

class ThreadDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    // Skewed morsel distribution: one giant heap (many chunks), one tiny
    // relation (a fraction of a chunk), and one empty relation (zero
    // chunks) — the worst case for static partitioning, handled here by
    // work-stealing over the chunk list.
    Exec("create persistent interval giant (id = i4, v = i4, pad = c100)");
    Exec("create persistent interval tiny (id = i4, v = i4)");
    Exec("create persistent interval empty (id = i4, v = i4)");
    Exec("range of g is giant");
    Exec("range of t is tiny");
    Exec("range of e is empty");
    for (int i = 0; i < 300; ++i) {
      Exec(StrPrintf("append to giant (id = %d, v = %d)", i, i % 50));
    }
    for (int i = 0; i < 3; ++i) {
      Exec(StrPrintf("append to tiny (id = %d, v = %d)", i * 100, i));
    }
    db_->AdvanceSeconds(60);
  }

  void TearDown() override {
    SetExecThreadsForTest(std::nullopt);
    SetVectorExecEnabledForTest(std::nullopt);
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  /// Runs `text` and returns (rows + io counters + masked analyze) as one
  /// comparable blob.
  std::string Observe(const std::string& text) {
    db_->io()->ResetAll();
    auto r = db_->Execute(text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "<error>";
    std::string blob = r->result.ToString(TimeResolution::kSecond) +
                       StrPrintf("(%zu rows)\n", r->result.num_rows());
    blob += CountersString(db_.get());
    auto a = db_->Execute("explain analyze " + text);
    EXPECT_TRUE(a.ok()) << a.status().ToString();
    if (!a.ok()) return "<error>";
    for (const auto& row : a->result.rows) {
      blob += row[0].AsString() + "\n";
    }
    return MaskTimes(blob);
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(ThreadDeterminismTest, SkewedScansAreIdenticalAtEveryThreadCount) {
  const std::string queries[] = {
      "retrieve (g.id, g.v) where g.v < 7",
      "retrieve (g.id) where g.v = 13 and g.id > 100",
      "retrieve (t.id, t.v)",
      "retrieve (e.id)",                        // zero chunks
      "retrieve (g.id, t.v) where g.id = t.id"  // giant x tiny join
  };
  SetVectorExecEnabledForTest(true);
  for (const std::string& q : queries) {
    SCOPED_TRACE(q);
    // Warm-up pins the single-frame pagers' resident pages so every
    // measured run starts from the same buffer state.
    ASSERT_TRUE(db_->Execute(q).ok());
    std::string base;
    for (int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE(testing::Message() << threads << " threads");
      SetExecThreadsForTest(threads);
      std::string blob = Observe(q);
      if (threads == 1) {
        base = blob;
      } else {
        EXPECT_EQ(blob, base);
      }
    }
    SetExecThreadsForTest(std::nullopt);
  }
}

TEST_F(ThreadDeterminismTest, UpdatesAndHistoryStayDeterministic) {
  // Pile history versions onto the giant relation, then sweep again: the
  // history pages multiply the chunk count and every version qualifies.
  for (int round = 0; round < 2; ++round) {
    db_->AdvanceSeconds(1000);
    Exec("replace g (v = g.v + 1) where g.id < 150");
  }
  db_->AdvanceSeconds(60);
  SetVectorExecEnabledForTest(true);
  ASSERT_TRUE(db_->Execute("retrieve (g.id, g.v) where g.v < 9").ok());
  std::string base;
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    SetExecThreadsForTest(threads);
    std::string blob = Observe("retrieve (g.id, g.v) where g.v < 9");
    if (threads == 1) {
      base = blob;
    } else {
      EXPECT_EQ(blob, base);
    }
  }
}

// ---- per-Database exec options ----

TEST(ExecOptionsTest, PerDatabaseOptionsDoNotChangeResults) {
  auto build = [](Env* env, DatabaseOptions options) {
    options.env = env;
    auto db = Database::Open("/db", options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    auto d = std::move(db).value();
    auto exec = [&](const std::string& text) {
      auto r = d->Execute(text);
      ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    };
    exec("create persistent interval r (id = i4, v = i4, pad = c100)");
    exec("range of x is r");
    for (int i = 0; i < 120; ++i) {
      exec(StrPrintf("append to r (id = %d, v = %d)", i, i % 11));
    }
    d->AdvanceSeconds(60);
    return d;
  };
  auto rows = [](Database* db, const std::string& text) {
    auto r = db->Execute(text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return std::string("<error>");
    return r->result.ToString(TimeResolution::kSecond) +
           StrPrintf("(%zu rows)", r->result.num_rows());
  };

  MemEnv env_default, env_tuned;
  auto plain = build(&env_default, DatabaseOptions{});
  DatabaseOptions tuned;
  tuned.vector_exec = true;
  tuned.morsel_capacity = 7;  // tiny morsels: many batch boundaries
  tuned.exec_threads = 4;
  auto fancy = build(&env_tuned, tuned);

  const std::string queries[] = {
      "retrieve (x.id, x.v) where x.v < 4",
      "retrieve (x.v) where x.id > 57 and x.v != 2",
  };
  for (const std::string& q : queries) {
    SCOPED_TRACE(q);
    EXPECT_EQ(rows(plain.get(), q), rows(fancy.get(), q));
  }
}

}  // namespace
}  // namespace tdb
