// Storage test battery for the process-shared buffer pool (production
// storage mode).  Two halves:
//
//  1. Direct unit tests of the pool through the Pager surface: LRU victim
//     order, the pin rule (a pager's last returned frame survives foreign
//     eviction), dirty write-back on eviction, cross-relation frame
//     sharing, and a regression test that a stale frame pointer held
//     across a pool eviction trips the pager's generation check.
//
//  2. A differential battery over all eight paper test databases (four
//     database types x fillfactor 100/50) at 1, 2 and 4 exec threads:
//     the pool at per-file cap 1 must reproduce the paper's private
//     single-frame pager byte-for-byte — identical rendered rows AND
//     identical page-I/O measures for every applicable benchmark query.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "benchlib/workload.h"
#include "env/env.h"
#include "storage/pager.h"
#include "util/stringx.h"

namespace tdb {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  std::unique_ptr<Pager> Open(const std::string& name, BufferPool* pool,
                              IoCounters* counters) {
    StorageOptions sopts;
    sopts.pool = pool;
    auto pager = Pager::Open(&env_, "/" + name, counters, /*frames=*/1,
                             /*journal=*/nullptr, sopts);
    EXPECT_TRUE(pager.ok()) << pager.status().ToString();
    return std::move(pager).value();
  }

  /// Allocates `n` pages, stamps each with its page number, and flushes.
  void Seed(Pager* pager, int n) {
    for (int i = 0; i < n; ++i) {
      auto pno = pager->AllocatePage(IoCategory::kData);
      ASSERT_TRUE(pno.ok());
      auto frame = pager->ReadPage(*pno, IoCategory::kData);
      ASSERT_TRUE(frame.ok());
      (*frame)[0] = static_cast<uint8_t>(i + 1);
      pager->MarkDirty();
    }
    ASSERT_TRUE(pager->Flush().ok());
  }

  MemEnv env_;
  IoCounters counters_;
};

TEST_F(BufferPoolTest, LruEvictionOrder) {
  BufferPool::Options po;
  po.total_frames = 2;
  po.per_file_frames = 0;
  BufferPool pool(po);
  auto pager = Open("a", &pool, &counters_);
  Seed(pager.get(), 3);
  ASSERT_TRUE(pager->FlushAndDrop().ok());
  counters_.Reset();
  BufferPool::Stats base = pool.GetStats();

  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 2u);
  // Touch page 0 again: it becomes MRU (and pinned), page 1 becomes LRU.
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 2u);  // hit
  // Page 2 must evict the LRU frame (page 1), not the recently used page 0.
  ASSERT_TRUE(pager->ReadPage(2, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 3u);
  ASSERT_TRUE(pager->ReadPage(0, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 3u);  // page 0 survived
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kData).ok());
  EXPECT_EQ(counters_.TotalReads(), 4u);  // page 1 was the victim

  BufferPool::Stats s = pool.GetStats();
  EXPECT_EQ(s.hits - base.hits, 2u);
  EXPECT_EQ(s.misses - base.misses, 4u);
  EXPECT_GE(s.evictions - base.evictions, 2u);
}

TEST_F(BufferPoolTest, PinnedFrameSurvivesForeignEviction) {
  BufferPool::Options po;
  po.total_frames = 2;
  po.per_file_frames = 0;
  BufferPool pool(po);
  IoCounters bcount;
  auto a = Open("a", &pool, &counters_);
  auto b = Open("b", &pool, &bcount);
  Seed(a.get(), 2);
  Seed(b.get(), 3);
  ASSERT_TRUE(a->FlushAndDrop().ok());
  ASSERT_TRUE(b->FlushAndDrop().ok());
  BufferPool::Stats base = pool.GetStats();

  auto af = a->ReadPage(0, IoCategory::kData);
  ASSERT_TRUE(af.ok());
  // b fills the rest of the pool and keeps reading: a's frame is pinned
  // (it is a's most recently returned pointer), so the pool must
  // overflow-allocate rather than steal it.
  ASSERT_TRUE(b->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(b->ReadPage(1, IoCategory::kData).ok());
  ASSERT_TRUE(b->ReadPage(2, IoCategory::kData).ok());
  EXPECT_EQ(pool.GetStats().foreign_evictions, base.foreign_evictions);
  EXPECT_EQ((*af)[0], 1u);  // the pinned frame's bytes never moved

  // Once a moves on to another page, its old frame is unpinned and fair
  // game for b.
  ASSERT_TRUE(a->ReadPage(1, IoCategory::kData).ok());
  uint64_t evictions_before = pool.GetStats().foreign_evictions;
  for (uint32_t pno = 0; pno < 3; ++pno) {
    ASSERT_TRUE(b->ReadPage(pno, IoCategory::kData).ok());
  }
  EXPECT_GT(pool.GetStats().foreign_evictions, evictions_before);
}

TEST_F(BufferPoolTest, DirtyWriteBackOnEviction) {
  BufferPool::Options po;
  po.total_frames = 4;
  po.per_file_frames = 1;  // paper discipline: self-evict on every switch
  BufferPool pool(po);
  auto pager = Open("a", &pool, &counters_);
  Seed(pager.get(), 2);
  ASSERT_TRUE(pager->FlushAndDrop().ok());
  counters_.Reset();
  BufferPool::Stats base = pool.GetStats();

  auto frame = pager->ReadPage(0, IoCategory::kData);
  ASSERT_TRUE(frame.ok());
  (*frame)[7] = 0xCD;
  pager->MarkDirty();
  EXPECT_EQ(counters_.TotalWrites(), 0u);  // buffered
  ASSERT_TRUE(pager->ReadPage(1, IoCategory::kData).ok());  // evicts page 0
  EXPECT_EQ(counters_.TotalWrites(), 1u);
  EXPECT_EQ(pool.GetStats().write_backs - base.write_backs, 1u);

  // The write-back reached the file: reading page 0 again sees the byte.
  auto again = pager->ReadPage(0, IoCategory::kData);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)[7], 0xCD);
}

TEST_F(BufferPoolTest, CapOneMatchesPrivateSingleFrameCounters) {
  // The same access sequence through a private one-frame pager and through
  // the pool at per-file cap 1 must produce identical IoCounters.
  auto run = [&](bool pooled) {
    MemEnv env;
    IoCounters counters;
    std::unique_ptr<BufferPool> pool;
    StorageOptions sopts;
    if (pooled) {
      BufferPool::Options po;
      po.total_frames = 8;
      po.per_file_frames = 1;
      pool = std::make_unique<BufferPool>(po);
      sopts.pool = pool.get();
    }
    auto pager =
        Pager::Open(&env, "/a", &counters, 1, nullptr, sopts).value();
    for (int i = 0; i < 4; ++i) {
      auto frame = pager->AllocatePage(IoCategory::kData);
      EXPECT_TRUE(frame.ok());
      pager->MarkDirty();
    }
    EXPECT_TRUE(pager->Flush().ok());
    // Ping-pong reads with a dirtying pass: every switch is a miss, every
    // dirty eviction a write.
    for (uint32_t pno : {0u, 1u, 0u, 2u, 2u, 3u, 1u}) {
      auto frame = pager->ReadPage(pno, IoCategory::kData);
      EXPECT_TRUE(frame.ok());
      if (pno % 2 == 0) pager->MarkDirty();
    }
    EXPECT_TRUE(pager->Flush().ok());
    return std::make_pair(counters.TotalReads(), counters.TotalWrites());
  };
  auto paper = run(false);
  auto pooled = run(true);
  EXPECT_EQ(paper.first, pooled.first);
  EXPECT_EQ(paper.second, pooled.second);
}

TEST_F(BufferPoolTest, CrossRelationSharing) {
  // One pool spans two files: both stay resident together (uncapped), and
  // each file's misses land on its own IoCounters.
  BufferPool::Options po;
  po.total_frames = 8;
  po.per_file_frames = 0;
  BufferPool pool(po);
  IoCounters bcount;
  auto a = Open("a", &pool, &counters_);
  auto b = Open("b", &pool, &bcount);
  Seed(a.get(), 2);
  Seed(b.get(), 2);
  ASSERT_TRUE(a->FlushAndDrop().ok());
  ASSERT_TRUE(b->FlushAndDrop().ok());
  counters_.Reset();
  bcount.Reset();
  BufferPool::Stats base = pool.GetStats();

  for (int round = 0; round < 3; ++round) {
    for (uint32_t pno = 0; pno < 2; ++pno) {
      ASSERT_TRUE(a->ReadPage(pno, IoCategory::kData).ok());
      ASSERT_TRUE(b->ReadPage(pno, IoCategory::kData).ok());
    }
  }
  // First round misses, later rounds all hit — interleaving two files
  // never thrashes a shared pool (it would thrash two private 1-frame
  // pagers 12 times).
  EXPECT_EQ(counters_.TotalReads(), 2u);
  EXPECT_EQ(bcount.TotalReads(), 2u);
  BufferPool::Stats s = pool.GetStats();
  EXPECT_EQ(s.misses - base.misses, 4u);
  EXPECT_EQ(s.hits - base.hits, 8u);
  EXPECT_EQ(s.resident, 4u);
}

TEST_F(BufferPoolTest, StalePointerAcrossEvictionTripsGenerationCheck) {
  // Regression: holding a frame pointer (or a record slice cut from it)
  // across a pool eviction is a use-after-evict.  The pager's generation
  // counter must tick on every eviction so RecordBatch's debug check can
  // catch the stale slice.
  BufferPool::Options po;
  po.total_frames = 2;
  po.per_file_frames = 0;
  BufferPool pool(po);
  IoCounters bcount;
  auto a = Open("a", &pool, &counters_);
  auto b = Open("b", &pool, &bcount);
  Seed(a.get(), 2);
  Seed(b.get(), 4);
  ASSERT_TRUE(a->FlushAndDrop().ok());
  ASSERT_TRUE(b->FlushAndDrop().ok());

  ASSERT_TRUE(a->ReadPage(0, IoCategory::kData).ok());
  ASSERT_TRUE(a->ReadPage(1, IoCategory::kData).ok());  // page 0 unpinned
  uint64_t gen = a->generation();
  // b storms the pool until a's unpinned frame is recycled.
  for (uint32_t pno = 0; pno < 4; ++pno) {
    ASSERT_TRUE(b->ReadPage(pno, IoCategory::kData).ok());
  }
  ASSERT_GT(pool.GetStats().foreign_evictions, 0u);
  // The foreign eviction invalidated a's outstanding pointers: generation
  // moved, so any slice snapshotted at `gen` now fails its validity check.
  EXPECT_NE(a->generation(), gen);
}

// ---------------------------------------------------------------------------
// Differential battery: pool at cap 1 vs the paper's private single frame,
// all eight paper databases, 1/2/4 exec threads.
// ---------------------------------------------------------------------------

struct QueryObservation {
  std::string text;
  uint64_t input_pages = 0;
  uint64_t output_pages = 0;
  uint64_t rows = 0;
  std::string rendering;
};

std::vector<QueryObservation> ObserveAll(bench::BenchmarkDb* bench) {
  std::vector<QueryObservation> out;
  for (int qnum = 1; qnum <= 12; ++qnum) {
    std::string text = bench->QueryText(qnum);
    if (text.empty()) continue;
    QueryObservation obs;
    obs.text = text;
    auto m = bench->RunQuery(qnum);
    EXPECT_TRUE(m.ok()) << text << " -> " << m.status().ToString();
    if (!m.ok()) continue;
    obs.input_pages = m->input_pages;
    obs.output_pages = m->output_pages;
    obs.rows = m->rows;
    auto r = bench->db()->Execute(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    if (r.ok()) {
      obs.rendering = r->result.ToString(TimeResolution::kSecond);
    }
    out.push_back(std::move(obs));
  }
  return out;
}

TEST(BufferPoolDifferentialTest, PoolAtCapOneMatchesPaperMode) {
  const DbType kTypes[] = {DbType::kStatic, DbType::kRollback,
                           DbType::kHistorical, DbType::kTemporal};
  for (DbType type : kTypes) {
    for (int fillfactor : {100, 50}) {
      for (int threads : {1, 2, 4}) {
        SCOPED_TRACE(testing::Message()
                     << DbTypeName(type) << " ff=" << fillfactor
                     << " threads=" << threads);
        bench::WorkloadConfig config;
        config.type = type;
        config.fillfactor = fillfactor;
        config.ntuples = 192;  // small paper database; all plans intact
        config.exec_threads = threads;

        auto paper = bench::BenchmarkDb::Create(config);
        ASSERT_TRUE(paper.ok()) << paper.status().ToString();

        bench::WorkloadConfig pooled_config = config;
        pooled_config.pool_frames = 64;
        pooled_config.pool_file_cap = 0;  // resolves to 1: paper parity
        auto pooled = bench::BenchmarkDb::Create(pooled_config);
        ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();

        ASSERT_TRUE((*paper)->UniformUpdateRound().ok());
        ASSERT_TRUE((*pooled)->UniformUpdateRound().ok());

        auto base = ObserveAll(paper->get());
        auto alt = ObserveAll(pooled->get());
        ASSERT_EQ(base.size(), alt.size());
        ASSERT_FALSE(base.empty());
        for (size_t i = 0; i < base.size(); ++i) {
          SCOPED_TRACE(base[i].text);
          EXPECT_EQ(base[i].input_pages, alt[i].input_pages);
          EXPECT_EQ(base[i].output_pages, alt[i].output_pages);
          EXPECT_EQ(base[i].rows, alt[i].rows);
          EXPECT_EQ(base[i].rendering, alt[i].rendering);
        }
      }
    }
  }
}

// An uncapped warm pool must still return byte-identical rows — only the
// I/O counts change (fewer reads, never more).
TEST(BufferPoolDifferentialTest, UncappedPoolChangesIoButNotRows) {
  bench::WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.ntuples = 192;
  auto paper = bench::BenchmarkDb::Create(config);
  ASSERT_TRUE(paper.ok());

  bench::WorkloadConfig pooled_config = config;
  pooled_config.pool_frames = 256;
  pooled_config.pool_file_cap = -1;  // uncapped
  auto pooled = bench::BenchmarkDb::Create(pooled_config);
  ASSERT_TRUE(pooled.ok());

  auto base = ObserveAll(paper->get());
  auto alt = ObserveAll(pooled->get());
  ASSERT_EQ(base.size(), alt.size());
  for (size_t i = 0; i < base.size(); ++i) {
    SCOPED_TRACE(base[i].text);
    EXPECT_EQ(base[i].rows, alt[i].rows);
    EXPECT_EQ(base[i].rendering, alt[i].rendering);
    EXPECT_LE(alt[i].input_pages, base[i].input_pages);
  }
}

}  // namespace
}  // namespace tdb
