// Unit tests of VersionSource: the per-variable access machinery over
// conventional and two-level relations, including index paths and the
// current_only optimization.

#include "exec/version_source.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/env.h"

namespace tdb {
namespace {

class VersionSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    options.start_time = TimePoint(100000);
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Exec("create persistent interval r (id = i4, v = i4, pad = c100)");
    for (int i = 0; i < 16; ++i) {
      Exec("append to r (id = " + std::to_string(i) + ", v = " +
           std::to_string(i * 10) + ")");
    }
    Exec("modify r to hash on id where fillfactor = 100");
    Exec("index on r is vi (v) with structure = hash, levels = 2");
    Exec("range of x is r");
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  Relation* Rel() {
    auto rel = db_->GetRelation("r");
    EXPECT_TRUE(rel.ok());
    return *rel;
  }

  /// Drains a source, returning the `v` attribute of every version.
  std::vector<int64_t> Drain(VersionSource* src) {
    std::vector<int64_t> out;
    while (true) {
      auto have = src->Next();
      EXPECT_TRUE(have.ok()) << have.status().ToString();
      if (!have.ok() || !*have) break;
      out.push_back(src->ref().attr(1).AsInt());
    }
    return out;
  }

  void UpdateRounds(int n) {
    for (int round = 0; round < n; ++round) {
      db_->AdvanceSeconds(1000);
      Exec("replace x (v = x.v + 1)");
    }
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(VersionSourceTest, ScanVisitsEveryVersion) {
  UpdateRounds(2);
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kScan;
  auto src = VersionSource::Create(Rel(), spec);
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(Drain(src->get()).size(), 16u * 5);  // 1 + 2 per round
}

TEST_F(VersionSourceTest, KeyedVisitsOneChain) {
  UpdateRounds(2);
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kKeyed;
  spec.key = Value::Int4(3);
  auto src = VersionSource::Create(Rel(), spec);
  ASSERT_TRUE(src.ok());
  auto versions = Drain(src->get());
  EXPECT_EQ(versions.size(), 5u);
  for (int64_t v : versions) {
    EXPECT_GE(v, 30);
    EXPECT_LE(v, 32);
  }
}

TEST_F(VersionSourceTest, IndexPathFetchesThroughEntries) {
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kIndexEq;
  spec.key = Value::Int4(70);
  spec.index = Rel()->FindIndex("v");
  ASSERT_NE(spec.index, nullptr);
  auto src = VersionSource::Create(Rel(), spec);
  ASSERT_TRUE(src.ok());
  auto versions = Drain(src->get());
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0], 70);
}

TEST_F(VersionSourceTest, KeyedOnHeapIsRejected) {
  Exec("create h (id = i4)");
  auto rel = db_->GetRelation("h");
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kKeyed;
  spec.key = Value::Int4(1);
  EXPECT_FALSE(VersionSource::Create(*rel, spec).ok());
}

TEST_F(VersionSourceTest, IndexWithoutIndexIsInternalError) {
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kIndexEq;
  spec.key = Value::Int4(1);
  EXPECT_FALSE(VersionSource::Create(Rel(), spec).ok());
}

class TwoLevelSourceTest : public VersionSourceTest {
 protected:
  void SetUp() override {
    VersionSourceTest::SetUp();
    Exec("modify r to twolevel hash on id where fillfactor = 100, "
         "history = clustered");
    UpdateRounds(3);
  }
};

TEST_F(TwoLevelSourceTest, ScanCoversBothStores) {
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kScan;
  auto src = VersionSource::Create(Rel(), spec);
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(Drain(src->get()).size(), 16u * 7);
}

TEST_F(TwoLevelSourceTest, CurrentOnlySkipsHistory) {
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kScan;
  spec.current_only = true;
  auto src = VersionSource::Create(Rel(), spec);
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(Drain(src->get()).size(), 16u);
}

TEST_F(TwoLevelSourceTest, KeyedWalksAnchorChain) {
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kKeyed;
  spec.key = Value::Int4(5);
  auto src = VersionSource::Create(Rel(), spec);
  ASSERT_TRUE(src.ok());
  auto versions = Drain(src->get());
  EXPECT_EQ(versions.size(), 7u);
  // The in_history flag distinguishes the stores.
  spec.current_only = true;
  auto cur = VersionSource::Create(Rel(), spec);
  EXPECT_EQ(Drain(cur->get()).size(), 1u);
}

TEST_F(TwoLevelSourceTest, IndexEntriesSpanStores) {
  // Each replace moved the old current version to history; the 2-level
  // index must reach both.
  AccessSpec spec;
  spec.kind = AccessSpec::Kind::kIndexEq;
  spec.key = Value::Int4(52);  // id 5 after two rounds
  spec.index = Rel()->FindIndex("v");
  ASSERT_NE(spec.index, nullptr);
  auto src = VersionSource::Create(Rel(), spec);
  ASSERT_TRUE(src.ok());
  auto versions = Drain(src->get());
  ASSERT_EQ(versions.size(), 2u);  // stamped original + correction
  EXPECT_EQ(versions[0], 52);
  EXPECT_EQ(versions[1], 52);
}

}  // namespace
}  // namespace tdb
