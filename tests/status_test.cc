#include "util/status.h"

#include <gtest/gtest.h>

namespace tdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  } cases[] = {
      {Status::Invalid("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists},
      {Status::IOError("d"), StatusCode::kIOError},
      {Status::Corruption("e"), StatusCode::kCorruption},
      {Status::NotSupported("f"), StatusCode::kNotSupported},
      {Status::OutOfRange("g"), StatusCode::kOutOfRange},
      {Status::ParseError("h"), StatusCode::kParseError},
      {Status::BindError("i"), StatusCode::kBindError},
      {Status::Internal("j"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "Not found: missing thing");
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STRNE(StatusCodeName(StatusCode::kInvalidArgument),
               StatusCodeName(StatusCode::kParseError));
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
}

TEST(StatusTest, StatementContextAttachesAndRenders) {
  Status s = Status::BindError("no such relation");
  EXPECT_EQ(s.statement_context(), nullptr);

  Status with = s.WithStatementContext({3, 42});
  ASSERT_NE(with.statement_context(), nullptr);
  EXPECT_EQ(with.statement_context()->statement_index, 3);
  EXPECT_EQ(with.statement_context()->source_offset, 42u);
  EXPECT_EQ(with.ToString(),
            "Bind error: no such relation (statement 3, offset 42)");
  // The original is untouched; code and message carry over.
  EXPECT_EQ(s.statement_context(), nullptr);
  EXPECT_EQ(with.code(), StatusCode::kBindError);
}

TEST(StatusTest, StatementContextFirstAttachWins) {
  Status inner = Status::ParseError("bad token").WithStatementContext({2, 10});
  Status outer = inner.WithStatementContext({5, 99});
  ASSERT_NE(outer.statement_context(), nullptr);
  EXPECT_EQ(outer.statement_context()->statement_index, 2);
  EXPECT_EQ(outer.statement_context()->source_offset, 10u);
}

TEST(StatusTest, StatementContextNoopOnOk) {
  Status ok = Status::OK().WithStatementContext({1, 0});
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.statement_context(), nullptr);
  EXPECT_EQ(ok.ToString(), "OK");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Invalid("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> bad = Status::Invalid("x");
  EXPECT_EQ(bad.value_or(7), 7);
  Result<int> good = 3;
  EXPECT_EQ(good.value_or(7), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("abc");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "abc");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

namespace helpers {

Status FailIf(bool fail) {
  if (fail) return Status::Invalid("asked to fail");
  return Status::OK();
}

Status Chained(bool fail) {
  TDB_RETURN_NOT_OK(FailIf(fail));
  return Status::OK();
}

Result<int> MakeInt(bool fail) {
  if (fail) return Status::NotFound("no int");
  return 5;
}

Result<int> UseAssign(bool fail) {
  TDB_ASSIGN_OR_RETURN(int v, MakeInt(fail));
  return v * 2;
}

}  // namespace helpers

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(helpers::Chained(false).ok());
  Status s = helpers::Chained(true);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(MacroTest, AssignOrReturnPropagates) {
  auto good = helpers::UseAssign(false);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 10);
  auto bad = helpers::UseAssign(true);
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tdb
