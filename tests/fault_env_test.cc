// Unit tests of the fault-injecting Env wrapper: operation counting, torn
// and short writes, transient sync failures, and the CrashAt freeze.

#include "env/fault_env.h"

#include <gtest/gtest.h>

#include "env/env.h"

namespace tdb {
namespace {

std::string Content(Env* env, const std::string& path) {
  auto r = env->ReadFileToString(path);
  return r.ok() ? *r : std::string("<missing>");
}

class FaultEnvTest : public ::testing::Test {
 protected:
  FaultEnvTest() : fault_(&base_) {}

  MemEnv base_;
  FaultEnv fault_;
};

TEST_F(FaultEnvTest, CountsOnlyMutatingOps) {
  auto file = fault_.OpenOrCreate("/f");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(fault_.op_count(), 0u);  // opening mutates nothing

  const uint8_t data[4] = {1, 2, 3, 4};
  ASSERT_TRUE((*file)->Write(0, data, 4).ok());
  EXPECT_EQ(fault_.op_count(), 1u);

  uint8_t buf[4];
  ASSERT_TRUE((*file)->Read(0, 4, buf).ok());
  ASSERT_TRUE((*file)->Size().ok());
  EXPECT_EQ(fault_.op_count(), 1u);  // reads are free

  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Truncate(0).ok());
  EXPECT_EQ(fault_.op_count(), 3u);

  ASSERT_TRUE(fault_.WriteStringToFile("/g", "x").ok());
  ASSERT_TRUE(fault_.RenameFile("/g", "/h").ok());
  ASSERT_TRUE(fault_.DeleteFile("/h").ok());
  EXPECT_EQ(fault_.op_count(), 6u);
}

TEST_F(FaultEnvTest, CrashAtFreezesFileImage) {
  auto file = fault_.OpenOrCreate("/f");
  ASSERT_TRUE(file.ok());
  const uint8_t a[3] = {'a', 'a', 'a'};
  const uint8_t b[3] = {'b', 'b', 'b'};
  ASSERT_TRUE((*file)->Write(0, a, 3).ok());

  fault_.CrashAt(1);
  EXPECT_FALSE((*file)->Write(0, b, 3).ok());
  EXPECT_TRUE(fault_.crashed());
  // Everything after the crash point fails too, whatever the operation.
  EXPECT_FALSE((*file)->Truncate(0).ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(fault_.DeleteFile("/f").ok());
  EXPECT_FALSE(fault_.WriteStringToFile("/g", "x").ok());
  // The frozen image still reads back, unchanged.
  EXPECT_EQ(Content(&base_, "/f"), "aaa");
  EXPECT_FALSE(base_.FileExists("/g"));
}

TEST_F(FaultEnvTest, TornWriteAppliesPrefixAtCrash) {
  auto file = fault_.OpenOrCreate("/f");
  ASSERT_TRUE(file.ok());
  const uint8_t a[4] = {'a', 'a', 'a', 'a'};
  ASSERT_TRUE((*file)->Write(0, a, 4).ok());

  fault_.CrashAt(1);
  fault_.set_torn_write_bytes(2);
  const uint8_t b[4] = {'b', 'b', 'b', 'b'};
  EXPECT_FALSE((*file)->Write(0, b, 4).ok());
  // First two bytes landed; the tail of the sector never did.
  EXPECT_EQ(Content(&base_, "/f"), "bbaa");

  // Only the first crashing write tears; later ops change nothing.
  const uint8_t c[4] = {'c', 'c', 'c', 'c'};
  EXPECT_FALSE((*file)->Write(0, c, 4).ok());
  EXPECT_EQ(Content(&base_, "/f"), "bbaa");
}

TEST_F(FaultEnvTest, FailSyncAtIsTransient) {
  auto file = fault_.OpenOrCreate("/f");
  ASSERT_TRUE(file.ok());
  fault_.FailSyncAt(2);

  ASSERT_TRUE((*file)->Sync().ok());       // 1st sync fine
  Status s = (*file)->Sync();              // 2nd fails once
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_TRUE((*file)->Sync().ok());       // and recovers
  EXPECT_FALSE(fault_.crashed());
}

TEST_F(FaultEnvTest, FailWriteShortPersistsPrefixOnce) {
  auto file = fault_.OpenOrCreate("/f");
  ASSERT_TRUE(file.ok());
  fault_.FailWriteShort(1, 2);

  const uint8_t a[4] = {'a', 'a', 'a', 'a'};
  Status s = (*file)->Write(0, a, 4);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(Content(&base_, "/f"), "aa");  // short write: prefix only

  // The fault is one-shot; retrying succeeds in full.
  ASSERT_TRUE((*file)->Write(0, a, 4).ok());
  EXPECT_EQ(Content(&base_, "/f"), "aaaa");
}

TEST_F(FaultEnvTest, TornWriteStringToFile) {
  fault_.CrashAt(0);
  fault_.set_torn_write_bytes(3);
  EXPECT_FALSE(fault_.WriteStringToFile("/f", "abcdef").ok());
  EXPECT_EQ(Content(&base_, "/f"), "abc");
}

TEST_F(FaultEnvTest, ResetClearsScriptAndCounters) {
  fault_.CrashAt(0);
  EXPECT_FALSE(fault_.WriteStringToFile("/f", "x").ok());
  ASSERT_TRUE(fault_.crashed());

  fault_.Reset();
  EXPECT_FALSE(fault_.crashed());
  EXPECT_EQ(fault_.op_count(), 0u);
  EXPECT_TRUE(fault_.WriteStringToFile("/f", "x").ok());
}

TEST_F(FaultEnvTest, ReadsPassThroughAfterCrash) {
  ASSERT_TRUE(base_.WriteStringToFile("/f", "visible").ok());
  fault_.CrashAt(0);
  EXPECT_FALSE(fault_.WriteStringToFile("/g", "x").ok());
  // Reads keep working so tests can inspect the frozen image.
  auto r = fault_.ReadFileToString("/f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "visible");
  EXPECT_TRUE(fault_.FileExists("/f"));
  auto listing = fault_.ListDir("/");
  EXPECT_TRUE(listing.ok());
}

}  // namespace
}  // namespace tdb
