#include "tquel/lexer.h"

#include <gtest/gtest.h>

namespace tdb {
namespace {

std::vector<Token> Lex(const std::string& text) {
  auto tokens = Lexer::Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? std::move(tokens).value() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].Is(TokenType::kEnd));
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Lex("retrieve Foo_1 _bar");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].IsKeyword("retrieve"));
  EXPECT_TRUE(tokens[0].IsKeyword("RETRIEVE"));  // case-insensitive
  EXPECT_EQ(tokens[1].text, "Foo_1");
  EXPECT_EQ(tokens[2].text, "_bar");
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  auto tokens = Lex("42 3.25 0");
  EXPECT_EQ(tokens[0].type, TokenType::kInt);
  EXPECT_EQ(tokens[0].int_val, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_val, 3.25);
  EXPECT_EQ(tokens[2].int_val, 0);
}

TEST(LexerTest, IntFollowedByDotIsNotFloat) {
  // "1.x" lexes as int, dot, ident (needed for nothing, but must not crash).
  auto tokens = Lex("1 . x");
  EXPECT_EQ(tokens[0].type, TokenType::kInt);
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
}

TEST(LexerTest, StringLiterals) {
  auto tokens = Lex("\"08:00 1/1/80\" \"\"");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "08:00 1/1/80");
  EXPECT_EQ(tokens[1].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lexer::Tokenize("\"abc").ok());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Lex("( ) , . ; = != < <= > >= + - * / % <>");
  TokenType expected[] = {
      TokenType::kLParen, TokenType::kRParen, TokenType::kComma,
      TokenType::kDot,    TokenType::kSemi,   TokenType::kEq,
      TokenType::kNe,     TokenType::kLt,     TokenType::kLe,
      TokenType::kGt,     TokenType::kGe,     TokenType::kPlus,
      TokenType::kMinus,  TokenType::kStar,   TokenType::kSlash,
      TokenType::kPercent, TokenType::kNe,    TokenType::kEnd};
  ASSERT_EQ(tokens.size(), std::size(expected));
  for (size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << i;
  }
}

TEST(LexerTest, NoSpacesNeeded) {
  auto tokens = Lex("h.id=500");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].text, "h");
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
  EXPECT_EQ(tokens[2].text, "id");
  EXPECT_EQ(tokens[3].type, TokenType::kEq);
  EXPECT_EQ(tokens[4].int_val, 500);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Lex("a /* comment * with stuff */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, UnterminatedCommentFails) {
  EXPECT_FALSE(Lexer::Tokenize("a /* b").ok());
}

TEST(LexerTest, StrayBangFails) {
  EXPECT_FALSE(Lexer::Tokenize("a ! b").ok());
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Lexer::Tokenize("a @ b").ok());
  EXPECT_FALSE(Lexer::Tokenize("a # b").ok());
}

TEST(LexerTest, PositionsAreByteOffsets) {
  auto tokens = Lex("ab  cd");
  EXPECT_EQ(tokens[0].pos, 0u);
  EXPECT_EQ(tokens[1].pos, 4u);
}

TEST(LexerTest, SlashDivisionVsComment) {
  auto tokens = Lex("a / b");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].type, TokenType::kSlash);
}

TEST(LexerTest, WholeBenchmarkQueryLexes) {
  auto tokens = Lex(
      "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
      "valid from start of (h overlap i) to end of (h extend i) "
      "where h.id = 500 and i.amount = 73700 "
      "when h overlap i as of \"now\"");
  EXPECT_GT(tokens.size(), 40u);
  EXPECT_TRUE(tokens.back().Is(TokenType::kEnd));
}

}  // namespace
}  // namespace tdb
