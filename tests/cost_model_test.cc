// Verifies the paper's quantitative claims as testable invariants on a
// scaled-down benchmark database (256 tuples instead of 1024; the growth
// law is size independent).

#include <gtest/gtest.h>

#include "benchlib/workload.h"
#include "storage/hash_file.h"
#include "util/stringx.h"

namespace tdb {
namespace bench {
namespace {

struct CostCase {
  DbType type;
  int fillfactor;
  double expected_rate;  // the paper's law: loading x (2 if temporal else 1)
};

class GrowthRate : public ::testing::TestWithParam<CostCase> {};

TEST_P(GrowthRate, MatchesPaperLaw) {
  const CostCase& c = GetParam();
  WorkloadConfig config;
  config.type = c.type;
  config.fillfactor = c.fillfactor;
  config.ntuples = 256;
  auto bench = BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();

  constexpr int kRounds = 8;
  // Q01 (hashed access) and Q07 (sequential scan): different access
  // methods, same growth rate — the paper's central observation.
  auto q1_0 = (*bench)->RunQuery(1);
  auto q7_0 = (*bench)->RunQuery(7);
  ASSERT_TRUE(q1_0.ok());
  ASSERT_TRUE(q7_0.ok());
  for (int round = 0; round < kRounds; ++round) {
    ASSERT_TRUE((*bench)->UniformUpdateRound().ok());
  }
  auto q1_n = (*bench)->RunQuery(1);
  auto q7_n = (*bench)->RunQuery(7);
  ASSERT_TRUE(q1_n.ok());
  ASSERT_TRUE(q7_n.ok());

  double q1_var = static_cast<double>(q1_0->input_pages - q1_0->fixed_pages);
  double q7_var = static_cast<double>(q7_0->input_pages - q7_0->fixed_pages);
  double q1_rate =
      (double(q1_n->input_pages) - double(q1_0->input_pages)) /
      (q1_var * kRounds);
  double q7_rate =
      (double(q7_n->input_pages) - double(q7_0->input_pages)) /
      (q7_var * kRounds);

  EXPECT_NEAR(q1_rate, c.expected_rate, 0.15) << "hashed access";
  EXPECT_NEAR(q7_rate, c.expected_rate, 0.15) << "sequential scan";
  // ...and they agree with each other (rate independent of access method).
  EXPECT_NEAR(q1_rate, q7_rate, 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Law, GrowthRate,
    ::testing::Values(CostCase{DbType::kRollback, 100, 1.0},
                      CostCase{DbType::kRollback, 50, 0.5},
                      CostCase{DbType::kHistorical, 100, 1.0},
                      CostCase{DbType::kTemporal, 100, 2.0},
                      CostCase{DbType::kTemporal, 50, 1.0}),
    [](const auto& info) {
      return std::string(DbTypeName(info.param.type)) + "_" +
             std::to_string(info.param.fillfactor);
    });

TEST(CostFormula, PredictsIntermediateCounts) {
  // Section 5.3: cost(n) = fixed + variable * (1 + rate * n).
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  config.ntuples = 256;
  auto bench = BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok());

  auto m0 = (*bench)->RunQuery(3);  // rollback scan
  ASSERT_TRUE(m0.ok());
  double fixed = static_cast<double>(m0->fixed_pages);
  double variable = static_cast<double>(m0->input_pages) - fixed;
  for (int n = 1; n <= 6; ++n) {
    ASSERT_TRUE((*bench)->UniformUpdateRound().ok());
    auto mn = (*bench)->RunQuery(3);
    ASSERT_TRUE(mn.ok());
    double predicted = fixed + variable * (1 + 2.0 * n);
    EXPECT_NEAR(static_cast<double>(mn->input_pages), predicted,
                predicted * 0.05)
        << "uc=" << n;
  }
}

TEST(SpaceGrowth, TemporalDoublesRollback) {
  // Fig. 5: temporal grows ~2x the pages per update of rollback.
  auto make = [](DbType type) {
    WorkloadConfig config;
    config.type = type;
    config.fillfactor = 100;
    config.ntuples = 256;
    return BenchmarkDb::Create(config);
  };
  auto rollback = make(DbType::kRollback);
  auto temporal = make(DbType::kTemporal);
  ASSERT_TRUE(rollback.ok());
  ASSERT_TRUE(temporal.ok());
  auto grow = [](BenchmarkDb* bench) -> uint64_t {
    uint64_t before = bench->PagesOf("h").value_or(0);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(bench->UniformUpdateRound().ok());
    return bench->PagesOf("h").value_or(0) - before;
  };
  uint64_t rollback_growth = grow(rollback->get());
  uint64_t temporal_growth = grow(temporal->get());
  EXPECT_NEAR(static_cast<double>(temporal_growth),
              2.0 * static_cast<double>(rollback_growth),
              0.1 * static_cast<double>(temporal_growth));
}

TEST(NonUniformDistribution, WeightedAverageEqualsUniform) {
  // Section 5.4 as an invariant: updating a single tuple repeatedly gives
  // the same tuple-weighted average access cost as uniform updates.
  constexpr int kTuples = 128;
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  config.ntuples = kTuples;

  auto uniform = BenchmarkDb::Create(config);
  auto hot = BenchmarkDb::Create(config);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(hot.ok());

  ASSERT_TRUE((*uniform)->UniformUpdateRound().ok());
  const int hot_id = 17;
  ASSERT_TRUE((*hot)->UpdateSingleTuple(hot_id, kTuples).ok());

  auto uniform_probe = (*uniform)->RunQuery(1);
  ASSERT_TRUE(uniform_probe.ok());

  // Weighted average over all tuples in the hot database: tuples sharing
  // the hot bucket pay the chain, the rest pay one page.
  auto rel = (*hot)->db()->GetRelation("bench_h");
  ASSERT_TRUE(rel.ok());
  uint32_t buckets = static_cast<HashFile*>((*rel)->primary())->nbuckets();
  auto hot_probe = (*hot)->RunText(
      StrPrintf("retrieve (h.id, h.seq) where h.id = %d", hot_id));
  auto cold_probe = (*hot)->RunText(
      StrPrintf("retrieve (h.id, h.seq) where h.id = %d", hot_id + 1));
  ASSERT_TRUE(hot_probe.ok());
  ASSERT_TRUE(cold_probe.ok());
  double per_bucket = double(kTuples) / buckets;
  double weighted =
      (per_bucket * double(hot_probe->input_pages) +
       double(kTuples - per_bucket) * double(cold_probe->input_pages)) /
      double(kTuples);
  EXPECT_NEAR(weighted, double(uniform_probe->input_pages), 0.01);
}

TEST(OutputCost, TemporaryRelationsOnly) {
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.ntuples = 256;
  auto bench = BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok());
  // Point and scan queries write nothing; the join queries write temps.
  for (int q : {1, 2, 3, 5, 7, 11}) {
    auto m = (*bench)->RunQuery(q);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->output_pages, 0u) << "Q" << q;
  }
  for (int q : {9, 10, 12}) {
    auto m = (*bench)->RunQuery(q);
    ASSERT_TRUE(m.ok());
    EXPECT_GT(m->output_pages, 0u) << "Q" << q;
  }
}

TEST(OutputRows, ConstantExceptVersionScans) {
  // Section 5.1: "The number of output tuples were kept constant regardless
  // of update count, except for queries Q01, Q02 and Q12."
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.ntuples = 256;
  auto bench = BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok());
  std::map<int, uint64_t> rows0;
  for (int q = 1; q <= 12; ++q) {
    rows0[q] = (*bench)->RunQuery(q)->rows;
  }
  for (int i = 0; i < 3; ++i) ASSERT_TRUE((*bench)->UniformUpdateRound().ok());
  for (int q = 1; q <= 12; ++q) {
    uint64_t rows = (*bench)->RunQuery(q)->rows;
    if (q == 1 || q == 2 || q == 12) {
      EXPECT_GT(rows, rows0[q]) << "Q" << q;
    } else {
      EXPECT_EQ(rows, rows0[q]) << "Q" << q;
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace tdb
