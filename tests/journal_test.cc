// Unit tests of the undo journal: record round-trips, pre-image dedup,
// rollback, recovery (including torn tails and idempotence).

#include "storage/journal.h"

#include <gtest/gtest.h>

#include "env/env.h"
#include "storage/page.h"

namespace tdb {
namespace {

std::vector<uint8_t> FilledPage(uint8_t fill) {
  return std::vector<uint8_t>(kPageSize, fill);
}

std::string FileContent(Env* env, const std::string& path) {
  auto r = env->ReadFileToString(path);
  return r.ok() ? *r : std::string("<missing>");
}

void WritePage(Env* env, const std::string& path, uint32_t pno, uint8_t fill) {
  auto file = env->OpenOrCreate(path);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> page = FilledPage(fill);
  ASSERT_TRUE(
      (*file)->Write(uint64_t{pno} * kPageSize, page.data(), page.size()).ok());
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.CreateDirIfMissing("/db").ok());
    auto j = Journal::Open(&env_, "/db", DurabilityMode::kJournal);
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    journal_ = std::move(j).value();
  }

  MemEnv env_;
  std::unique_ptr<Journal> journal_;
};

TEST(Crc32Test, MatchesKnownVector) {
  // The IEEE CRC-32 of "123456789" is the classic check value.
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data, sizeof(data)), 0xCBF43926u);
  // Chaining via the seed equals one pass over the concatenation.
  uint32_t first = Crc32(data, 4);
  EXPECT_EQ(Crc32(data + 4, 5, first), 0xCBF43926u);
}

TEST(DurabilityModeNameTest, AllModes) {
  EXPECT_STREQ(DurabilityModeName(DurabilityMode::kOff), "off");
  EXPECT_STREQ(DurabilityModeName(DurabilityMode::kJournal), "journal");
  EXPECT_STREQ(DurabilityModeName(DurabilityMode::kJournalSync),
               "journal+sync");
}

TEST_F(JournalTest, RollbackRestoresOverwrittenPage) {
  WritePage(&env_, "/db/r.dat", 0, 0xAA);
  auto file = env_.OpenOrCreate("/db/r.dat");
  ASSERT_TRUE(file.ok());

  ASSERT_TRUE(journal_->Begin().ok());
  ASSERT_TRUE(journal_->BeforePageWrite("/db/r.dat", file->get(), 0).ok());
  WritePage(&env_, "/db/r.dat", 0, 0xBB);  // the in-place overwrite
  ASSERT_TRUE(journal_->Rollback().ok());

  std::string content = FileContent(&env_, "/db/r.dat");
  ASSERT_EQ(content.size(), kPageSize);
  EXPECT_EQ(static_cast<uint8_t>(content[0]), 0xAA);
  EXPECT_EQ(static_cast<uint8_t>(content[kPageSize - 1]), 0xAA);
}

TEST_F(JournalTest, RollbackTruncatesPagesAppendedMidBatch) {
  WritePage(&env_, "/db/r.dat", 0, 0xAA);
  auto file = env_.OpenOrCreate("/db/r.dat");
  ASSERT_TRUE(file.ok());

  ASSERT_TRUE(journal_->Begin().ok());
  // Page 1 lies beyond the batch-start EOF: the hook must log only the
  // file size, and rollback must cut the file back to one page.
  ASSERT_TRUE(journal_->BeforePageWrite("/db/r.dat", file->get(), 1).ok());
  WritePage(&env_, "/db/r.dat", 1, 0xBB);
  ASSERT_TRUE(journal_->Rollback().ok());

  EXPECT_EQ(FileContent(&env_, "/db/r.dat").size(), kPageSize);
}

TEST_F(JournalTest, RollbackDeletesFilesCreatedMidBatch) {
  ASSERT_TRUE(journal_->Begin().ok());
  ASSERT_TRUE(journal_->BeforeFileRewrite("/db/new.dat").ok());
  WritePage(&env_, "/db/new.dat", 0, 0xCC);
  ASSERT_TRUE(env_.FileExists("/db/new.dat"));
  ASSERT_TRUE(journal_->Rollback().ok());
  EXPECT_FALSE(env_.FileExists("/db/new.dat"));
}

TEST_F(JournalTest, RollbackRestoresDeletedFile) {
  ASSERT_TRUE(env_.WriteStringToFile("/db/cat", "keep me").ok());
  ASSERT_TRUE(journal_->Begin().ok());
  ASSERT_TRUE(journal_->BeforeDeleteFile("/db/cat").ok());
  ASSERT_TRUE(env_.DeleteFile("/db/cat").ok());
  ASSERT_TRUE(journal_->Rollback().ok());
  EXPECT_EQ(FileContent(&env_, "/db/cat"), "keep me");
}

TEST_F(JournalTest, RollbackRestoresShrunkFile) {
  WritePage(&env_, "/db/r.dat", 0, 0xAA);
  WritePage(&env_, "/db/r.dat", 1, 0xBB);
  auto file = env_.OpenOrCreate("/db/r.dat");
  ASSERT_TRUE(file.ok());

  ASSERT_TRUE(journal_->Begin().ok());
  ASSERT_TRUE(journal_->BeforeTruncate("/db/r.dat", file->get(), 0).ok());
  ASSERT_TRUE((*file)->Truncate(0).ok());
  ASSERT_TRUE(journal_->Rollback().ok());

  std::string content = FileContent(&env_, "/db/r.dat");
  ASSERT_EQ(content.size(), 2 * kPageSize);
  EXPECT_EQ(static_cast<uint8_t>(content[0]), 0xAA);
  EXPECT_EQ(static_cast<uint8_t>(content[kPageSize]), 0xBB);
}

TEST_F(JournalTest, CommitEmptiesJournalAndKeepsNewContent) {
  WritePage(&env_, "/db/r.dat", 0, 0xAA);
  auto file = env_.OpenOrCreate("/db/r.dat");
  ASSERT_TRUE(file.ok());

  ASSERT_TRUE(journal_->Begin().ok());
  ASSERT_TRUE(journal_->BeforePageWrite("/db/r.dat", file->get(), 0).ok());
  WritePage(&env_, "/db/r.dat", 0, 0xBB);
  ASSERT_TRUE(journal_->Commit().ok());

  EXPECT_EQ(static_cast<uint8_t>(FileContent(&env_, "/db/r.dat")[0]), 0xBB);
  // A committed batch must leave nothing for recovery to undo.
  ASSERT_TRUE(Journal::Recover(&env_, "/db").ok());
  EXPECT_EQ(static_cast<uint8_t>(FileContent(&env_, "/db/r.dat")[0]), 0xBB);
}

TEST_F(JournalTest, PreImageLoggedOncePerPagePerBatch) {
  WritePage(&env_, "/db/r.dat", 0, 0xAA);
  auto file = env_.OpenOrCreate("/db/r.dat");
  ASSERT_TRUE(file.ok());

  ASSERT_TRUE(journal_->Begin().ok());
  ASSERT_TRUE(journal_->BeforePageWrite("/db/r.dat", file->get(), 0).ok());
  WritePage(&env_, "/db/r.dat", 0, 0xBB);
  // Second hook on the same page must not re-capture the now-dirty bytes.
  ASSERT_TRUE(journal_->BeforePageWrite("/db/r.dat", file->get(), 0).ok());
  WritePage(&env_, "/db/r.dat", 0, 0xCC);
  ASSERT_TRUE(journal_->Rollback().ok());

  EXPECT_EQ(static_cast<uint8_t>(FileContent(&env_, "/db/r.dat")[0]), 0xAA);
}

TEST_F(JournalTest, RecoverRollsBackUncommittedBatch) {
  WritePage(&env_, "/db/r.dat", 0, 0xAA);
  auto file = env_.OpenOrCreate("/db/r.dat");
  ASSERT_TRUE(file.ok());

  ASSERT_TRUE(journal_->Begin().ok());
  ASSERT_TRUE(journal_->BeforePageWrite("/db/r.dat", file->get(), 0).ok());
  WritePage(&env_, "/db/r.dat", 0, 0xBB);
  // Simulate a crash: drop the Journal object without Commit/Rollback.
  journal_.reset();

  ASSERT_TRUE(Journal::Recover(&env_, "/db").ok());
  EXPECT_EQ(static_cast<uint8_t>(FileContent(&env_, "/db/r.dat")[0]), 0xAA);
}

TEST_F(JournalTest, RecoveryIsIdempotent) {
  WritePage(&env_, "/db/r.dat", 0, 0xAA);
  auto file = env_.OpenOrCreate("/db/r.dat");
  ASSERT_TRUE(file.ok());

  ASSERT_TRUE(journal_->Begin().ok());
  ASSERT_TRUE(journal_->BeforePageWrite("/db/r.dat", file->get(), 0).ok());
  WritePage(&env_, "/db/r.dat", 0, 0xBB);
  // Preserve the journal image so we can re-run recovery as if a crash had
  // interrupted the first pass.
  std::string journal_image = FileContent(&env_, Journal::PathFor("/db"));
  journal_.reset();

  ASSERT_TRUE(Journal::Recover(&env_, "/db").ok());
  ASSERT_TRUE(
      env_.WriteStringToFile(Journal::PathFor("/db"), journal_image).ok());
  ASSERT_TRUE(Journal::Recover(&env_, "/db").ok());
  ASSERT_TRUE(Journal::Recover(&env_, "/db").ok());
  EXPECT_EQ(static_cast<uint8_t>(FileContent(&env_, "/db/r.dat")[0]), 0xAA);
}

TEST_F(JournalTest, RecoverIgnoresTornTail) {
  WritePage(&env_, "/db/r.dat", 0, 0xAA);
  ASSERT_TRUE(env_.WriteStringToFile("/db/side", "side file, long enough to "
                                                 "tear mid-record").ok());
  auto file = env_.OpenOrCreate("/db/r.dat");
  ASSERT_TRUE(file.ok());

  ASSERT_TRUE(journal_->Begin().ok());
  ASSERT_TRUE(journal_->BeforePageWrite("/db/r.dat", file->get(), 0).ok());
  WritePage(&env_, "/db/r.dat", 0, 0xBB);
  // The crash interrupts this append: its pre-image record will be torn,
  // and (by the WAL ordering) the rewrite it protects never happened.
  ASSERT_TRUE(journal_->BeforeFileRewrite("/db/side").ok());
  journal_.reset();

  std::string image = FileContent(&env_, Journal::PathFor("/db"));
  ASSERT_GT(image.size(), 7u);
  image.resize(image.size() - 7);
  ASSERT_TRUE(env_.WriteStringToFile(Journal::PathFor("/db"), image).ok());

  // Recovery must undo the intact prefix (the page image) and ignore the
  // torn tail, leaving the never-rewritten side file alone.
  ASSERT_TRUE(Journal::Recover(&env_, "/db").ok());
  EXPECT_EQ(static_cast<uint8_t>(FileContent(&env_, "/db/r.dat")[0]), 0xAA);
  EXPECT_EQ(FileContent(&env_, "/db/side"),
            "side file, long enough to tear mid-record");
}

TEST_F(JournalTest, RecoverNoJournalIsNoop) {
  MemEnv fresh;
  ASSERT_TRUE(fresh.CreateDirIfMissing("/other").ok());
  EXPECT_TRUE(Journal::Recover(&fresh, "/other").ok());
}

TEST_F(JournalTest, HooksAreNoopsOutsideBatch) {
  WritePage(&env_, "/db/r.dat", 0, 0xAA);
  auto file = env_.OpenOrCreate("/db/r.dat");
  ASSERT_TRUE(file.ok());
  // No Begin(): the hooks must succeed without journaling anything.
  ASSERT_TRUE(journal_->BeforePageWrite("/db/r.dat", file->get(), 0).ok());
  ASSERT_TRUE(journal_->BeforeFileRewrite("/db/r.dat").ok());
  EXPECT_FALSE(journal_->active());
}

}  // namespace
}  // namespace tdb
