// Property tests of the paper's append-only claim (Section 4): "all
// modification operations for rollback and temporal relations in this
// scheme are append only, so write-once optical disks can be utilized."
//
// We verify that under arbitrary random workloads, the only in-place byte
// changes ever made to a stored version are the single transaction-stop /
// valid-to stamp — no record is physically removed and no user data is
// overwritten.

#include <gtest/gtest.h>

#include <map>

#include "core/database.h"
#include "env/env.h"
#include "util/random.h"

namespace tdb {
namespace {

struct Snapshot {
  // tid (page<<16|slot) -> decoded row
  std::map<uint64_t, Row> rows;
};

uint64_t Key(const Tid& tid) {
  return (static_cast<uint64_t>(tid.page) << 16) | tid.slot;
}

Snapshot Capture(Relation* rel) {
  Snapshot snap;
  auto cur = rel->primary()->Scan();
  EXPECT_TRUE(cur.ok());
  while (true) {
    auto have = (*cur)->Next();
    EXPECT_TRUE(have.ok());
    if (!*have) break;
    auto row = DecodeRecord(rel->schema(), (*cur)->record().data(),
                            (*cur)->record().size());
    EXPECT_TRUE(row.ok());
    snap.rows[Key((*cur)->tid())] = std::move(*row);
  }
  return snap;
}

/// Checks `after` against `before`: every old record still exists, user
/// attributes unchanged, and at most the closing time attribute differs.
void CheckAppendOnly(const Schema& schema, const Snapshot& before,
                     const Snapshot& after) {
  for (const auto& [tid, old_row] : before.rows) {
    auto it = after.rows.find(tid);
    ASSERT_NE(it, after.rows.end()) << "version physically removed";
    const Row& new_row = it->second;
    for (size_t a = 0; a < schema.num_attrs(); ++a) {
      int ai = static_cast<int>(a);
      bool is_closing_stamp = ai == schema.tx_stop_index() ||
                              (HasValidTime(schema.db_type()) &&
                               ai == schema.valid_to_index());
      if (is_closing_stamp) continue;  // the one permitted in-place change
      EXPECT_TRUE(old_row[a].Equals(new_row[a]))
          << "attribute " << schema.attr(a).name << " mutated in place";
    }
    // The closing stamps may only move earlier (from forever), never widen.
    if (schema.tx_stop_index() >= 0) {
      size_t te = static_cast<size_t>(schema.tx_stop_index());
      EXPECT_LE(new_row[te].AsTime(), old_row[te].AsTime());
    }
  }
  EXPECT_GE(after.rows.size(), before.rows.size());
}

class AppendOnlyProperty
    : public ::testing::TestWithParam<std::tuple<DbType, uint64_t>> {};

TEST_P(AppendOnlyProperty, RandomWorkloadNeverRewritesHistory) {
  auto [type, seed] = GetParam();
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  options.start_time = TimePoint(100000);
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());

  std::string create = type == DbType::kRollback
                           ? "create persistent r (id = i4, v = i4)"
                           : "create persistent interval r (id = i4, v = i4)";
  ASSERT_TRUE((*db)->Execute(create).ok());
  ASSERT_TRUE((*db)->Execute("range of x is r").ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*db)
                    ->Execute("append to r (id = " + std::to_string(i) +
                              ", v = 0)")
                    .ok());
  }

  Random rng(seed);
  auto rel = (*db)->GetRelation("r");
  ASSERT_TRUE(rel.ok());
  Snapshot before = Capture(*rel);
  for (int step = 0; step < 60; ++step) {
    (*db)->AdvanceSeconds(100);
    int id = static_cast<int>(rng.Uniform(12));
    int action = static_cast<int>(rng.Uniform(3));
    std::string text;
    if (action == 0) {
      text = "replace x (v = x.v + 1) where x.id = " + std::to_string(id);
    } else if (action == 1) {
      text = "delete x where x.id = " + std::to_string(id);
    } else {
      text = "append to r (id = " + std::to_string(id) + ", v = -1)";
    }
    ASSERT_TRUE((*db)->Execute(text).ok()) << text;
    Snapshot after = Capture(*rel);
    CheckAppendOnly((*rel)->schema(), before, after);
    before = std::move(after);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AppendOnlyProperty,
    ::testing::Combine(::testing::Values(DbType::kRollback,
                                         DbType::kTemporal),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(DbTypeName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(AppendOnlyTest, StaticRelationsMayRewrite) {
  // Sanity check of the checker itself: static relations DO rewrite in
  // place, so the property must not hold there.
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE((*db)->Execute("create r (id = i4, v = i4)").ok());
  ASSERT_TRUE((*db)->Execute("append to r (id = 1, v = 0)").ok());
  ASSERT_TRUE((*db)->Execute("range of x is r").ok());
  auto rel = (*db)->GetRelation("r");
  Snapshot before = Capture(*rel);
  ASSERT_TRUE((*db)->Execute("replace x (v = 9)").ok());
  Snapshot after = Capture(*rel);
  ASSERT_EQ(before.rows.size(), 1u);
  ASSERT_EQ(after.rows.size(), 1u);
  EXPECT_FALSE(
      before.rows.begin()->second[1].Equals(after.rows.begin()->second[1]));
}

}  // namespace
}  // namespace tdb
