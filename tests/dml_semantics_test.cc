// Verifies the Section 4 update semantics version-by-version: what each
// append / delete / replace physically does for every database type.

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/env.h"

namespace tdb {
namespace {

class DmlSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    options.start_time = TimePoint(1000);
    options.auto_advance_seconds = 0;  // we control the clock explicitly
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  /// All stored versions of relation r (via a full rollback+valid sweep).
  std::vector<Row> AllVersions(const std::string& rel) {
    auto relation = db_->GetRelation(rel);
    EXPECT_TRUE(relation.ok());
    std::vector<Row> rows;
    auto cur = (*relation)->primary()->Scan();
    EXPECT_TRUE(cur.ok());
    while (true) {
      auto have = (*cur)->Next();
      EXPECT_TRUE(have.ok());
      if (!*have) break;
      auto row = DecodeRecord((*relation)->schema(), (*cur)->record().data(),
                              (*cur)->record().size());
      EXPECT_TRUE(row.ok());
      rows.push_back(std::move(*row));
    }
    return rows;
  }

  TimePoint T(int32_t s) { return TimePoint(s); }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(DmlSemanticsTest, StaticDeleteIsPhysical) {
  Exec("create r (id = i4)");
  Exec("append to r (id = 1)");
  Exec("range of x is r");
  Exec("delete x");
  EXPECT_TRUE(AllVersions("r").empty());
}

TEST_F(DmlSemanticsTest, RollbackAppendStampsTransactionTime) {
  Exec("create persistent r (id = i4)");
  db_->SetNow(T(5000));
  Exec("append to r (id = 1)");
  auto versions = AllVersions("r");
  ASSERT_EQ(versions.size(), 1u);
  const Schema& schema = (*db_->GetRelation("r"))->schema();
  EXPECT_EQ(versions[0][schema.tx_start_index()].AsTime(), T(5000));
  EXPECT_EQ(versions[0][schema.tx_stop_index()].AsTime(),
            TimePoint::Forever());
}

TEST_F(DmlSemanticsTest, RollbackDeleteStampsInPlace) {
  Exec("create persistent r (id = i4)");
  db_->SetNow(T(5000));
  Exec("append to r (id = 1)");
  Exec("range of x is r");
  db_->SetNow(T(6000));
  Exec("delete x");
  auto versions = AllVersions("r");
  ASSERT_EQ(versions.size(), 1u);  // nothing physically removed
  const Schema& schema = (*db_->GetRelation("r"))->schema();
  EXPECT_EQ(versions[0][schema.tx_stop_index()].AsTime(), T(6000));
}

TEST_F(DmlSemanticsTest, RollbackReplaceIsDeletePlusInsert) {
  Exec("create persistent r (id = i4, v = i4)");
  db_->SetNow(T(5000));
  Exec("append to r (id = 1, v = 10)");
  Exec("range of x is r");
  db_->SetNow(T(6000));
  Exec("replace x (v = 20)");
  auto versions = AllVersions("r");
  ASSERT_EQ(versions.size(), 2u);  // one new version per replace
  const Schema& schema = (*db_->GetRelation("r"))->schema();
  // Old version closed at 6000, new version open from 6000.
  EXPECT_EQ(versions[0][schema.tx_stop_index()].AsTime(), T(6000));
  EXPECT_EQ(versions[0][1].AsInt(), 10);
  EXPECT_EQ(versions[1][schema.tx_start_index()].AsTime(), T(6000));
  EXPECT_EQ(versions[1][schema.tx_stop_index()].AsTime(),
            TimePoint::Forever());
  EXPECT_EQ(versions[1][1].AsInt(), 20);
}

TEST_F(DmlSemanticsTest, HistoricalReplaceStampsValidTime) {
  Exec("create interval r (id = i4, v = i4)");
  db_->SetNow(T(5000));
  Exec("append to r (id = 1, v = 10)");
  Exec("range of x is r");
  db_->SetNow(T(6000));
  Exec("replace x (v = 20)");
  auto versions = AllVersions("r");
  ASSERT_EQ(versions.size(), 2u);
  const Schema& schema = (*db_->GetRelation("r"))->schema();
  EXPECT_EQ(versions[0][schema.valid_to_index()].AsTime(), T(6000));
  EXPECT_EQ(versions[1][schema.valid_from_index()].AsTime(), T(6000));
  EXPECT_EQ(versions[1][schema.valid_to_index()].AsTime(),
            TimePoint::Forever());
}

TEST_F(DmlSemanticsTest, TemporalReplaceInsertsTwoVersions) {
  Exec("create persistent interval r (id = i4, v = i4)");
  db_->SetNow(T(5000));
  Exec("append to r (id = 1, v = 10)");
  Exec("range of x is r");
  db_->SetNow(T(6000));
  Exec("replace x (v = 20)");

  auto versions = AllVersions("r");
  ASSERT_EQ(versions.size(), 3u);  // paper: each replace inserts TWO versions
  const Schema& schema = (*db_->GetRelation("r"))->schema();
  int vf = schema.valid_from_index();
  int vt = schema.valid_to_index();
  int ts = schema.tx_start_index();
  int te = schema.tx_stop_index();

  // v0: the original, closed in transaction time at the replace.
  EXPECT_EQ(versions[0][1].AsInt(), 10);
  EXPECT_EQ(versions[0][vf].AsTime(), T(5000));
  EXPECT_EQ(versions[0][vt].AsTime(), TimePoint::Forever());
  EXPECT_EQ(versions[0][te].AsTime(), T(6000));
  // v1: the correction — same data, valid interval closed at 6000, current
  // in transaction time.
  EXPECT_EQ(versions[1][1].AsInt(), 10);
  EXPECT_EQ(versions[1][vt].AsTime(), T(6000));
  EXPECT_EQ(versions[1][ts].AsTime(), T(6000));
  EXPECT_EQ(versions[1][te].AsTime(), TimePoint::Forever());
  // v2: the new version.
  EXPECT_EQ(versions[2][1].AsInt(), 20);
  EXPECT_EQ(versions[2][vf].AsTime(), T(6000));
  EXPECT_EQ(versions[2][vt].AsTime(), TimePoint::Forever());
  EXPECT_EQ(versions[2][te].AsTime(), TimePoint::Forever());
}

TEST_F(DmlSemanticsTest, TemporalDeleteInsertsCorrection) {
  Exec("create persistent interval r (id = i4)");
  db_->SetNow(T(5000));
  Exec("append to r (id = 1)");
  Exec("range of x is r");
  db_->SetNow(T(6000));
  Exec("delete x");
  auto versions = AllVersions("r");
  ASSERT_EQ(versions.size(), 2u);  // stamped original + correction
  const Schema& schema = (*db_->GetRelation("r"))->schema();
  EXPECT_EQ(versions[0][schema.tx_stop_index()].AsTime(), T(6000));
  EXPECT_EQ(versions[1][schema.valid_to_index()].AsTime(), T(6000));
  EXPECT_EQ(versions[1][schema.tx_stop_index()].AsTime(),
            TimePoint::Forever());
}

TEST_F(DmlSemanticsTest, ValidClauseOverridesTimestamps) {
  Exec("create interval r (id = i4)");
  Exec("append to r (id = 1) valid from \"1/1/80\" to \"6/1/80\"");
  auto versions = AllVersions("r");
  const Schema& schema = (*db_->GetRelation("r"))->schema();
  EXPECT_EQ(versions[0][schema.valid_from_index()].AsTime(),
            *TimePoint::Parse("1/1/80"));
  EXPECT_EQ(versions[0][schema.valid_to_index()].AsTime(),
            *TimePoint::Parse("6/1/80"));
}

TEST_F(DmlSemanticsTest, RetroactiveDeleteWithValidClause) {
  Exec("create interval r (id = i4)");
  db_->SetNow(T(5000));
  Exec("append to r (id = 1)");
  Exec("range of x is r");
  db_->SetNow(T(9000));
  // Record that the fact actually stopped holding at 7000 (retroactive).
  Exec("delete x valid at \"" + T(7000).ToString() + "\"");
  auto versions = AllVersions("r");
  const Schema& schema = (*db_->GetRelation("r"))->schema();
  EXPECT_EQ(versions[0][schema.valid_to_index()].AsTime(), T(7000));
}

TEST_F(DmlSemanticsTest, DeleteOnlyAffectsMatchingTuples) {
  Exec("create persistent interval r (id = i4)");
  Exec("append to r (id = 1)");
  Exec("append to r (id = 2)");
  Exec("range of x is r");
  db_->SetNow(T(6000));
  auto result = db_->Execute("delete x where x.id = 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->affected, 1);
  auto rows = db_->Execute("retrieve (x.id) when x overlap \"now\"");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->result.num_rows(), 1u);
  EXPECT_EQ(rows->result.rows[0][0].AsInt(), 2);
}

TEST_F(DmlSemanticsTest, ReplaceOnlyTouchesCurrentVersions) {
  Exec("create persistent interval r (id = i4, v = i4)");
  Exec("append to r (id = 1, v = 0)");
  Exec("range of x is r");
  for (int round = 1; round <= 3; ++round) {
    db_->SetNow(T(5000 + round * 100));
    auto result = db_->Execute("replace x (v = x.v + 1)");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->affected, 1) << "round " << round;
  }
  // 1 original + 2 per replace.
  EXPECT_EQ(AllVersions("r").size(), 7u);
}

TEST_F(DmlSemanticsTest, EventAppendUsesValidAt) {
  Exec("create event r (id = i4)");
  Exec("append to r (id = 1) valid at \"" + T(4000).ToString() + "\"");
  auto versions = AllVersions("r");
  const Schema& schema = (*db_->GetRelation("r"))->schema();
  EXPECT_EQ(versions[0][schema.valid_from_index()].AsTime(), T(4000));
}

TEST_F(DmlSemanticsTest, AppendFromAnotherRelation) {
  Exec("create src (id = i4, v = i4)");
  Exec("create dst (id = i4, v = i4)");
  Exec("append to src (id = 1, v = 10)");
  Exec("append to src (id = 2, v = 20)");
  Exec("range of s is src");
  auto result =
      db_->Execute("append to dst (id = s.id, v = s.v * 2) where s.v > 15");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->affected, 1);
  Exec("range of d is dst");
  auto rows = db_->Execute("retrieve (d.v)");
  ASSERT_EQ(rows->result.num_rows(), 1u);
  EXPECT_EQ(rows->result.rows[0][0].AsInt(), 40);
}

TEST_F(DmlSemanticsTest, UnspecifiedAttributesDefaultToZeroBlank) {
  Exec("create r (a = i4, b = c4, c = f8)");
  Exec("append to r (a = 5)");
  auto versions = AllVersions("r");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0][1].ToString(), "");
  EXPECT_DOUBLE_EQ(versions[0][2].AsDouble(), 0);
}

}  // namespace
}  // namespace tdb
