// Differential battery for the shared plan cache over the paper's eight
// benchmark databases (static / rollback / historical / temporal, each at
// fillfactor 100 and 50): every applicable query Q01..Q12 runs on four
// twin instances — plan cache off/on crossed with executor threads 1/4 —
// and all four must report identical rows AND identical per-file page
// I/O.  A cache hit (or a parallel scan) may change CPU cost, never
// results and never the paper's page counts; this is the test that keeps
// the 196-row golden table honest with the cache enabled.
//
// Each instance replays the same update rounds, and queries run twice per
// instance so the second execution of the cache-on twins is a genuine
// cache hit (the first populates).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "benchlib/workload.h"
#include "util/stringx.h"

namespace tdb {
namespace bench {
namespace {

struct Variant {
  const char* label;
  bool plan_cache;
  int exec_threads;
};

const Variant kVariants[] = {
    {"cache-off/1t", false, 1},
    {"cache-on/1t", true, 1},
    {"cache-off/4t", false, 4},
    {"cache-on/4t", true, 4},
};

TEST(PlanCacheDifferentialTest, EightDatabasesFourVariantsAgree) {
  const DbType types[] = {DbType::kStatic, DbType::kRollback,
                          DbType::kHistorical, DbType::kTemporal};
  for (DbType type : types) {
    for (int ff : {100, 50}) {
      SCOPED_TRACE(testing::Message()
                   << DbTypeName(type) << " ff=" << ff);
      // Build the four twins: identical schema, population, and update
      // history — only the cache and thread knobs differ.
      std::vector<std::unique_ptr<BenchmarkDb>> dbs;
      for (const Variant& v : kVariants) {
        WorkloadConfig config;
        config.type = type;
        config.fillfactor = ff;
        config.ntuples = 256;  // smaller than paper scale: 32 runs below
        config.plan_cache = v.plan_cache;
        config.exec_threads = v.exec_threads;
        auto created = BenchmarkDb::Create(config);
        ASSERT_TRUE(created.ok()) << created.status().ToString();
        for (int round = 0; round < 3; ++round) {
          ASSERT_TRUE((*created)->UniformUpdateRound().ok());
        }
        dbs.push_back(std::move(created).value());
      }

      for (int qnum = 1; qnum <= 12; ++qnum) {
        if (dbs[0]->QueryText(qnum).empty()) continue;
        SCOPED_TRACE(testing::Message() << "Q" << qnum);
        // Two executions per twin: the second one hits the cache where
        // it is enabled.  Both must match the cache-off baseline.
        for (int round = 0; round < 2; ++round) {
          std::vector<std::string> renderings;
          for (size_t i = 0; i < dbs.size(); ++i) {
            auto m = dbs[i]->RunQuery(qnum);
            ASSERT_TRUE(m.ok())
                << kVariants[i].label << ": " << m.status().ToString();
            renderings.push_back(StrPrintf(
                "rows=%llu in=%llu out=%llu",
                static_cast<unsigned long long>(m->rows),
                static_cast<unsigned long long>(m->input_pages),
                static_cast<unsigned long long>(m->output_pages)));
          }
          for (size_t i = 1; i < renderings.size(); ++i) {
            EXPECT_EQ(renderings[0], renderings[i])
                << kVariants[i].label << " diverged on round " << round;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace tdb
