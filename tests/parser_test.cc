#include "tquel/parser.h"

#include <gtest/gtest.h>

namespace tdb {
namespace {

std::unique_ptr<Statement> Parse(const std::string& text) {
  auto stmt = Parser::ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << " -> " << stmt.status().ToString();
  return stmt.ok() ? std::move(stmt).value() : nullptr;
}

template <typename T>
T* As(const std::unique_ptr<Statement>& stmt, Statement::Kind kind) {
  EXPECT_NE(stmt, nullptr);
  if (stmt == nullptr) return nullptr;
  EXPECT_EQ(stmt->kind, kind);
  return static_cast<T*>(stmt.get());
}

TEST(ParserTest, Range) {
  auto stmt = Parse("range of h is temporal_h");
  auto* range = As<RangeStmt>(stmt, Statement::Kind::kRange);
  EXPECT_EQ(range->var, "h");
  EXPECT_EQ(range->relation, "temporal_h");
}

TEST(ParserTest, SimpleRetrieve) {
  auto stmt = Parse("retrieve (h.id, h.seq) where h.id = 500");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  ASSERT_EQ(r->targets.size(), 2u);
  EXPECT_EQ(r->targets[0].expr->kind, Expr::Kind::kColumn);
  EXPECT_EQ(r->targets[0].expr->var, "h");
  EXPECT_EQ(r->targets[0].expr->attr, "id");
  ASSERT_NE(r->where, nullptr);
  EXPECT_EQ(r->where->op, ExprOp::kEq);
  EXPECT_FALSE(r->when);
  EXPECT_FALSE(r->as_of.has_value());
  EXPECT_FALSE(r->valid.has_value());
}

TEST(ParserTest, NamedAndExpressionTargets) {
  auto stmt = Parse("retrieve (total = h.a + 1, h.b, n = count(h.a))");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  ASSERT_EQ(r->targets.size(), 3u);
  EXPECT_EQ(r->targets[0].name, "total");
  EXPECT_EQ(r->targets[0].expr->kind, Expr::Kind::kBinary);
  EXPECT_EQ(r->targets[1].name, "");  // derived later by the binder
  EXPECT_EQ(r->targets[2].expr->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(r->targets[2].expr->agg, AggFunc::kCount);
}

TEST(ParserTest, RetrieveIntoUnique) {
  auto stmt = Parse("retrieve into out unique (h.id)");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  EXPECT_EQ(r->into, "out");
  EXPECT_TRUE(r->unique);
}

TEST(ParserTest, FullTemporalRetrieve) {
  auto stmt = Parse(
      "retrieve (h.id) valid from start of (h overlap i) to end of "
      "(h extend i) where h.id = 500 when h overlap i as of \"now\"");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  ASSERT_TRUE(r->valid.has_value());
  EXPECT_FALSE(r->valid->at);
  EXPECT_EQ(r->valid->from->kind, TemporalExpr::Kind::kStartOf);
  EXPECT_EQ(r->valid->to->kind, TemporalExpr::Kind::kEndOf);
  ASSERT_NE(r->when, nullptr);
  EXPECT_EQ(r->when->kind, TemporalPred::Kind::kNonEmpty);
  ASSERT_TRUE(r->as_of.has_value());
  EXPECT_EQ(r->as_of->at->kind, TemporalExpr::Kind::kNow);
}

TEST(ParserTest, ClausesInAnyOrder) {
  auto stmt = Parse(
      "retrieve (h.id) as of \"1981\" where h.id = 1 when h overlap \"now\" "
      "valid at \"now\"");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  EXPECT_TRUE(r->as_of.has_value());
  EXPECT_NE(r->where, nullptr);
  EXPECT_NE(r->when, nullptr);
  ASSERT_TRUE(r->valid.has_value());
  EXPECT_TRUE(r->valid->at);
}

TEST(ParserTest, AsOfThrough) {
  auto stmt = Parse("retrieve (h.id) as of \"1980\" through \"1981\"");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  ASSERT_TRUE(r->as_of.has_value());
  EXPECT_NE(r->as_of->through, nullptr);
}

TEST(ParserTest, WhenPrecedence) {
  auto stmt = Parse(
      "retrieve (h.id) when start of h precede i and not h overlap i or "
      "h equal i");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  // or at top, and below it, not below that.
  EXPECT_EQ(r->when->kind, TemporalPred::Kind::kOr);
  EXPECT_EQ(r->when->left->kind, TemporalPred::Kind::kAnd);
  EXPECT_EQ(r->when->left->left->kind, TemporalPred::Kind::kPrecede);
  EXPECT_EQ(r->when->left->right->kind, TemporalPred::Kind::kNot);
  EXPECT_EQ(r->when->right->kind, TemporalPred::Kind::kEqual);
}

TEST(ParserTest, TemporalParenGrouping) {
  auto stmt = Parse("retrieve (h.id) when (h overlap i) precede \"1981\"");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  EXPECT_EQ(r->when->kind, TemporalPred::Kind::kPrecede);
  EXPECT_EQ(r->when->lexpr->kind, TemporalExpr::Kind::kOverlap);
  EXPECT_EQ(r->when->rexpr->kind, TemporalExpr::Kind::kConst);
}

TEST(ParserTest, BareNowKeywordAccepted) {
  auto stmt = Parse("retrieve (h.id) when h overlap now");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  EXPECT_EQ(r->when->lexpr->right->kind, TemporalExpr::Kind::kNow);
}

TEST(ParserTest, Append) {
  auto stmt = Parse(
      "append to emp (name = \"ann\", sal = 100) valid from \"1980\" to "
      "\"forever\"");
  auto* a = As<AppendStmt>(stmt, Statement::Kind::kAppend);
  EXPECT_EQ(a->relation, "emp");
  ASSERT_EQ(a->targets.size(), 2u);
  EXPECT_EQ(a->targets[0].name, "name");
  EXPECT_TRUE(a->valid.has_value());
}

TEST(ParserTest, AppendWithoutTo) {
  auto stmt = Parse("append emp (sal = 1)");
  auto* a = As<AppendStmt>(stmt, Statement::Kind::kAppend);
  EXPECT_EQ(a->relation, "emp");
}

TEST(ParserTest, DeleteWithClauses) {
  auto stmt = Parse("delete e where e.sal < 0 valid at \"1981\"");
  auto* d = As<DeleteStmt>(stmt, Statement::Kind::kDelete);
  EXPECT_EQ(d->var, "e");
  EXPECT_NE(d->where, nullptr);
  EXPECT_TRUE(d->valid.has_value());
}

TEST(ParserTest, Replace) {
  auto stmt = Parse("replace e (sal = e.sal * 2) where e.name = \"x\"");
  auto* r = As<ReplaceStmt>(stmt, Statement::Kind::kReplace);
  EXPECT_EQ(r->var, "e");
  ASSERT_EQ(r->targets.size(), 1u);
  EXPECT_EQ(r->targets[0].name, "sal");
}

TEST(ParserTest, CreateAllFourTypes) {
  struct Case {
    const char* text;
    bool persistent;
    bool valid_time;
    bool event;
  } cases[] = {
      {"create r (a = i4)", false, false, false},
      {"create persistent r (a = i4)", true, false, false},
      {"create interval r (a = i4)", false, true, false},
      {"create event r (a = i4)", false, true, true},
      {"create persistent interval r (a = i4)", true, true, false},
      {"create persistent event r (a = i4)", true, true, true},
  };
  for (const Case& c : cases) {
    auto stmt = Parse(c.text);
    auto* create = As<CreateStmt>(stmt, Statement::Kind::kCreate);
    EXPECT_EQ(create->persistent, c.persistent) << c.text;
    EXPECT_EQ(create->has_valid_time, c.valid_time) << c.text;
    EXPECT_EQ(create->event, c.event) << c.text;
  }
}

TEST(ParserTest, CreatePaperSchema) {
  auto stmt = Parse(
      "create persistent interval Temporal_h "
      "(id = i4, amount = i4, seq = i4, string = c96)");
  auto* c = As<CreateStmt>(stmt, Statement::Kind::kCreate);
  EXPECT_EQ(c->relation, "Temporal_h");
  ASSERT_EQ(c->attrs.size(), 4u);
  EXPECT_EQ(c->attrs[3].name, "string");
  EXPECT_EQ(c->attrs[3].type_name, "c96");
}

TEST(ParserTest, ModifyVariants) {
  auto stmt = Parse("modify r to hash on id where fillfactor = 50");
  auto* m = As<ModifyStmt>(stmt, Statement::Kind::kModify);
  EXPECT_EQ(m->organization, "hash");
  EXPECT_EQ(m->key_attr, "id");
  EXPECT_EQ(m->fillfactor, 50);
  EXPECT_FALSE(m->two_level);

  auto stmt2 = Parse(
      "modify r to twolevel isam on id where fillfactor = 100, "
      "history = clustered");
  auto* m2 = As<ModifyStmt>(stmt2, Statement::Kind::kModify);
  EXPECT_TRUE(m2->two_level);
  EXPECT_TRUE(m2->clustered_history);
  EXPECT_EQ(m2->organization, "isam");

  auto stmt3 = Parse("modify r to heap");
  auto* m3 = As<ModifyStmt>(stmt3, Statement::Kind::kModify);
  EXPECT_EQ(m3->organization, "heap");
}

TEST(ParserTest, IndexStatement) {
  auto stmt = Parse(
      "index on r is amount_idx (amount) with structure = hash, levels = 2");
  auto* i = As<IndexStmt>(stmt, Statement::Kind::kIndex);
  EXPECT_EQ(i->relation, "r");
  EXPECT_EQ(i->index_name, "amount_idx");
  EXPECT_EQ(i->attr, "amount");
  EXPECT_EQ(i->structure, "hash");
  EXPECT_EQ(i->levels, 2);
}

TEST(ParserTest, CopyStatement) {
  auto stmt = Parse("copy r from \"/data/load.tsv\"");
  auto* c = As<CopyStmt>(stmt, Statement::Kind::kCopy);
  EXPECT_TRUE(c->from);
  EXPECT_EQ(c->path, "/data/load.tsv");
  auto stmt2 = Parse("copy r to \"/data/dump.tsv\"");
  EXPECT_FALSE(As<CopyStmt>(stmt2, Statement::Kind::kCopy)->from);
}

TEST(ParserTest, Destroy) {
  auto stmt = Parse("destroy r");
  EXPECT_EQ(As<DestroyStmt>(stmt, Statement::Kind::kDestroy)->relation, "r");
}

TEST(ParserTest, ScriptWithSemicolons) {
  auto stmts = Parser::ParseScript(
      "range of h is r; retrieve (h.id); destroy r");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 3u);
}

TEST(ParserTest, ScriptWithoutSemicolons) {
  auto stmts = Parser::ParseScript("range of h is r retrieve (h.id)");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 2u);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto stmt = Parse("retrieve (x = 1 + 2 * 3 - -4)");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  // ((1 + (2*3)) - (-4))
  const Expr* e = r->targets[0].expr.get();
  EXPECT_EQ(e->op, ExprOp::kSub);
  EXPECT_EQ(e->left->op, ExprOp::kAdd);
  EXPECT_EQ(e->left->right->op, ExprOp::kMul);
  EXPECT_EQ(e->right->op, ExprOp::kNeg);
}

TEST(ParserTest, BooleanPrecedence) {
  auto stmt = Parse("retrieve (h.a) where h.a = 1 or h.b = 2 and h.c = 3");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  EXPECT_EQ(r->where->op, ExprOp::kOr);
  EXPECT_EQ(r->where->right->op, ExprOp::kAnd);
}

TEST(ParserTest, ErrorCases) {
  const char* bad[] = {
      "",
      "frobnicate x",
      "range of h",                           // missing is
      "retrieve",                             // missing targets
      "retrieve ()",                          // empty targets
      "retrieve (h.id) where",                // missing expression
      "retrieve (h.id) when",                 // missing predicate
      "retrieve (h.id) as \"now\"",           // as without of
      "retrieve (h.id) valid from \"1980\"",  // missing to
      "append to r",                          // missing targets
      "create r ()",                          // empty attrs
      "create r (a)",                         // missing type
      "modify r to grid on id",               // unknown organization
      "modify r to hash on id where fillfactor = x",
      "index on r is i (a) with levels = 3",
      "copy r sideways \"f\"",
      "retrieve (h.id) where h.id = 1 extra garbage",
      "retrieve (bare_ident)",                // bare identifier target
      "retrieve (h.id) valid at \"not a time\"",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Parser::ParseStatement(text).ok()) << text;
  }
}

TEST(ParserTest, AggregateWithWhere) {
  auto stmt = Parse("retrieve (n = count(e.sal where e.dept = \"toy\"))");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  const Expr* agg = r->targets[0].expr.get();
  EXPECT_EQ(agg->kind, Expr::Kind::kAggregate);
  EXPECT_NE(agg->agg_where, nullptr);
}

TEST(ParserTest, AllAggregateNames) {
  auto stmt = Parse(
      "retrieve (a = count(e.x), b = sum(e.x), c = avg(e.x), d = min(e.x), "
      "f = max(e.x), g = any(e.x))");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  AggFunc expected[] = {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                        AggFunc::kMin,   AggFunc::kMax, AggFunc::kAny};
  ASSERT_EQ(r->targets.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(r->targets[i].expr->agg, expected[i]);
  }
}

TEST(ParserTest, TimeLiteralValidatedAtParse) {
  EXPECT_FALSE(Parser::ParseStatement(
                   "retrieve (h.id) as of \"13/45/80\"")
                   .ok());
  EXPECT_TRUE(Parser::ParseStatement(
                  "retrieve (h.id) as of \"08:00 1/1/80\"")
                  .ok());
}

TEST(ParserTest, RoundTripToString) {
  auto stmt = Parse(
      "retrieve (h.id) when start of h precede i and h overlap \"now\"");
  auto* r = As<RetrieveStmt>(stmt, Statement::Kind::kRetrieve);
  std::string printed = r->when->ToString();
  EXPECT_NE(printed.find("precede"), std::string::npos);
  EXPECT_NE(printed.find("start of"), std::string::npos);
}

}  // namespace
}  // namespace tdb
