#ifndef CHRONOQUEL_TESTS_STORAGE_TEST_UTIL_H_
#define CHRONOQUEL_TESTS_STORAGE_TEST_UTIL_H_

// Shared fixtures for the storage-file tests.

#include <cstring>
#include <memory>
#include <vector>

#include "env/env.h"
#include "storage/storage_file.h"

namespace tdb {
namespace testutil {

/// Layout of a small keyed test record: i4 key + payload.
inline RecordLayout SmallLayout(uint16_t record_size = 32) {
  RecordLayout layout;
  layout.record_size = record_size;
  layout.key_offset = 0;
  layout.key_type = TypeId::kInt4;
  layout.key_width = 4;
  return layout;
}

/// Builds a record with the key and a deterministic payload byte.
inline std::vector<uint8_t> KeyedRecord(int32_t key, uint16_t record_size = 32,
                                        uint8_t fill = 0) {
  std::vector<uint8_t> rec(record_size,
                           fill != 0 ? fill
                                     : static_cast<uint8_t>(key & 0xFF));
  std::memcpy(rec.data(), &key, 4);
  return rec;
}

inline int32_t KeyOf(const std::vector<uint8_t>& rec) {
  int32_t k;
  std::memcpy(&k, rec.data(), 4);
  return k;
}

/// Drains a cursor, returning the keys in visit order.
inline std::vector<int32_t> DrainKeys(Cursor* cursor) {
  std::vector<int32_t> keys;
  while (true) {
    auto have = cursor->Next();
    if (!have.ok() || !*have) break;
    int32_t k;
    std::memcpy(&k, cursor->record().data(), 4);
    keys.push_back(k);
  }
  return keys;
}

}  // namespace testutil
}  // namespace tdb

#endif  // CHRONOQUEL_TESTS_STORAGE_TEST_UTIL_H_
