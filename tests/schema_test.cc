#include "types/schema.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace tdb {
namespace {

std::vector<Attribute> PaperAttrs() {
  return {{"id", TypeId::kInt4, 4, false},
          {"amount", TypeId::kInt4, 4, false},
          {"seq", TypeId::kInt4, 4, false},
          {"string", TypeId::kChar, 96, false}};
}

TEST(SchemaTest, StaticHasNoImplicitAttrs) {
  auto s = Schema::Create(PaperAttrs(), DbType::kStatic);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attrs(), 4u);
  EXPECT_EQ(s->num_user_attrs(), 4u);
  EXPECT_EQ(s->record_size(), 108u);  // the paper's 108-byte tuple
  EXPECT_EQ(s->tx_start_index(), -1);
  EXPECT_EQ(s->valid_from_index(), -1);
}

TEST(SchemaTest, RollbackAddsTransactionTime) {
  auto s = Schema::Create(PaperAttrs(), DbType::kRollback);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attrs(), 6u);
  EXPECT_EQ(s->record_size(), 116u);
  EXPECT_GE(s->tx_start_index(), 0);
  EXPECT_GE(s->tx_stop_index(), 0);
  EXPECT_EQ(s->valid_from_index(), -1);
}

TEST(SchemaTest, HistoricalIntervalAddsValidTime) {
  auto s = Schema::Create(PaperAttrs(), DbType::kHistorical);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attrs(), 6u);
  EXPECT_EQ(s->record_size(), 116u);
  EXPECT_GE(s->valid_from_index(), 0);
  EXPECT_GE(s->valid_to_index(), 0);
  EXPECT_EQ(s->tx_start_index(), -1);
}

TEST(SchemaTest, HistoricalEventAddsSingleInstant) {
  auto s = Schema::Create(PaperAttrs(), DbType::kHistorical,
                          EntityKind::kEvent);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attrs(), 5u);
  EXPECT_EQ(s->record_size(), 112u);
  // Events use a single attribute; from == to index.
  EXPECT_EQ(s->valid_from_index(), s->valid_to_index());
}

TEST(SchemaTest, TemporalAddsBoth) {
  auto s = Schema::Create(PaperAttrs(), DbType::kTemporal);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attrs(), 8u);
  EXPECT_EQ(s->record_size(), 124u);
  EXPECT_GE(s->valid_from_index(), 0);
  EXPECT_GE(s->tx_start_index(), 0);
}

TEST(SchemaTest, PaperTuplesPerPage) {
  // Section 5.1: 9 static tuples per 1024-byte page, 8 for the others.
  auto stat = Schema::Create(PaperAttrs(), DbType::kStatic);
  auto roll = Schema::Create(PaperAttrs(), DbType::kRollback);
  auto temp = Schema::Create(PaperAttrs(), DbType::kTemporal);
  EXPECT_EQ((1024 - 12) / stat->record_size(), 9u);
  EXPECT_EQ((1024 - 12) / roll->record_size(), 8u);
  EXPECT_EQ((1024 - 12) / temp->record_size(), 8u);
}

TEST(SchemaTest, RejectsReservedNames) {
  auto s = Schema::Create({{"transaction_start", TypeId::kInt4, 4, false}},
                          DbType::kStatic);
  EXPECT_FALSE(s.ok());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto s = Schema::Create(
      {{"a", TypeId::kInt4, 4, false}, {"A", TypeId::kInt2, 2, false}},
      DbType::kStatic);
  EXPECT_FALSE(s.ok());
}

TEST(SchemaTest, RejectsEmpty) {
  EXPECT_FALSE(Schema::Create({}, DbType::kStatic).ok());
  EXPECT_FALSE(
      Schema::Create({{"", TypeId::kInt4, 4, false}}, DbType::kStatic).ok());
}

TEST(SchemaTest, RejectsZeroWidthChar) {
  EXPECT_FALSE(
      Schema::Create({{"c", TypeId::kChar, 0, false}}, DbType::kStatic).ok());
}

TEST(SchemaTest, FindAttrIsCaseInsensitive) {
  auto s = Schema::Create(PaperAttrs(), DbType::kTemporal);
  EXPECT_EQ(s->FindAttr("ID"), 0);
  EXPECT_EQ(s->FindAttr("Amount"), 1);
  EXPECT_GE(s->FindAttr("valid_from"), 0);
  EXPECT_EQ(s->FindAttr("nope"), -1);
}

TEST(SchemaTest, OffsetsArePacked) {
  auto s = Schema::Create(PaperAttrs(), DbType::kStatic);
  EXPECT_EQ(s->offset(0), 0u);
  EXPECT_EQ(s->offset(1), 4u);
  EXPECT_EQ(s->offset(2), 8u);
  EXPECT_EQ(s->offset(3), 12u);
}

TEST(SchemaTest, SerializeRoundTrip) {
  for (DbType type : {DbType::kStatic, DbType::kRollback, DbType::kHistorical,
                      DbType::kTemporal}) {
    for (EntityKind kind : {EntityKind::kInterval, EntityKind::kEvent}) {
      auto s = Schema::Create(PaperAttrs(), type, kind);
      ASSERT_TRUE(s.ok());
      auto back = Schema::Deserialize(s->Serialize());
      ASSERT_TRUE(back.ok()) << s->Serialize();
      EXPECT_EQ(back->num_attrs(), s->num_attrs());
      EXPECT_EQ(back->record_size(), s->record_size());
      EXPECT_EQ(back->db_type(), s->db_type());
      EXPECT_EQ(back->entity_kind(), s->entity_kind());
    }
  }
}

TEST(SchemaTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Schema::Deserialize("").ok());
  EXPECT_FALSE(Schema::Deserialize("x|y|z").ok());
  EXPECT_FALSE(Schema::Deserialize("0|0|2|a:3:4").ok());  // count mismatch
}

TEST(RecordCodecTest, EncodeDecodeAllTypes) {
  auto s = Schema::CreateStatic({{"i1", TypeId::kInt1, 1, false},
                                 {"i2", TypeId::kInt2, 2, false},
                                 {"i4", TypeId::kInt4, 4, false},
                                 {"f", TypeId::kFloat8, 8, false},
                                 {"c", TypeId::kChar, 6, false},
                                 {"t", TypeId::kTime, 4, false}});
  ASSERT_TRUE(s.ok());
  Row row = {Value::Int1(-3),      Value::Int2(-300), Value::Int4(1 << 20),
             Value::Float8(2.75),  Value::Char("ab"),
             Value::Time(TimePoint(12345))};
  auto rec = EncodeRecord(*s, row);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), s->record_size());
  auto back = DecodeRecord(*s, rec->data(), rec->size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].AsInt(), -3);
  EXPECT_EQ((*back)[1].AsInt(), -300);
  EXPECT_EQ((*back)[2].AsInt(), 1 << 20);
  EXPECT_DOUBLE_EQ((*back)[3].AsDouble(), 2.75);
  EXPECT_EQ((*back)[4].AsString(), "ab    ");  // blank padded
  EXPECT_EQ((*back)[5].AsTime(), TimePoint(12345));
}

TEST(RecordCodecTest, CharTruncatesToWidth) {
  auto s = Schema::CreateStatic({{"c", TypeId::kChar, 3, false}});
  auto rec = EncodeRecord(*s, {Value::Char("abcdef")});
  ASSERT_TRUE(rec.ok());
  auto back = DecodeRecord(*s, rec->data(), rec->size());
  EXPECT_EQ((*back)[0].AsString(), "abc");
}

TEST(RecordCodecTest, RejectsWrongArity) {
  auto s = Schema::CreateStatic({{"a", TypeId::kInt4, 4, false}});
  EXPECT_FALSE(EncodeRecord(*s, {}).ok());
  EXPECT_FALSE(EncodeRecord(*s, {Value::Int4(1), Value::Int4(2)}).ok());
}

TEST(RecordCodecTest, RejectsTypeMismatch) {
  auto s = Schema::CreateStatic({{"a", TypeId::kInt4, 4, false}});
  EXPECT_FALSE(EncodeRecord(*s, {Value::Char("x")}).ok());
  auto t = Schema::CreateStatic({{"t", TypeId::kTime, 4, false}});
  EXPECT_FALSE(EncodeRecord(*t, {Value::Int4(1)}).ok());
}

TEST(RecordCodecTest, DecodeRejectsShortBuffer) {
  auto s = Schema::CreateStatic({{"a", TypeId::kInt4, 4, false}});
  uint8_t buf[2] = {0, 0};
  EXPECT_FALSE(DecodeRecord(*s, buf, 2).ok());
}

TEST(RecordCodecTest, DecodeAttrPointAccess) {
  auto s = Schema::CreateStatic(
      {{"a", TypeId::kInt4, 4, false}, {"b", TypeId::kChar, 4, false}});
  auto rec = EncodeRecord(*s, {Value::Int4(77), Value::Char("zz")});
  EXPECT_EQ(DecodeAttr(*s, 0, rec->data()).AsInt(), 77);
  EXPECT_EQ(DecodeAttr(*s, 1, rec->data()).ToString(), "zz");
}

TEST(RecordCodecTest, EncodeAttrInPlaceOverwrites) {
  auto s = Schema::CreateStatic(
      {{"a", TypeId::kInt4, 4, false}, {"t", TypeId::kTime, 4, false}});
  auto rec = EncodeRecord(*s, {Value::Int4(1), Value::Time(TimePoint(5))});
  EncodeAttrInPlace(*s, 1, Value::Time(TimePoint::Forever()), rec->data());
  EXPECT_EQ(DecodeAttr(*s, 1, rec->data()).AsTime(), TimePoint::Forever());
  EXPECT_EQ(DecodeAttr(*s, 0, rec->data()).AsInt(), 1);  // untouched
}

// Property: encode/decode round-trips random rows for the paper's temporal
// schema.
class CodecRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecRoundTrip, RandomRows) {
  auto s = Schema::Create(PaperAttrs(), DbType::kTemporal);
  ASSERT_TRUE(s.ok());
  Random rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Row row;
    row.push_back(Value::Int4(rng.UniformRange(-1000000, 1000000)));
    row.push_back(Value::Int4(rng.UniformRange(0, 99999)));
    row.push_back(Value::Int4(rng.UniformRange(0, 15)));
    row.push_back(Value::Char(rng.NextString(96)));
    for (int t = 0; t < 4; ++t) {
      row.push_back(Value::Time(
          TimePoint(static_cast<int32_t>(rng.UniformRange(0, INT32_MAX)))));
    }
    auto rec = EncodeRecord(*s, row);
    ASSERT_TRUE(rec.ok());
    auto back = DecodeRecord(*s, rec->data(), rec->size());
    ASSERT_TRUE(back.ok());
    for (size_t a = 0; a < row.size(); ++a) {
      EXPECT_TRUE(row[a].Equals((*back)[a])) << "attr " << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace tdb
