#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include "storage_test_util.h"

namespace tdb {
namespace {

using testutil::DrainKeys;
using testutil::KeyedRecord;
using testutil::SmallLayout;

class HeapFileTest : public ::testing::Test {
 protected:
  std::unique_ptr<HeapFile> Open(uint16_t record_size = 32) {
    auto pager = Pager::Open(&env_, "/heap", &counters_);
    EXPECT_TRUE(pager.ok());
    auto heap = HeapFile::Open(std::move(*pager), SmallLayout(record_size));
    EXPECT_TRUE(heap.ok());
    return std::move(heap).value();
  }

  MemEnv env_;
  IoCounters counters_;
};

TEST_F(HeapFileTest, InsertAndFetch) {
  auto heap = Open();
  auto rec = KeyedRecord(7);
  Tid tid;
  ASSERT_TRUE(heap->Insert(rec.data(), rec.size(), &tid).ok());
  auto back = heap->Fetch(tid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rec);
}

TEST_F(HeapFileTest, InsertsAppendToTailPages) {
  auto heap = Open();
  uint16_t cap = Page::Capacity(32);
  for (int i = 0; i < cap * 3; ++i) {
    auto rec = KeyedRecord(i);
    ASSERT_TRUE(heap->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  EXPECT_EQ(heap->page_count(), 3u);
}

TEST_F(HeapFileTest, ScanVisitsAllInInsertionOrder) {
  auto heap = Open();
  for (int i = 0; i < 100; ++i) {
    auto rec = KeyedRecord(i);
    ASSERT_TRUE(heap->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  auto cur = heap->Scan();
  ASSERT_TRUE(cur.ok());
  auto keys = DrainKeys(cur->get());
  ASSERT_EQ(keys.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(keys[static_cast<size_t>(i)], i);
}

TEST_F(HeapFileTest, EraseHidesRecordAndScanSkipsIt) {
  auto heap = Open();
  Tid t1, t2;
  auto r1 = KeyedRecord(1);
  auto r2 = KeyedRecord(2);
  ASSERT_TRUE(heap->Insert(r1.data(), r1.size(), &t1).ok());
  ASSERT_TRUE(heap->Insert(r2.data(), r2.size(), &t2).ok());
  ASSERT_TRUE(heap->Erase(t1).ok());
  EXPECT_FALSE(heap->Fetch(t1).ok());
  auto cur = heap->Scan();
  EXPECT_EQ(DrainKeys(cur->get()), (std::vector<int32_t>{2}));
  EXPECT_FALSE(heap->Erase(t1).ok());  // double erase
}

TEST_F(HeapFileTest, EraseSlotIsReusedByInsert) {
  auto heap = Open();
  Tid first;
  auto r = KeyedRecord(1);
  ASSERT_TRUE(heap->Insert(r.data(), r.size(), &first).ok());
  for (int i = 2; i <= 50; ++i) {
    auto rec = KeyedRecord(i);
    ASSERT_TRUE(heap->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  uint32_t pages = heap->page_count();
  ASSERT_TRUE(heap->Erase(first).ok());
  auto fresh = KeyedRecord(99);
  Tid reused;
  ASSERT_TRUE(heap->Insert(fresh.data(), fresh.size(), &reused).ok());
  EXPECT_EQ(reused, first);
  EXPECT_EQ(heap->page_count(), pages);
}

TEST_F(HeapFileTest, UpdateInPlaceKeepsTid) {
  auto heap = Open();
  Tid tid;
  auto rec = KeyedRecord(5);
  ASSERT_TRUE(heap->Insert(rec.data(), rec.size(), &tid).ok());
  auto updated = KeyedRecord(5, 32, 0x77);
  ASSERT_TRUE(heap->UpdateInPlace(tid, updated.data(), updated.size()).ok());
  auto back = heap->Fetch(tid);
  EXPECT_EQ(*back, updated);
  EXPECT_FALSE(heap->UpdateInPlace(Tid{99, 0}, rec.data(), rec.size()).ok());
}

TEST_F(HeapFileTest, ScanKeyNotSupported) {
  auto heap = Open();
  EXPECT_FALSE(heap->ScanKey(Value::Int4(1)).ok());
}

TEST_F(HeapFileTest, RejectsWrongRecordSize) {
  auto heap = Open();
  auto rec = KeyedRecord(1, 16);
  EXPECT_FALSE(heap->Insert(rec.data(), rec.size(), nullptr).ok());
}

TEST_F(HeapFileTest, InsertFreshPageAlwaysAllocates) {
  auto heap = Open();
  auto r1 = KeyedRecord(1);
  Tid t1, t2;
  ASSERT_TRUE(heap->InsertFreshPage(r1.data(), r1.size(), &t1).ok());
  ASSERT_TRUE(heap->InsertFreshPage(r1.data(), r1.size(), &t2).ok());
  EXPECT_NE(t1.page, t2.page);
  EXPECT_EQ(heap->page_count(), 2u);
}

TEST_F(HeapFileTest, InsertAtPageClusters) {
  auto heap = Open();
  auto r = KeyedRecord(1);
  Tid first;
  ASSERT_TRUE(heap->InsertFreshPage(r.data(), r.size(), &first).ok());
  // Subsequent hinted inserts share the page until it is full.
  uint16_t cap = Page::Capacity(32);
  for (uint16_t i = 1; i < cap; ++i) {
    Tid tid;
    ASSERT_TRUE(heap->InsertAtPage(first.page, r.data(), r.size(), &tid).ok());
    EXPECT_EQ(tid.page, first.page);
  }
  // Full hint page: spills to a fresh page.
  Tid spill;
  ASSERT_TRUE(heap->InsertAtPage(first.page, r.data(), r.size(), &spill).ok());
  EXPECT_NE(spill.page, first.page);
}

TEST_F(HeapFileTest, PersistsAcrossReopen) {
  {
    auto heap = Open();
    for (int i = 0; i < 20; ++i) {
      auto rec = KeyedRecord(i);
      ASSERT_TRUE(heap->Insert(rec.data(), rec.size(), nullptr).ok());
    }
    ASSERT_TRUE(heap->pager()->Flush().ok());
  }
  auto heap = Open();
  auto cur = heap->Scan();
  EXPECT_EQ(DrainKeys(cur->get()).size(), 20u);
}

TEST_F(HeapFileTest, RejectsOversizedRecordLayout) {
  auto pager = Pager::Open(&env_, "/big", &counters_);
  RecordLayout layout;
  layout.record_size = kPageSize;  // cannot fit with the header
  EXPECT_FALSE(HeapFile::Open(std::move(*pager), layout).ok());
}

}  // namespace
}  // namespace tdb
