// Tests of scalar and temporal expression evaluation.

#include "exec/eval.h"

#include <gtest/gtest.h>

#include "tquel/parser.h"

namespace tdb {
namespace {

constexpr int32_t kNow = 1000;

/// Parses `retrieve (x = <expr>)` and returns the target expression.
std::unique_ptr<Statement> g_stmt;

Expr* ParseExpr(const std::string& text) {
  auto stmt = Parser::ParseStatement("retrieve (x = " + text + ")");
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  g_stmt = std::move(stmt).value();
  return static_cast<RetrieveStmt*>(g_stmt.get())->targets[0].expr.get();
}

/// Parses a when clause and returns the predicate.
TemporalPred* ParsePred(const std::string& text) {
  auto stmt = Parser::ParseStatement("retrieve (h.a) when " + text);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  g_stmt = std::move(stmt).value();
  return static_cast<RetrieveStmt*>(g_stmt.get())->when.get();
}

Value EvalConst(const std::string& text) {
  Evaluator eval{TimePoint(kNow)};
  Binding binding;
  auto v = eval.Eval(*ParseExpr(text), binding);
  EXPECT_TRUE(v.ok()) << text << ": " << v.status().ToString();
  return v.ok() ? *v : Value();
}

TEST(EvalTest, Arithmetic) {
  EXPECT_EQ(EvalConst("1 + 2 * 3").AsInt(), 7);
  EXPECT_EQ(EvalConst("10 / 3").AsInt(), 3);
  EXPECT_EQ(EvalConst("10 % 3").AsInt(), 1);
  EXPECT_EQ(EvalConst("-5 + 2").AsInt(), -3);
  EXPECT_DOUBLE_EQ(EvalConst("1.5 * 2").AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(EvalConst("7 / 2.0").AsDouble(), 3.5);
}

TEST(EvalTest, DivisionByZeroFails) {
  Evaluator eval{TimePoint(kNow)};
  Binding binding;
  EXPECT_FALSE(eval.Eval(*ParseExpr("1 / 0"), binding).ok());
  EXPECT_FALSE(eval.Eval(*ParseExpr("1 % 0"), binding).ok());
}

TEST(EvalTest, Comparisons) {
  EXPECT_EQ(EvalConst("1 < 2").AsInt(), 1);
  EXPECT_EQ(EvalConst("2 <= 2").AsInt(), 1);
  EXPECT_EQ(EvalConst("3 > 4").AsInt(), 0);
  EXPECT_EQ(EvalConst("3 != 3").AsInt(), 0);
  EXPECT_EQ(EvalConst("\"abc\" = \"abc\"").AsInt(), 1);
  EXPECT_EQ(EvalConst("\"abc\" < \"abd\"").AsInt(), 1);
}

TEST(EvalTest, BooleanLogicWithShortCircuit) {
  EXPECT_EQ(EvalConst("1 = 1 and 2 = 2").AsInt(), 1);
  EXPECT_EQ(EvalConst("1 = 2 or 2 = 2").AsInt(), 1);
  EXPECT_EQ(EvalConst("not 1 = 2").AsInt(), 1);
  // Short circuit: the division by zero on the right is never evaluated.
  EXPECT_EQ(EvalConst("1 = 2 and 1 / 0 = 1").AsInt(), 0);
  EXPECT_EQ(EvalConst("1 = 1 or 1 / 0 = 1").AsInt(), 1);
}

TEST(EvalTest, ColumnAccessThroughBinding) {
  auto schema = Schema::Create({{"a", TypeId::kInt4, 4, false},
                                {"b", TypeId::kChar, 4, false}},
                               DbType::kStatic);
  VersionRef ref;
  ref.SetRow({Value::Int4(42), Value::Char("zz")});

  Expr* e = ParseExpr("h.a * 2");
  e->left->var_index = 0;
  e->left->attr_index = 0;
  Binding binding = {&ref};
  Evaluator eval{TimePoint(kNow)};
  auto v = eval.Eval(*e, binding);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 84);
}

TEST(EvalTest, UnboundColumnIsInternalError) {
  Expr* e = ParseExpr("h.a");
  e->var_index = 0;
  e->attr_index = 0;
  Binding binding = {nullptr};
  Evaluator eval{TimePoint(kNow)};
  EXPECT_FALSE(eval.Eval(*e, binding).ok());
}

class TemporalEvalTest : public ::testing::Test {
 protected:
  TemporalEvalTest() : eval_(TimePoint(kNow)) {
    h_.valid = Interval(TimePoint(100), TimePoint(200));
    i_.valid = Interval(TimePoint(150), TimePoint(300));
    binding_ = {&h_, &i_};
  }

  /// Binds var names h->0, i->1 in a parsed predicate.
  void BindVars(TemporalExpr* e) {
    if (e == nullptr) return;
    if (e->kind == TemporalExpr::Kind::kVar) {
      e->var_index = e->var == "h" ? 0 : 1;
    }
    BindVars(e->left.get());
    BindVars(e->right.get());
  }
  void BindVars(TemporalPred* p) {
    if (p == nullptr) return;
    BindVars(p->lexpr.get());
    BindVars(p->rexpr.get());
    BindVars(p->left.get());
    BindVars(p->right.get());
  }

  bool EvalWhen(const std::string& text) {
    TemporalPred* pred = ParsePred(text);
    BindVars(pred);
    auto r = eval_.EvalPred(*pred, binding_);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
    return r.ok() && *r;
  }

  Interval EvalExpr(const std::string& text) {
    auto stmt = Parser::ParseStatement("retrieve (h.a) valid at " + text);
    EXPECT_TRUE(stmt.ok());
    g_stmt = std::move(stmt).value();
    auto* r = static_cast<RetrieveStmt*>(g_stmt.get());
    BindVars(r->valid->from.get());
    auto iv = eval_.EvalTemporal(*r->valid->from, binding_);
    EXPECT_TRUE(iv.ok()) << text;
    return iv.ok() ? *iv : Interval();
  }

  Evaluator eval_;
  VersionRef h_;
  VersionRef i_;
  Binding binding_;
};

TEST_F(TemporalEvalTest, VarYieldsValidInterval) {
  Interval iv = EvalExpr("h");
  EXPECT_EQ(iv, Interval(TimePoint(100), TimePoint(200)));
}

TEST_F(TemporalEvalTest, NowAndConstants) {
  EXPECT_EQ(EvalExpr("\"now\""), Interval::Event(TimePoint(kNow)));
  auto tp = TimePoint::Parse("1981");
  EXPECT_EQ(EvalExpr("\"1981\""), Interval::Event(*tp));
}

TEST_F(TemporalEvalTest, StartEndOverlapExtend) {
  EXPECT_EQ(EvalExpr("start of h"), Interval::Event(TimePoint(100)));
  EXPECT_EQ(EvalExpr("end of h"), Interval::Event(TimePoint(200)));
  EXPECT_EQ(EvalExpr("h overlap i"),
            Interval(TimePoint(150), TimePoint(200)));
  EXPECT_EQ(EvalExpr("h extend i"), Interval(TimePoint(100), TimePoint(300)));
  EXPECT_EQ(EvalExpr("start of (h extend i)"),
            Interval::Event(TimePoint(100)));
}

TEST_F(TemporalEvalTest, Predicates) {
  EXPECT_TRUE(EvalWhen("h overlap i"));
  EXPECT_TRUE(EvalWhen("start of h precede i"));
  EXPECT_FALSE(EvalWhen("i precede h"));
  EXPECT_TRUE(EvalWhen("h equal h"));
  EXPECT_FALSE(EvalWhen("h equal i"));
  EXPECT_TRUE(EvalWhen("not i precede h"));
  EXPECT_TRUE(EvalWhen("h overlap i and h overlap i"));
  EXPECT_TRUE(EvalWhen("i precede h or h overlap i"));
}

TEST_F(TemporalEvalTest, OverlapNowSemantics) {
  // h = [100, 200) does not contain now=1000.
  EXPECT_FALSE(EvalWhen("h overlap \"now\""));
  h_.valid = Interval(TimePoint(100), TimePoint::Forever());
  EXPECT_TRUE(EvalWhen("h overlap \"now\""));
}

TEST_F(TemporalEvalTest, TouchingIntervalsDoNotOverlap) {
  i_.valid = Interval(TimePoint(200), TimePoint(300));  // h ends at 200
  EXPECT_FALSE(EvalWhen("h overlap i"));
  EXPECT_TRUE(EvalWhen("h precede i"));
}

TEST_F(TemporalEvalTest, EventIntervalPredicates) {
  h_.valid = Interval::Event(TimePoint(150));  // event within i
  EXPECT_TRUE(EvalWhen("h overlap i"));
  h_.valid = Interval::Event(TimePoint(300));  // exactly i's (open) end
  EXPECT_FALSE(EvalWhen("h overlap i"));
}

}  // namespace
}  // namespace tdb
