#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace tdb {
namespace {

RelationMeta MakeMeta(const std::string& name, DbType type) {
  RelationMeta meta;
  meta.name = name;
  auto schema = Schema::Create({{"id", TypeId::kInt4, 4, false},
                                {"s", TypeId::kChar, 16, false}},
                               type);
  meta.schema = std::move(schema).value();
  return meta;
}

class CatalogTest : public ::testing::Test {
 protected:
  MemEnv env_;
};

TEST_F(CatalogTest, CreateFindDrop) {
  Catalog catalog(&env_, "/db");
  ASSERT_TRUE(catalog.Create(MakeMeta("emp", DbType::kTemporal)).ok());
  ASSERT_NE(catalog.Find("emp"), nullptr);
  EXPECT_NE(catalog.Find("EMP"), nullptr);  // case-insensitive
  EXPECT_EQ(catalog.Find("none"), nullptr);
  EXPECT_TRUE(catalog.Drop("emp").ok());
  EXPECT_EQ(catalog.Find("emp"), nullptr);
  EXPECT_FALSE(catalog.Drop("emp").ok());
}

TEST_F(CatalogTest, DuplicateCreateFails) {
  Catalog catalog(&env_, "/db");
  ASSERT_TRUE(catalog.Create(MakeMeta("emp", DbType::kStatic)).ok());
  EXPECT_EQ(catalog.Create(MakeMeta("EMP", DbType::kStatic)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, PersistsAcrossLoad) {
  {
    Catalog catalog(&env_, "/db");
    RelationMeta meta = MakeMeta("emp", DbType::kTemporal);
    meta.org = Organization::kHash;
    meta.key_attr = "id";
    meta.fillfactor = 50;
    meta.hash_buckets = 77;
    meta.two_level = true;
    meta.clustered_history = true;
    meta.history_buckets = 9;
    IndexMeta idx;
    idx.name = "amount_idx";
    idx.attr = "s";
    idx.org = Organization::kHash;
    idx.levels = 2;
    idx.nbuckets = 5;
    idx.history_nbuckets = 6;
    meta.indexes.push_back(idx);
    ASSERT_TRUE(catalog.Create(std::move(meta)).ok());
  }
  Catalog reloaded(&env_, "/db");
  ASSERT_TRUE(reloaded.Load().ok());
  const RelationMeta* meta = reloaded.Find("emp");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->org, Organization::kHash);
  EXPECT_EQ(meta->key_attr, "id");
  EXPECT_EQ(meta->fillfactor, 50);
  EXPECT_EQ(meta->hash_buckets, 77u);
  EXPECT_TRUE(meta->two_level);
  EXPECT_TRUE(meta->clustered_history);
  EXPECT_EQ(meta->history_buckets, 9u);
  ASSERT_EQ(meta->indexes.size(), 1u);
  EXPECT_EQ(meta->indexes[0].name, "amount_idx");
  EXPECT_EQ(meta->indexes[0].levels, 2);
  EXPECT_EQ(meta->schema.db_type(), DbType::kTemporal);
}

TEST_F(CatalogTest, IsamMetaPersisted) {
  {
    Catalog catalog(&env_, "/db");
    RelationMeta meta = MakeMeta("emp", DbType::kRollback);
    meta.org = Organization::kIsam;
    meta.key_attr = "id";
    meta.isam.data_pages = 128;
    meta.isam.level_counts = {2, 1};
    ASSERT_TRUE(catalog.Create(std::move(meta)).ok());
  }
  Catalog reloaded(&env_, "/db");
  ASSERT_TRUE(reloaded.Load().ok());
  const RelationMeta* meta = reloaded.Find("emp");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->isam.data_pages, 128u);
  EXPECT_EQ(meta->isam.level_counts, (std::vector<uint32_t>{2, 1}));
}

TEST_F(CatalogTest, UpdateReplacesMetadata) {
  Catalog catalog(&env_, "/db");
  ASSERT_TRUE(catalog.Create(MakeMeta("emp", DbType::kStatic)).ok());
  RelationMeta meta = *catalog.Find("emp");
  meta.fillfactor = 25;
  ASSERT_TRUE(catalog.Update(meta).ok());
  EXPECT_EQ(catalog.Find("emp")->fillfactor, 25);
  meta.name = "ghost";
  EXPECT_FALSE(catalog.Update(meta).ok());
}

TEST_F(CatalogTest, RelationNamesListsAll) {
  Catalog catalog(&env_, "/db");
  ASSERT_TRUE(catalog.Create(MakeMeta("a", DbType::kStatic)).ok());
  ASSERT_TRUE(catalog.Create(MakeMeta("b", DbType::kTemporal)).ok());
  auto names = catalog.RelationNames();
  EXPECT_EQ(names.size(), 2u);
}

TEST_F(CatalogTest, LoadEmptyIsOk) {
  Catalog catalog(&env_, "/none");
  EXPECT_TRUE(catalog.Load().ok());
  EXPECT_TRUE(catalog.RelationNames().empty());
}

TEST_F(CatalogTest, ParseRejectsCorruptBlocks) {
  EXPECT_FALSE(ParseRelationMeta("schema 0|0|0|\nend\n").ok());  // no name
  EXPECT_FALSE(ParseRelationMeta("relation r\norg x\nend\n").ok());
  EXPECT_FALSE(ParseRelationMeta("relation r\nbogus tag\nend\n").ok());
  EXPECT_FALSE(
      ParseRelationMeta("relation r\nindex a b c\nend\n").ok());
}

TEST_F(CatalogTest, SerializeRoundTripViaBlock) {
  RelationMeta meta = MakeMeta("roundtrip", DbType::kHistorical);
  meta.org = Organization::kIsam;
  meta.isam.data_pages = 3;
  meta.isam.level_counts = {1};
  auto parsed = ParseRelationMeta(SerializeRelationMeta(meta));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name, "roundtrip");
  EXPECT_EQ(parsed->schema.num_attrs(), meta.schema.num_attrs());
}

}  // namespace
}  // namespace tdb
