// Tests of the explain statement and the physical-plan IR it surfaces:
// golden plan trees for the benchmark query shapes (keyed, ISAM range,
// secondary index, scan+filter, substitution, nested loop, constant), the
// no-execution guarantee, and — across all four database types — agreement
// between the explained plan and the plan the executor actually ran.

#include <gtest/gtest.h>

#include <regex>

#include "benchlib/workload.h"
#include "core/database.h"
#include "env/env.h"
#include "exec/join_method.h"
#include "exec/plan.h"
#include "obs/metrics.h"

namespace tdb {
namespace {

/// Replaces wall-clock annotations (`time=1.234ms`) with `time=*` so
/// analyzed plan trees can be golden-tested: every other stat (rows,
/// loops, page I/O) is deterministic under MemEnv.
std::string MaskTimes(const std::string& s) {
  static const std::regex kTime("time=[0-9]+\\.[0-9]{3}ms");
  return std::regex_replace(s, kTime, "time=*");
}

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Exec("create persistent interval hrel (id = i4, amount = i4, pad = c96)");
    Exec("create persistent interval irel (id = i4, amount = i4, pad = c96)");
    for (int i = 0; i < 20; ++i) {
      Exec("append to hrel (id = " + std::to_string(i) + ", amount = " +
           std::to_string(i * 7) + ")");
      Exec("append to irel (id = " + std::to_string(i) + ", amount = " +
           std::to_string(i * 7) + ")");
    }
    Exec("modify hrel to hash on id where fillfactor = 100");
    Exec("modify irel to isam on id where fillfactor = 100");
    Exec("index on hrel is am_h (amount) with structure = hash");
    Exec("range of h is hrel");
    Exec("range of i is irel");
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  std::string Explain(const std::string& text) {
    auto desc = db_->Explain(text);
    EXPECT_TRUE(desc.ok()) << text << " -> " << desc.status().ToString();
    return desc.ok() ? *desc : std::string();
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

// --- Golden plan trees (one per access-path shape) ----------------------

TEST_F(ExplainTest, KeyedLookupGolden) {
  EXPECT_EQ(Explain("retrieve (h.id) where h.id = 5"),
            "project (h.id)\n"
            "  filter [(h.id = 5)]\n"
            "    keyed-lookup h=hrel key=5\n");
}

TEST_F(ExplainTest, CurrentKeyedGolden) {
  // Q01 current-version shape: `when h overlap "now"` restricts the keyed
  // probe to current versions.
  EXPECT_EQ(Explain("retrieve (h.id) where h.id = 5 when h overlap \"now\""),
            "project (h.id)\n"
            "  filter [(h.id = 5); when (h overlap \"now\")]\n"
            "    keyed-lookup h=hrel key=5 (current)\n");
}

TEST_F(ExplainTest, IsamRangeGolden) {
  // Q04 shape: key inequalities on an ISAM relation become a range scan.
  EXPECT_EQ(Explain("retrieve (i.id) where i.id >= 4 and i.id < 9"),
            "project (i.id)\n"
            "  filter [(i.id >= 4); (i.id < 9)]\n"
            "    range-scan i=irel key>=4 key<9\n");
}

TEST_F(ExplainTest, SecondaryIndexGolden) {
  // Q12 shape: equality on a non-key indexed attribute probes the index.
  EXPECT_EQ(Explain("retrieve (h.id) where h.amount = 35"),
            "project (h.id)\n"
            "  filter [(h.amount = 35)]\n"
            "    index-eq h=hrel index=amount key=35\n");
}

TEST_F(ExplainTest, ScanWithFilterGolden) {
  // Q07/Q08 shape: no key or index applies, so scan + residual filter.
  EXPECT_EQ(Explain("retrieve (i.id) where i.amount = 35"),
            "project (i.id)\n"
            "  filter [(i.amount = 35)]\n"
            "    seq-scan i=irel\n");
}

TEST_F(ExplainTest, BareScanGolden) {
  EXPECT_EQ(Explain("retrieve (h.id, h.amount)"),
            "project (h.id, h.amount)\n"
            "  seq-scan h=hrel\n");
}

TEST_F(ExplainTest, SubstitutionGolden) {
  // Q09/Q10 shape: the join conjunct makes the hashed relation a keyed
  // inner; the other variable detaches into a temp as the outer.
  EXPECT_EQ(Explain("retrieve (h.id, i.amount) where h.id = i.id"),
            "project (h.id, i.amount)\n"
            "  substitution\n"
            "    outer: seq-scan i=irel\n"
            "    inner: filter [(h.id = i.id)]\n"
            "      keyed-lookup h=hrel key=i.id\n");
}

TEST_F(ExplainTest, NestedLoopGolden) {
  // Q11 shape: no probe-able conjunct, so left-deep nested scans.
  // The binder renames the colliding second `id` column; the rename shows
  // up in the projection since it names the output column.
  EXPECT_EQ(Explain("retrieve (h.id, i.id)"),
            "project (h.id, id_2 = i.id)\n"
            "  nested-loop\n"
            "    seq-scan h=hrel\n"
            "    seq-scan i=irel\n");
}

TEST_F(ExplainTest, ConstantGolden) {
  // A plain aggregate folds before iteration: no live variables remain.
  EXPECT_EQ(Explain("retrieve (n = count(h.id))"),
            "project (n = count(h.id))\n"
            "  constant\n");
}

TEST_F(ExplainTest, ProjectDecorationsGolden) {
  std::string desc = Explain("retrieve into tout unique (h.id) "
                             "as of \"1990\" sort by id desc");
  // The as-of constant renders as a full timestamp; check the decorations
  // structurally rather than pinning the time format.
  EXPECT_EQ(desc.substr(desc.find('\n') + 1), "  seq-scan h=hrel\n") << desc;
  EXPECT_NE(desc.find("project (h.id) unique into tout as of "),
            std::string::npos)
      << desc;
  EXPECT_NE(desc.find(" sort by id desc\n"), std::string::npos) << desc;
}

// --- Cost-based join methods (TDB_JOIN_METHOD levers) --------------------

/// Forced hash join: the equality conjunct is consumed as the hash key and
/// every node carries the cost model's `[est=N]` cardinality tag.  Both
/// sides have 20 rows with 20 distinct ids, so est = 20*20/20 = 20.
TEST_F(ExplainTest, HashJoinGolden) {
  SetJoinMethodForTest(JoinMethod::kHash);
  std::string desc = Explain("retrieve (h.id, i.amount) where h.id = i.id");
  SetJoinMethodForTest(std::nullopt);
  EXPECT_EQ(desc,
            "project (h.id, i.amount)\n"
            "  hash-join key=(h.id = i.id) [est=20]\n"
            "    build: seq-scan h=hrel [est=20]\n"
            "    probe: seq-scan i=irel [est=20]\n");
}

/// Forced interval join: the cross `overlap` conjunct becomes the sweep
/// predicate; est = 0.5 * 20 * 20 = 200 (the coarse overlap selectivity).
TEST_F(ExplainTest, IntervalJoinGolden) {
  SetJoinMethodForTest(JoinMethod::kMerge);
  std::string desc = Explain("retrieve (h.id, i.id) when h overlap i");
  SetJoinMethodForTest(std::nullopt);
  EXPECT_EQ(desc,
            "project (h.id, id_2 = i.id)\n"
            "  interval-join when=(h overlap i) [est=200]\n"
            "    left: seq-scan h=hrel [est=20]\n"
            "    right: seq-scan i=irel [est=20]\n");
}

/// Residual conjuncts: the consumed equality disappears, per-side
/// restrictions sink into side filters, and the leftover cross conjunct
/// lands on the join node's own filter clause.
TEST_F(ExplainTest, HashJoinResidualGolden) {
  SetJoinMethodForTest(JoinMethod::kHash);
  std::string desc = Explain(
      "retrieve (h.id, i.amount) where h.id = i.id and h.amount > 35 "
      "and h.amount < i.amount + 140");
  SetJoinMethodForTest(std::nullopt);
  EXPECT_EQ(desc,
            "project (h.id, i.amount)\n"
            "  hash-join key=(h.id = i.id) "
            "filter [(h.amount < (i.amount + 140))] [est=7]\n"
            "    build: filter [(h.amount > 35)] [est=7]\n"
            "      seq-scan h=hrel\n"
            "    probe: seq-scan i=irel [est=20]\n");
}

/// A forced method that does not apply (no equality conjunct for hash, no
/// overlap for merge) falls back to the paper plan — with no est tags, so
/// the fallback rendering matches paper mode byte-for-byte.
TEST_F(ExplainTest, ForcedMethodFallsBackToPaperPlan) {
  std::string paper = Explain("retrieve (h.id, i.id)");
  SetJoinMethodForTest(JoinMethod::kHash);
  std::string forced = Explain("retrieve (h.id, i.id)");
  SetJoinMethodForTest(std::nullopt);
  EXPECT_EQ(paper, forced);
}

/// Paper mode never renders estimates: the lever off means byte-identical
/// output to the pre-cost-model plans.
TEST_F(ExplainTest, PaperModeHasNoEstimates) {
  std::string desc = Explain("retrieve (h.id, i.amount) where h.id = i.id");
  EXPECT_EQ(desc.find("est="), std::string::npos) << desc;
}

// --- The explain statement itself ---------------------------------------

TEST_F(ExplainTest, ExplainStatementReturnsPlanRows) {
  auto r = db_->Execute("explain retrieve (h.id) where h.id = 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result.columns, std::vector<std::string>{"query plan"});
  ASSERT_EQ(r->result.rows.size(), 3u);
  EXPECT_EQ(r->result.rows[0][0].AsString(), "project (h.id)");
  EXPECT_EQ(r->message, "plan: hrel:keyed");
  ASSERT_NE(r->plan, nullptr);
  EXPECT_FALSE(r->plan->root->stats.executed);
}

TEST_F(ExplainTest, ExplainDoesNotExecute) {
  // Warm the relation cache, then require zero page I/O from explain.
  Exec("retrieve (h.id) where h.id = 5");
  Exec("retrieve (i.id) where i.id = 5");
  IoCounters before = db_->io()->Total();
  Exec("explain retrieve (h.id, i.amount) where h.id = i.id");
  IoCounters after = db_->io()->Total();
  EXPECT_EQ(after.TotalReads(), before.TotalReads());
  EXPECT_EQ(after.TotalWrites(), before.TotalWrites());
  // And no temp relation materialized for the substitution.
  EXPECT_EQ(db_->catalog()->Find("tout"), nullptr);
}

TEST_F(ExplainTest, ExplainRejectsNonRetrieve) {
  auto r = db_->Execute("explain delete h");
  EXPECT_FALSE(r.ok());
}

TEST_F(ExplainTest, PrinterRoundTripsExplain) {
  auto r = db_->Execute("explain retrieve (h.id) where h.id = 5");
  ASSERT_TRUE(r.ok());
  // Re-running the same text must keep working (parser round trip happens
  // in printer_test; here we just check explain composes with scripts).
  auto again = db_->Execute(
      "explain retrieve (h.id) where h.id = 5\n"
      "retrieve (h.id) where h.id = 5");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->result.rows.size(), 1u);
}

// --- Executed plans carry per-node statistics ----------------------------

TEST_F(ExplainTest, ExecutedPlanHasStats) {
  auto r = db_->Execute("retrieve (h.id) where h.id = 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->plan, nullptr);
  const ProjectNode* root = r->plan->root.get();
  EXPECT_TRUE(root->stats.executed);
  EXPECT_EQ(root->stats.rows_emitted, 1u);
  const AccessNode* access = AccessOf(root->child.get());
  ASSERT_NE(access, nullptr);
  EXPECT_TRUE(access->stats.executed);
  EXPECT_EQ(access->stats.loops, 1u);
  EXPECT_GE(access->stats.rows_examined, 1u);
  std::string annotated = r->plan->Describe(/*with_stats=*/true);
  EXPECT_NE(annotated.find("[rows=1]"), std::string::npos) << annotated;
  EXPECT_NE(annotated.find("loops=1"), std::string::npos) << annotated;
}

TEST_F(ExplainTest, SubstitutionStatsCountProbes) {
  auto r = db_->Execute("retrieve (h.id, i.amount) where h.id = i.id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->plan, nullptr);
  ASSERT_EQ(r->plan->root->child->kind, PlanNode::Kind::kSubstitution);
  const auto* sub =
      static_cast<const SubstitutionNode*>(r->plan->root->child.get());
  const AccessNode* inner = AccessOf(sub->inner.get());
  ASSERT_NE(inner, nullptr);
  EXPECT_TRUE(inner->stats.executed);
  // One probe per distinct temp key: all 20 ids are distinct.
  EXPECT_EQ(inner->stats.loops, 20u);
  EXPECT_EQ(r->plan->root->stats.rows_emitted, 20u);
  // The temp relation's I/O lands on the substitution node itself.
  EXPECT_TRUE(sub->stats.executed);
  EXPECT_GT(sub->stats.io.TotalWrites(), 0u);
}

// --- explain analyze -----------------------------------------------------

TEST(MaskTimesTest, NormalizesOnlyWallClock) {
  EXPECT_EQ(MaskTimes("a [rows=1 time=0.034ms]\nb [loops=2 time=12.500ms]\n"),
            "a [rows=1 time=*]\nb [loops=2 time=*]\n");
  EXPECT_EQ(MaskTimes("no times here [rows=3]"), "no times here [rows=3]");
}

/// Same schema as ExplainTest but with metrics pinned on, so analyzed
/// plans carry real wall-clock samples regardless of the environment the
/// suite runs under.
class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetMetricsEnabledForTest(true);
    DatabaseOptions options;
    options.env = &env_;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Exec("create persistent interval hrel (id = i4, amount = i4, pad = c96)");
    Exec("create persistent interval irel (id = i4, amount = i4, pad = c96)");
    for (int i = 0; i < 20; ++i) {
      Exec("append to hrel (id = " + std::to_string(i) + ", amount = " +
           std::to_string(i * 7) + ")");
      Exec("append to irel (id = " + std::to_string(i) + ", amount = " +
           std::to_string(i * 7) + ")");
    }
    Exec("modify hrel to hash on id where fillfactor = 100");
    Exec("range of h is hrel");
    Exec("range of i is irel");
  }

  void TearDown() override {
    obs::SetMetricsEnabledForTest(std::nullopt);
    SetJoinMethodForTest(std::nullopt);
  }

  void Exec(const std::string& text) {
    auto r = db_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  }

  /// Runs `explain analyze <query>` and returns the printed rows.
  std::string Analyze(const std::string& query) {
    auto r = db_->Execute("explain analyze " + query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "";
    std::string tree;
    for (const auto& row : r->result.rows) tree += row[0].AsString() + "\n";
    return tree;
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(ExplainAnalyzeTest, KeyedLookupGolden) {
  EXPECT_EQ(
      MaskTimes(Analyze("retrieve (h.id) where h.id = 5 "
                        "when h overlap \"now\"")),
      "project (h.id) [rows=1 time=*]\n"
      "  filter [(h.id = 5); when (h overlap \"now\")] "
      "[loops=1 examined=1 emitted=1 time=*]\n"
      "    keyed-lookup h=hrel key=5 (current) "
      "[loops=1 examined=1 emitted=1 reads=1 (data=1) time=*]\n");
}

/// Estimated vs. actual, per node: the analyzed hash join reports the cost
/// model's `est=` next to the executed row counts.  20 ids join 1:1, and
/// the estimate (20*20 / 20 distinct) agrees exactly on this uniform data.
TEST_F(ExplainAnalyzeTest, HashJoinEstVsActualGolden) {
  SetJoinMethodForTest(JoinMethod::kHash);
  std::string tree =
      MaskTimes(Analyze("retrieve (h.id, i.amount) where h.id = i.id"));
  EXPECT_EQ(tree,
            "project (h.id, i.amount) [rows=20 time=*]\n"
            "  hash-join key=(h.id = i.id) "
            "[loops=1 examined=20 emitted=20 est=20 time=*]\n"
            "    build: seq-scan h=hrel "
            "[loops=1 examined=20 emitted=20 est=20 reads=3 (data=3) time=*]\n"
            "    probe: seq-scan i=irel "
            "[loops=1 examined=20 emitted=20 est=20 reads=3 (data=3) "
            "time=*]\n");
}

TEST_F(ExplainAnalyzeTest, IntervalJoinEstVsActual) {
  SetJoinMethodForTest(JoinMethod::kMerge);
  std::string tree =
      MaskTimes(Analyze("retrieve (h.id, i.id) when h overlap i"));
  // All 20x20 version pairs coexist (no history rounds), so the sweep
  // emits 400 rows against the coarse 200 estimate — est and actual are
  // both visible per node, which is the point of the annotation.
  EXPECT_NE(tree.find("interval-join when=(h overlap i)"), std::string::npos)
      << tree;
  EXPECT_NE(tree.find("emitted=400 est=200"), std::string::npos) << tree;
  EXPECT_NE(tree.find("left: seq-scan h=hrel"), std::string::npos) << tree;
  EXPECT_NE(tree.find("right: seq-scan i=irel"), std::string::npos) << tree;
}

TEST_F(ExplainAnalyzeTest, AnalyzeExecutesTheQuery) {
  // Unlike plain explain, analyze runs the plan: page reads happen and
  // executed stats (rows, loops, I/O) are real.
  Exec("retrieve (h.id) where h.id = 5");  // warm the relation cache
  ASSERT_TRUE(db_->DropAllBuffers().ok());  // force the probe back to disk
  IoCounters before = db_->io()->Total();
  auto r = db_->Execute("explain analyze retrieve (h.id) where h.id = 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  IoCounters after = db_->io()->Total();
  EXPECT_GT(after.TotalReads(), before.TotalReads());
  ASSERT_NE(r->plan, nullptr);
  EXPECT_TRUE(r->plan->root->stats.executed);
  EXPECT_EQ(r->plan->root->stats.rows_emitted, 1u);
}

TEST_F(ExplainAnalyzeTest, PlainExplainStaysUnexecuted) {
  std::string plain;
  {
    auto r = db_->Execute("explain retrieve (h.id) where h.id = 5");
    ASSERT_TRUE(r.ok());
    for (const auto& row : r->result.rows) plain += row[0].AsString() + "\n";
  }
  // No stats suffixes at all on the unexecuted form.
  EXPECT_EQ(plain.find("[rows="), std::string::npos) << plain;
  EXPECT_EQ(plain.find("time="), std::string::npos) << plain;
}

TEST_F(ExplainAnalyzeTest, AnalyzeIsDeterministicWhenMetricsDisabled) {
  // With metrics off the executor takes no clock samples: wall times stay
  // zero, making `explain analyze` output fully deterministic (the
  // property that keeps figure stdout byte-identical under TDB_METRICS=0).
  obs::SetMetricsEnabledForTest(false);
  DatabaseOptions options;
  options.env = &env_;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  auto r = (*db)->Execute(
      "range of h is hrel\n"
      "explain analyze retrieve (h.id) where h.id = 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string tree;
  for (const auto& row : r->result.rows) tree += row[0].AsString() + "\n";
  EXPECT_NE(tree.find("time=0.000ms"), std::string::npos) << tree;
  // Every time annotation is the deterministic zero.
  std::string masked = MaskTimes(tree);
  size_t zeros = 0;
  size_t masks = 0;
  for (size_t p = tree.find("time=0.000ms"); p != std::string::npos;
       p = tree.find("time=0.000ms", p + 1)) {
    ++zeros;
  }
  for (size_t p = masked.find("time=*"); p != std::string::npos;
       p = masked.find("time=*", p + 1)) {
    ++masks;
  }
  EXPECT_EQ(zeros, masks) << tree;
}

// --- Acceptance: explained plan == executed plan, all four db types ------

TEST(ExplainAcceptanceTest, ExplainMatchesExecutionAcrossDbTypes) {
  for (DbType type : {DbType::kStatic, DbType::kRollback, DbType::kHistorical,
                      DbType::kTemporal}) {
    bench::WorkloadConfig config;
    config.type = type;
    config.ntuples = 64;
    auto bench = bench::BenchmarkDb::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    // One representative one-variable query (Q01: keyed probe) and one
    // two-variable query (Q09: substitution join) per type.
    for (int qnum : {1, 9}) {
      std::string text = (*bench)->QueryText(qnum);
      if (text.empty()) continue;  // not applicable to this type
      auto explained = (*bench)->db()->Explain(text);
      ASSERT_TRUE(explained.ok())
          << "Q" << qnum << " " << explained.status().ToString();
      auto run = (*bench)->db()->Execute(text);
      ASSERT_TRUE(run.ok()) << "Q" << qnum << " " << run.status().ToString();
      ASSERT_NE(run->plan, nullptr) << "Q" << qnum;
      // The plan explain predicted is byte-for-byte the plan that ran.
      EXPECT_EQ(*explained, run->plan->Describe(/*with_stats=*/false))
          << DbTypeName(type) << " Q" << qnum;
      EXPECT_TRUE(run->plan->root->stats.executed);
      // The executed plan really did the work it claims: the access path
      // surfaced at least one version and read at least one page.
      const AccessNode* access = AccessOf(
          run->plan->root->child->kind == PlanNode::Kind::kSubstitution
              ? static_cast<const SubstitutionNode*>(
                    run->plan->root->child.get())
                    ->outer.get()
              : run->plan->root->child.get());
      ASSERT_NE(access, nullptr) << DbTypeName(type) << " Q" << qnum;
      EXPECT_TRUE(access->stats.executed);
      EXPECT_GE(access->stats.rows_examined, 1u);
    }
  }
}

// The bench Measure now records the plan that produced its counts.
TEST(ExplainAcceptanceTest, MeasureCarriesPlan) {
  bench::WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.ntuples = 64;
  auto bench = bench::BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  auto m = (*bench)->RunQuery(1);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_FALSE(m->plan.empty());
  EXPECT_NE(m->plan_tree.find("[loops="), std::string::npos) << m->plan_tree;
}

}  // namespace
}  // namespace tdb
