// Tests of the session layer and the consolidated options chain:
//
//   * DatabaseOptions::FromEnv — the single place TDB_* levers are read;
//   * precedence — DatabaseOptions beats the environment, SessionOptions
//     beats DatabaseOptions (observed through session behavior);
//   * Session as client state — own range declarations, own temp files,
//     pinned as-of snapshots, and mutating statements that always stamp
//     the live clock;
//   * the embedded wrappers staying exact: Database::Execute is the
//     default session, byte-for-byte.

#include "core/session.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "core/database.h"
#include "env/env.h"
#include "exec/morsel.h"
#include "exec/worker_pool.h"

namespace tdb {
namespace {

/// Saves and restores one environment variable around a test.
class EnvVarGuard {
 public:
  explicit EnvVarGuard(const char* name) : name_(name) {
    const char* v = std::getenv(name);
    if (v != nullptr) saved_ = v;
    ::unsetenv(name);
  }
  ~EnvVarGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(FromEnvTest, AbsentVariablesLeaveEveryFieldUnset) {
  EnvVarGuard g1("TDB_VECTOR_EXEC"), g2("TDB_MORSEL_CAP");
  EnvVarGuard g3("TDB_EXEC_THREADS"), g4("TDB_JOIN_METHOD");
  EnvVarGuard g5("TDB_COMPILED_EXPR"), g6("TDB_METRICS");
  DatabaseOptions o = DatabaseOptions::FromEnv();
  EXPECT_FALSE(o.vector_exec.has_value());
  EXPECT_EQ(o.morsel_capacity, 0);
  EXPECT_EQ(o.exec_threads, 0);
  EXPECT_FALSE(o.join_method.has_value());
  EXPECT_FALSE(o.compiled_expr.has_value());
  EXPECT_FALSE(o.metrics.has_value());
}

TEST(FromEnvTest, ReadsEveryLever) {
  EnvVarGuard g1("TDB_VECTOR_EXEC"), g2("TDB_MORSEL_CAP");
  EnvVarGuard g3("TDB_EXEC_THREADS"), g4("TDB_JOIN_METHOD");
  EnvVarGuard g5("TDB_COMPILED_EXPR"), g6("TDB_METRICS");
  ::setenv("TDB_VECTOR_EXEC", "0", 1);
  ::setenv("TDB_MORSEL_CAP", "256", 1);
  ::setenv("TDB_EXEC_THREADS", "4", 1);
  ::setenv("TDB_JOIN_METHOD", "cost", 1);
  ::setenv("TDB_COMPILED_EXPR", "1", 1);
  ::setenv("TDB_METRICS", "0", 1);
  DatabaseOptions o = DatabaseOptions::FromEnv();
  EXPECT_EQ(o.vector_exec, std::optional<bool>(false));
  EXPECT_EQ(o.morsel_capacity, 256);
  EXPECT_EQ(o.exec_threads, 4);
  ASSERT_TRUE(o.join_method.has_value());
  EXPECT_EQ(*o.join_method, JoinMethod::kAuto);
  EXPECT_EQ(o.compiled_expr, std::optional<bool>(true));
  EXPECT_EQ(o.metrics, std::optional<bool>(false));
}

TEST(FromEnvTest, DatabaseOptionsBeatTheEnvironment) {
  EnvVarGuard g1("TDB_VECTOR_EXEC"), g2("TDB_MORSEL_CAP");
  EnvVarGuard g3("TDB_EXEC_THREADS");
  ::setenv("TDB_VECTOR_EXEC", "1", 1);
  ::setenv("TDB_MORSEL_CAP", "256", 1);
  ::setenv("TDB_EXEC_THREADS", "8", 1);
  // An explicit per-database option wins over the environment...
  EXPECT_FALSE(ResolveVectorExec(std::optional<bool>(false)));
  EXPECT_EQ(ResolveMorselCapacity(32), 32u);
  EXPECT_EQ(ResolveExecThreads(2), 2);
  // ...and the unset value falls through to it.
  EXPECT_TRUE(ResolveVectorExec(std::nullopt));
  EXPECT_EQ(ResolveMorselCapacity(0), 256u);
  EXPECT_EQ(ResolveExecThreads(0), 8);
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.env = &env_;
    auto db = Database::Open("/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  int64_t Count(Session* s, const std::string& rel_var) {
    auto rows = s->Query("retrieve (n = count(" + rel_var + ".sal))");
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? rows->rows[0][0].AsInt() : -1;
  }

  MemEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(SessionTest, RangeDeclarationsArePerSession) {
  ASSERT_TRUE(db_->Execute("create emp (name = c8, sal = i4)").ok());
  auto s1 = db_->CreateSession();
  auto s2 = db_->CreateSession();
  ASSERT_TRUE(s1->Execute("range of e is emp").ok());
  // s2 never declared e: binding must fail there, succeed in s1.
  EXPECT_TRUE(s1->Execute("retrieve (e.name)").ok());
  EXPECT_FALSE(s2->Execute("retrieve (e.name)").ok());
  EXPECT_EQ(s1->ranges().count("e"), 1u);
  EXPECT_EQ(s2->ranges().count("e"), 0u);
}

TEST_F(SessionTest, PinnedAsOfFreezesReadsButNotWrites) {
  ASSERT_TRUE(db_->ExecuteScript("create persistent emp (sal = i4);"
                                 "range of e is emp;"
                                 "append to emp (sal = 100)")
                  .ok());
  auto session = db_->CreateSession();
  ASSERT_TRUE(session->Execute("range of e is emp").ok());
  const TimePoint pin = db_->now();
  db_->AdvanceSeconds(1);  // move past the pin instant

  // More data arrives after the pin instant.
  ASSERT_TRUE(db_->Execute("append to emp (sal = 200)").ok());
  ASSERT_EQ(Count(session.get(), "e"), 2);

  session->PinAsOf(pin);
  EXPECT_EQ(Count(session.get(), "e"), 1);  // the world as of `pin`

  // A mutating statement through the pinned session stamps the live
  // clock — history cannot be written into — and the pin then hides it.
  ASSERT_TRUE(session->Execute("append to emp (sal = 300)").ok());
  EXPECT_EQ(Count(session.get(), "e"), 1);

  session->PinAsOf(std::nullopt);
  EXPECT_EQ(Count(session.get(), "e"), 3);
}

TEST_F(SessionTest, SessionSeesOtherSessionsCommittedWrites) {
  ASSERT_TRUE(db_->ExecuteScript("create emp (sal = i4);"
                                 "range of e is emp")
                  .ok());
  auto writer = db_->CreateSession();
  auto reader = db_->CreateSession();
  ASSERT_TRUE(writer->Execute("range of e is emp").ok());
  ASSERT_TRUE(reader->Execute("range of e is emp").ok());
  ASSERT_EQ(Count(reader.get(), "e"), 0);
  ASSERT_TRUE(writer->Execute("append to emp (sal = 1)").ok());
  // The statement committed and its locks dropped: visible at the
  // reader's next statement.
  EXPECT_EQ(Count(reader.get(), "e"), 1);
}

TEST_F(SessionTest, DdlInOneSessionInvalidatesOthers) {
  ASSERT_TRUE(db_->Execute("create emp (sal = i4)").ok());
  auto s1 = db_->CreateSession();
  auto s2 = db_->CreateSession();
  ASSERT_TRUE(s1->ExecuteScript("range of e is emp;"
                                "append to emp (sal = 1)")
                  .ok());
  ASSERT_TRUE(s2->Execute("range of e is emp").ok());
  ASSERT_EQ(Count(s2.get(), "e"), 1);
  // s1 rebuilds the relation's files; s2's cached handle must not
  // survive into its next statement.
  ASSERT_TRUE(s1->Execute("modify emp to hash on sal").ok());
  EXPECT_EQ(Count(s2.get(), "e"), 1);
}

TEST_F(SessionTest, PerSessionExecOptionsAreHonored) {
  ASSERT_TRUE(db_->ExecuteScript("create emp (sal = i4);"
                                 "range of e is emp;"
                                 "append to emp (sal = 7)")
                  .ok());
  // Same statement, one session vectorized and one tuple-at-a-time, one
  // session single-threaded and one with a worker pool: results must be
  // identical, which is only interesting if the options actually reach
  // the executor (covered structurally by MakeExecEnv resolving
  // session > database > environment for every knob).
  SessionOptions tuple_opts;
  tuple_opts.vector_exec = false;
  tuple_opts.exec_threads = 1;
  SessionOptions vector_opts;
  vector_opts.vector_exec = true;
  vector_opts.exec_threads = 2;
  vector_opts.morsel_capacity = 4;
  auto s1 = db_->CreateSession(tuple_opts);
  auto s2 = db_->CreateSession(vector_opts);
  ASSERT_TRUE(s1->Execute("range of e is emp").ok());
  ASSERT_TRUE(s2->Execute("range of e is emp").ok());
  EXPECT_EQ(Count(s1.get(), "e"), 1);
  EXPECT_EQ(Count(s2.get(), "e"), 1);
  EXPECT_EQ(s1->options().vector_exec, std::optional<bool>(false));
  EXPECT_EQ(s2->options().morsel_capacity, 4);
}

TEST_F(SessionTest, ErrorsCarryStatementContextThroughSessions) {
  auto session = db_->CreateSession();
  auto result = session->ExecuteScript("create emp (sal = i4);"
                                       "range of e is nope");
  ASSERT_FALSE(result.ok());
  ASSERT_NE(result.status().statement_context(), nullptr);
  EXPECT_EQ(result.status().statement_context()->statement_index, 2);
}

TEST_F(SessionTest, EmbeddedWrappersStillWorkAfterSessionsExist) {
  ASSERT_TRUE(db_->Execute("create emp (sal = i4)").ok());
  auto session = db_->CreateSession();  // flips concurrent mode
  ASSERT_TRUE(session->Execute("range of e is emp").ok());
  // The embedded wrappers route through the default session on the
  // concurrent path now; they must keep working mid-flight.
  ASSERT_TRUE(db_->ExecuteScript("range of e is emp;"
                                 "append to emp (sal = 1)")
                  .ok());
  EXPECT_EQ(Count(session.get(), "e"), 1);
}

}  // namespace
}  // namespace tdb
