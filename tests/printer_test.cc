// Tests of the TQuel pretty printer, including the print -> reparse ->
// print fixed-point property over a corpus of statements, and a stronger
// property over randomly GENERATED ASTs: print the tree, re-parse the
// text, and require the parsed tree to be structurally identical to the
// generated one.  The generator respects two parser normalizations that
// make certain shapes unreachable from text — `a overlap b` always binds
// at the temporal-expression level (so TemporalPred::kOverlap is never
// produced; non-emptiness of the intersection is the same meaning), and
// unary minus folds into numeric literals — and otherwise explores the
// full grammar, including predicate trees (`or` under `and`, nested
// `not`) that only parse thanks to predicate grouping parentheses.

#include "tquel/printer.h"

#include <gtest/gtest.h>

#include "tquel/parser.h"
#include "util/random.h"

namespace tdb {
namespace {

std::string Print(const std::string& text) {
  auto stmt = Parser::ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << " -> " << stmt.status().ToString();
  if (!stmt.ok()) return "";
  return PrintStatement(**stmt);
}

TEST(PrinterTest, CanonicalForms) {
  EXPECT_EQ(Print("range of h is temporal_h"), "range of h is temporal_h");
  EXPECT_EQ(Print("retrieve (h.id)"), "retrieve (h.id)");
  EXPECT_EQ(Print("append emp (sal = 1)"), "append to emp (sal = 1)");
  EXPECT_EQ(Print("destroy r"), "destroy r");
  EXPECT_EQ(Print("copy r from \"/f\""), "copy r from \"/f\"");
  EXPECT_EQ(Print("create persistent interval r (a = i4, s = c96)"),
            "create persistent interval r (a = i4, s = c96)");
}

// Property: printing is a fixed point — parse(print(parse(text))) prints
// identically.  Run over a corpus covering every statement and clause.
class PrintRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrintRoundTrip, PrintParsePrintIsStable) {
  auto first = Parser::ParseStatement(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << " -> "
                          << first.status().ToString();
  std::string printed = PrintStatement(**first);
  auto second = Parser::ParseStatement(printed);
  ASSERT_TRUE(second.ok()) << "reparse failed: " << printed << " -> "
                           << second.status().ToString();
  EXPECT_EQ(PrintStatement(**second), printed) << "original: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PrintRoundTrip,
    ::testing::Values(
        "range of h is temporal_h",
        "retrieve (h.id, h.seq) where h.id = 500",
        "retrieve into out unique (h.id) sort by id desc, seq",
        "retrieve (h.id) when h overlap \"now\"",
        "retrieve (h.id, h.seq) as of \"08:00 1/1/80\"",
        "retrieve (h.id) as of \"1980\" through \"1981\"",
        "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
        "valid from start of (h overlap i) to end of (h extend i) "
        "where h.id = 500 and i.amount = 73700 "
        "when h overlap i as of \"now\"",
        "retrieve (h.id) valid from start of h to end of i "
        "when start of h precede i as of \"4:00 1/1/80\"",
        "retrieve (h.id) when not h overlap i and h equal i or "
        "i precede h",
        "retrieve (x = h.a + 2 * h.b - -3, y = h.a / h.b % 4)",
        "retrieve (n = count(e.sal by e.dept where e.sal > 0), "
        "m = avg(e.sal))",
        "retrieve (h.id) where h.a = \"text\" or not h.b != 1.5",
        "retrieve (h.id) valid at \"now\"",
        "append to emp (name = \"ann\", sal = 100) "
        "valid from \"1/1/80\" to \"forever\" where e.x = 1",
        "delete e where e.sal < 0 valid at \"1981\"",
        "replace e (sal = e.sal * 2) when e overlap \"now\"",
        "create r (a = i4)",
        "create persistent event log (msg = c64)",
        "modify r to hash on id where fillfactor = 50",
        "modify r to twolevel isam on id where fillfactor = 100, "
        "history = clustered",
        "modify r to btree on id",
        "modify r to heap",
        "index on r is am (amount) with structure = hash, levels = 2",
        "copy r to \"/dump.tsv\""));

// --- Random-AST round trip ----------------------------------------------

const char* const kVars[] = {"h", "i", "e"};
const char* const kAttrs[] = {"id", "seq", "amount", "sal", "tag"};

std::unique_ptr<Expr> GenScalar(Random& rng, int depth);

std::unique_ptr<Expr> GenAtom(Random& rng) {
  switch (rng.Uniform(4)) {
    case 0:
      return Expr::Int(static_cast<int64_t>(rng.Uniform(1000)));
    case 1: {
      const double pool[] = {0.5, 1.5, 2.25, 10.75};
      return Expr::Float(pool[rng.Uniform(4)]);
    }
    case 2:
      return Expr::Str(rng.NextString(3));
    default:
      return Expr::Column(kVars[rng.Uniform(3)], kAttrs[rng.Uniform(5)]);
  }
}

std::unique_ptr<Expr> GenArith(Random& rng, int depth) {
  if (depth <= 0 || rng.Uniform(2) == 0) {
    // Unary minus folds into numeric literals at parse time, so it is
    // only generated over columns (where the tree shape survives).
    if (rng.Uniform(6) == 0) {
      return Expr::Unary(ExprOp::kNeg,
                         Expr::Column(kVars[rng.Uniform(3)],
                                      kAttrs[rng.Uniform(5)]));
    }
    return GenAtom(rng);
  }
  const ExprOp ops[] = {ExprOp::kAdd, ExprOp::kSub, ExprOp::kMul, ExprOp::kDiv,
                        ExprOp::kMod};
  return Expr::Binary(ops[rng.Uniform(5)], GenArith(rng, depth - 1),
                      GenArith(rng, depth - 1));
}

std::unique_ptr<Expr> GenComparison(Random& rng, int depth) {
  const ExprOp ops[] = {ExprOp::kEq, ExprOp::kNe, ExprOp::kLt,
                        ExprOp::kLe,  ExprOp::kGt, ExprOp::kGe};
  return Expr::Binary(ops[rng.Uniform(6)], GenArith(rng, depth),
                      GenArith(rng, depth));
}

/// Boolean structure over comparisons: and/or/not nesting.
std::unique_ptr<Expr> GenScalar(Random& rng, int depth) {
  if (depth <= 0 || rng.Uniform(2) == 0) return GenComparison(rng, 2);
  switch (rng.Uniform(3)) {
    case 0:
      return Expr::Binary(ExprOp::kAnd, GenScalar(rng, depth - 1),
                          GenScalar(rng, depth - 1));
    case 1:
      return Expr::Binary(ExprOp::kOr, GenScalar(rng, depth - 1),
                          GenScalar(rng, depth - 1));
    default:
      return Expr::Unary(ExprOp::kNot, GenScalar(rng, depth - 1));
  }
}

std::unique_ptr<TemporalExpr> GenTemporalPrimary(Random& rng, int depth) {
  switch (rng.Uniform(depth > 0 ? 5 : 3)) {
    case 0:
      return TemporalExpr::Var(kVars[rng.Uniform(3)]);
    case 1:
      return TemporalExpr::Now();
    case 2: {
      const char* const pool[] = {"1981", "08:00 1/1/80", "forever"};
      auto tp = TimePoint::Parse(pool[rng.Uniform(3)]);
      EXPECT_TRUE(tp.ok());
      return TemporalExpr::Const(*tp);
    }
    case 3: {
      TemporalExpr::Kind k = rng.Uniform(2) == 0 ? TemporalExpr::Kind::kStartOf
                                                 : TemporalExpr::Kind::kEndOf;
      return TemporalExpr::Make(k, GenTemporalPrimary(rng, depth - 1), nullptr);
    }
    default: {
      TemporalExpr::Kind k = rng.Uniform(2) == 0 ? TemporalExpr::Kind::kOverlap
                                                 : TemporalExpr::Kind::kExtend;
      return TemporalExpr::Make(k, GenTemporalPrimary(rng, depth - 1),
                                GenTemporalPrimary(rng, depth - 1));
    }
  }
}

std::unique_ptr<TemporalPred> GenTemporalPred(Random& rng, int depth) {
  auto p = std::make_unique<TemporalPred>();
  if (depth > 0 && rng.Uniform(2) == 0) {
    switch (rng.Uniform(3)) {
      case 0:
        p->kind = TemporalPred::Kind::kAnd;
        break;
      case 1:
        p->kind = TemporalPred::Kind::kOr;
        break;
      default:
        p->kind = TemporalPred::Kind::kNot;
        p->left = GenTemporalPred(rng, depth - 1);
        return p;
    }
    p->left = GenTemporalPred(rng, depth - 1);
    p->right = GenTemporalPred(rng, depth - 1);
    return p;
  }
  switch (rng.Uniform(3)) {
    case 0:
      p->kind = TemporalPred::Kind::kPrecede;
      break;
    case 1:
      p->kind = TemporalPred::Kind::kEqual;
      break;
    default:
      // Bare interval expression (non-emptiness test) — `overlap`
      // comparisons are spelled this way by the grammar.
      p->kind = TemporalPred::Kind::kNonEmpty;
      p->lexpr = GenTemporalPrimary(rng, 2);
      return p;
  }
  p->lexpr = GenTemporalPrimary(rng, 2);
  p->rexpr = GenTemporalPrimary(rng, 2);
  return p;
}

// Structural equality, ignoring binder annotations (both sides unbound).
bool Eq(const Expr* a, const Expr* b);
bool Eq(const TemporalExpr* a, const TemporalExpr* b);
bool Eq(const TemporalPred* a, const TemporalPred* b);

bool Eq(const Expr* a, const Expr* b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Expr::Kind::kConstInt:
      return a->int_val == b->int_val;
    case Expr::Kind::kConstFloat:
      return a->float_val == b->float_val;
    case Expr::Kind::kConstString:
      return a->str_val == b->str_val;
    case Expr::Kind::kColumn:
      return a->var == b->var && a->attr == b->attr;
    case Expr::Kind::kBinary:
    case Expr::Kind::kUnary:
      return a->op == b->op && Eq(a->left.get(), b->left.get()) &&
             Eq(a->right.get(), b->right.get());
    case Expr::Kind::kAggregate:
      return a->agg == b->agg && Eq(a->agg_arg.get(), b->agg_arg.get()) &&
             Eq(a->agg_by.get(), b->agg_by.get()) &&
             Eq(a->agg_where.get(), b->agg_where.get());
  }
  return false;
}

bool Eq(const TemporalExpr* a, const TemporalExpr* b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind != b->kind) return false;
  if (a->var != b->var) return false;
  if (a->kind == TemporalExpr::Kind::kConst &&
      a->const_time.ToString() != b->const_time.ToString()) {
    return false;
  }
  return Eq(a->left.get(), b->left.get()) && Eq(a->right.get(), b->right.get());
}

bool Eq(const TemporalPred* a, const TemporalPred* b) {
  if (a == nullptr || b == nullptr) return a == b;
  return a->kind == b->kind && Eq(a->lexpr.get(), b->lexpr.get()) &&
         Eq(a->rexpr.get(), b->rexpr.get()) &&
         Eq(a->left.get(), b->left.get()) && Eq(a->right.get(), b->right.get());
}

bool Eq(const std::optional<ValidClause>& a,
        const std::optional<ValidClause>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->at == b->at && Eq(a->from.get(), b->from.get()) &&
         Eq(a->to.get(), b->to.get());
}

bool Eq(const std::optional<AsOfClause>& a,
        const std::optional<AsOfClause>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return Eq(a->at.get(), b->at.get()) && Eq(a->through.get(), b->through.get());
}

bool Eq(const std::vector<TargetItem>& a, const std::vector<TargetItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || !Eq(a[i].expr.get(), b[i].expr.get())) {
      return false;
    }
  }
  return true;
}

bool EqStatement(const Statement& a, const Statement& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Statement::Kind::kRetrieve: {
      const auto& x = static_cast<const RetrieveStmt&>(a);
      const auto& y = static_cast<const RetrieveStmt&>(b);
      if (x.into != y.into || x.unique != y.unique) return false;
      if (!Eq(x.targets, y.targets) || !Eq(x.valid, y.valid) ||
          !Eq(x.where.get(), y.where.get()) ||
          !Eq(x.when.get(), y.when.get()) || !Eq(x.as_of, y.as_of)) {
        return false;
      }
      if (x.sort_by.size() != y.sort_by.size()) return false;
      for (size_t i = 0; i < x.sort_by.size(); ++i) {
        if (x.sort_by[i].target != y.sort_by[i].target ||
            x.sort_by[i].descending != y.sort_by[i].descending) {
          return false;
        }
      }
      return true;
    }
    case Statement::Kind::kDelete: {
      const auto& x = static_cast<const DeleteStmt&>(a);
      const auto& y = static_cast<const DeleteStmt&>(b);
      return x.var == y.var && Eq(x.valid, y.valid) &&
             Eq(x.where.get(), y.where.get()) && Eq(x.when.get(), y.when.get());
    }
    case Statement::Kind::kReplace: {
      const auto& x = static_cast<const ReplaceStmt&>(a);
      const auto& y = static_cast<const ReplaceStmt&>(b);
      return x.var == y.var && Eq(x.targets, y.targets) &&
             Eq(x.valid, y.valid) && Eq(x.where.get(), y.where.get()) &&
             Eq(x.when.get(), y.when.get());
    }
    case Statement::Kind::kAppend: {
      const auto& x = static_cast<const AppendStmt&>(a);
      const auto& y = static_cast<const AppendStmt&>(b);
      return x.relation == y.relation && Eq(x.targets, y.targets) &&
             Eq(x.valid, y.valid) && Eq(x.where.get(), y.where.get()) &&
             Eq(x.when.get(), y.when.get());
    }
    default:
      return false;
  }
}

void GenTail(Random& rng, std::optional<ValidClause>* valid,
             std::unique_ptr<Expr>* where, std::unique_ptr<TemporalPred>* when,
             std::optional<AsOfClause>* as_of) {
  if (rng.Uniform(3) == 0) {
    ValidClause v;
    if (rng.Uniform(2) == 0) {
      v.at = true;
      v.from = GenTemporalPrimary(rng, 2);
    } else {
      v.from = GenTemporalPrimary(rng, 2);
      v.to = GenTemporalPrimary(rng, 2);
    }
    *valid = std::move(v);
  }
  if (rng.Uniform(2) == 0) *where = GenScalar(rng, 2);
  if (rng.Uniform(2) == 0) *when = GenTemporalPred(rng, 3);
  if (as_of != nullptr && rng.Uniform(3) == 0) {
    AsOfClause c;
    c.at = GenTemporalPrimary(rng, 1);
    if (rng.Uniform(2) == 0) c.through = GenTemporalPrimary(rng, 1);
    *as_of = std::move(c);
  }
}

std::unique_ptr<Statement> GenStatement(Random& rng) {
  switch (rng.Uniform(5)) {
    case 0: {
      auto s = std::make_unique<DeleteStmt>();
      s->var = kVars[rng.Uniform(3)];
      GenTail(rng, &s->valid, &s->where, &s->when, nullptr);
      return s;
    }
    case 1: {
      auto s = std::make_unique<ReplaceStmt>();
      s->var = kVars[rng.Uniform(3)];
      s->targets.push_back(TargetItem{kAttrs[rng.Uniform(5)], GenArith(rng, 2)});
      GenTail(rng, &s->valid, &s->where, &s->when, nullptr);
      return s;
    }
    case 2: {
      auto s = std::make_unique<AppendStmt>();
      s->relation = "rel_" + rng.NextString(3);
      size_t n = 1 + rng.Uniform(3);
      for (size_t t = 0; t < n; ++t) {
        s->targets.push_back(
            TargetItem{kAttrs[rng.Uniform(5)], GenArith(rng, 1)});
      }
      GenTail(rng, &s->valid, &s->where, &s->when, nullptr);
      return s;
    }
    default: {
      auto s = std::make_unique<RetrieveStmt>();
      if (rng.Uniform(4) == 0) s->into = "out_" + rng.NextString(2);
      if (rng.Uniform(4) == 0) s->unique = true;
      size_t n = 1 + rng.Uniform(3);
      for (size_t t = 0; t < n; ++t) {
        if (rng.Uniform(3) == 0) {
          // Bare column target (no rename).
          s->targets.push_back(TargetItem{
              "", Expr::Column(kVars[rng.Uniform(3)], kAttrs[rng.Uniform(5)])});
        } else if (rng.Uniform(6) == 0) {
          auto agg = std::make_unique<Expr>();
          agg->kind = Expr::Kind::kAggregate;
          const AggFunc funcs[] = {AggFunc::kCount, AggFunc::kSum,
                                   AggFunc::kAvg,   AggFunc::kMin,
                                   AggFunc::kMax,   AggFunc::kAny};
          agg->agg = funcs[rng.Uniform(6)];
          agg->agg_arg =
              Expr::Column(kVars[rng.Uniform(3)], kAttrs[rng.Uniform(5)]);
          if (rng.Uniform(2) == 0) {
            agg->agg_by =
                Expr::Column(kVars[rng.Uniform(3)], kAttrs[rng.Uniform(5)]);
          }
          if (rng.Uniform(3) == 0) agg->agg_where = GenComparison(rng, 1);
          s->targets.push_back(
              TargetItem{"n" + std::to_string(t), std::move(agg)});
        } else {
          s->targets.push_back(
              TargetItem{"x" + std::to_string(t), GenArith(rng, 2)});
        }
      }
      GenTail(rng, &s->valid, &s->where, &s->when, &s->as_of);
      if (rng.Uniform(4) == 0 && !s->targets.empty() &&
          !s->targets[0].name.empty()) {
        s->sort_by.push_back(SortKey{s->targets[0].name, rng.Uniform(2) == 0});
      }
      return s;
    }
  }
}

TEST(PrinterPropertyTest, RandomAstPrintParseRoundTrip) {
  for (uint64_t seed = 1; seed <= 500; ++seed) {
    Random rng(seed);
    std::unique_ptr<Statement> original = GenStatement(rng);
    std::string printed = PrintStatement(*original);
    SCOPED_TRACE(testing::Message() << "seed " << seed << ": " << printed);
    auto reparsed = Parser::ParseStatement(printed);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_TRUE(EqStatement(*original, **reparsed))
        << "reparsed prints as: " << PrintStatement(**reparsed);
  }
}

}  // namespace
}  // namespace tdb
