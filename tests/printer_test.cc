// Tests of the TQuel pretty printer, including the print -> reparse ->
// print fixed-point property over a corpus of statements.

#include "tquel/printer.h"

#include <gtest/gtest.h>

#include "tquel/parser.h"

namespace tdb {
namespace {

std::string Print(const std::string& text) {
  auto stmt = Parser::ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << " -> " << stmt.status().ToString();
  if (!stmt.ok()) return "";
  return PrintStatement(**stmt);
}

TEST(PrinterTest, CanonicalForms) {
  EXPECT_EQ(Print("range of h is temporal_h"), "range of h is temporal_h");
  EXPECT_EQ(Print("retrieve (h.id)"), "retrieve (h.id)");
  EXPECT_EQ(Print("append emp (sal = 1)"), "append to emp (sal = 1)");
  EXPECT_EQ(Print("destroy r"), "destroy r");
  EXPECT_EQ(Print("copy r from \"/f\""), "copy r from \"/f\"");
  EXPECT_EQ(Print("create persistent interval r (a = i4, s = c96)"),
            "create persistent interval r (a = i4, s = c96)");
}

// Property: printing is a fixed point — parse(print(parse(text))) prints
// identically.  Run over a corpus covering every statement and clause.
class PrintRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrintRoundTrip, PrintParsePrintIsStable) {
  auto first = Parser::ParseStatement(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << " -> "
                          << first.status().ToString();
  std::string printed = PrintStatement(**first);
  auto second = Parser::ParseStatement(printed);
  ASSERT_TRUE(second.ok()) << "reparse failed: " << printed << " -> "
                           << second.status().ToString();
  EXPECT_EQ(PrintStatement(**second), printed) << "original: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PrintRoundTrip,
    ::testing::Values(
        "range of h is temporal_h",
        "retrieve (h.id, h.seq) where h.id = 500",
        "retrieve into out unique (h.id) sort by id desc, seq",
        "retrieve (h.id) when h overlap \"now\"",
        "retrieve (h.id, h.seq) as of \"08:00 1/1/80\"",
        "retrieve (h.id) as of \"1980\" through \"1981\"",
        "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
        "valid from start of (h overlap i) to end of (h extend i) "
        "where h.id = 500 and i.amount = 73700 "
        "when h overlap i as of \"now\"",
        "retrieve (h.id) valid from start of h to end of i "
        "when start of h precede i as of \"4:00 1/1/80\"",
        "retrieve (h.id) when not h overlap i and h equal i or "
        "i precede h",
        "retrieve (x = h.a + 2 * h.b - -3, y = h.a / h.b % 4)",
        "retrieve (n = count(e.sal by e.dept where e.sal > 0), "
        "m = avg(e.sal))",
        "retrieve (h.id) where h.a = \"text\" or not h.b != 1.5",
        "retrieve (h.id) valid at \"now\"",
        "append to emp (name = \"ann\", sal = 100) "
        "valid from \"1/1/80\" to \"forever\" where e.x = 1",
        "delete e where e.sal < 0 valid at \"1981\"",
        "replace e (sal = e.sal * 2) when e overlap \"now\"",
        "create r (a = i4)",
        "create persistent event log (msg = c64)",
        "modify r to hash on id where fillfactor = 50",
        "modify r to twolevel isam on id where fillfactor = 100, "
        "history = clustered",
        "modify r to btree on id",
        "modify r to heap",
        "index on r is am (amount) with structure = hash, levels = 2",
        "copy r to \"/dump.tsv\""));

}  // namespace
}  // namespace tdb
