// Differential executor fuzz harness: seeded random TQuel retrieves over
// small generated temporal databases, each executed eight ways — compiled
// expressions vs the AST-walking Evaluator, crossed with durability off vs
// the rollback journal, crossed with the vectorized (morsel) engine vs
// tuple-at-a-time — asserting byte-identical result sets.  Any divergence
// pinpoints a semantic bug in exactly one layer (expression compiler,
// journal write path, batch kernels, or executor), which is why this
// harness guards the observability and vectorization PRs: instrumentation
// and batching must never change results.
//
// After every seed the metric invariants are checked on both databases:
// buffer requests == hits + misses, misses == physical reads per file, and
// journal commits == batches with zero rollbacks on a clean run.
//
// Seed count defaults to 25 and is raised in CI via TDB_DIFF_SEEDS (the
// sanitizer job runs 100 under ASan).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "env/env.h"
#include "exec/compiled_expr.h"
#include "exec/morsel.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/stringx.h"

namespace tdb {
namespace {

int NumSeeds() {
  if (const char* env = std::getenv("TDB_DIFF_SEEDS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return 25;
}

struct Instance {
  std::unique_ptr<MemEnv> env;
  std::unique_ptr<Database> db;
};

/// Builds one database instance from `seed`: two interval relations with
/// seed-dependent organizations, a seeded tuple population, and a few
/// update/delete rounds so history chains and (for 50%-style layouts)
/// overflow pages exist.  Both durability modes replay the identical
/// statement sequence, so the page images they query are the same.
Instance MakeInstance(uint64_t seed, DurabilityMode durability) {
  Instance inst;
  inst.env = std::make_unique<MemEnv>();
  DatabaseOptions options;
  options.env = inst.env.get();
  options.durability = durability;
  options.metrics = true;
  auto db = Database::Open("/db", options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return inst;
  inst.db = std::move(db).value();
  Database* d = inst.db.get();

  auto exec = [&](const std::string& text) {
    auto r = d->Execute(text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  };

  Random rng(seed);
  exec("create persistent interval hrel (id = i4, amount = i4, tag = c8)");
  exec("create persistent interval irel (id = i4, amount = i4)");
  exec("range of h is hrel");
  exec("range of i is irel");

  int nrows = 20 + static_cast<int>(rng.Uniform(30));
  for (int t = 0; t < nrows; ++t) {
    exec(StrPrintf("append to hrel (id = %d, amount = %d, tag = \"%s\")", t,
                   static_cast<int>(rng.Uniform(50)),
                   rng.NextString(4).c_str()));
    exec(StrPrintf("append to irel (id = %d, amount = %d)", t,
                   static_cast<int>(rng.Uniform(50))));
    if (rng.Uniform(4) == 0) d->AdvanceSeconds(60);
  }

  // Seed-dependent physical layout: organizations change access paths
  // (keyed probe / ISAM range / scan), which is exactly the variation the
  // differential runs should agree across.
  switch (rng.Uniform(3)) {
    case 0:
      exec("modify hrel to hash on id where fillfactor = 100");
      break;
    case 1:
      exec("modify hrel to isam on id where fillfactor = 50");
      break;
    default:
      break;  // heap
  }
  if (rng.Uniform(2) == 0) {
    exec("modify irel to hash on id where fillfactor = 100");
  }
  if (rng.Uniform(2) == 0) {
    exec("index on hrel is am_idx (amount) with structure = hash");
  }

  // Update and delete rounds create history versions and tombstones.
  int rounds = 1 + static_cast<int>(rng.Uniform(3));
  for (int round = 0; round < rounds; ++round) {
    d->AdvanceSeconds(3600);
    exec(StrPrintf("replace h (amount = h.amount + %d) where h.id < %d",
                   static_cast<int>(rng.Uniform(9)) + 1,
                   static_cast<int>(rng.Uniform(nrows))));
    if (rng.Uniform(2) == 0) {
      exec(StrPrintf("delete h where h.id = %d",
                     static_cast<int>(rng.Uniform(nrows))));
    }
  }
  d->AdvanceSeconds(60);
  return inst;
}

/// Random scalar comparison on `var` (id/amount attributes, small
/// arithmetic), guaranteed valid — no division, no overflow at i4 scale.
std::string GenComparison(Random& rng, const std::string& var) {
  const char* attr = rng.Uniform(2) == 0 ? "id" : "amount";
  const char* op = nullptr;
  switch (rng.Uniform(6)) {
    case 0: op = "="; break;
    case 1: op = "!="; break;
    case 2: op = "<"; break;
    case 3: op = "<="; break;
    case 4: op = ">"; break;
    default: op = ">="; break;
  }
  std::string lhs = var + "." + attr;
  if (rng.Uniform(3) == 0) {
    lhs = StrPrintf("%s + %d", lhs.c_str(), static_cast<int>(rng.Uniform(5)));
  } else if (rng.Uniform(4) == 0) {
    lhs = StrPrintf("%s * 2", lhs.c_str());
  }
  return StrPrintf("%s %s %d", lhs.c_str(), op,
                   static_cast<int>(rng.Uniform(60)));
}

/// Random where clause: one to three comparisons joined by and/or, with an
/// occasional not — exercising the compiler's short-circuit jumps.
std::string GenWhere(Random& rng, const std::string& var) {
  std::string out = GenComparison(rng, var);
  int extra = static_cast<int>(rng.Uniform(3));
  for (int i = 0; i < extra; ++i) {
    const char* join = rng.Uniform(2) == 0 ? " and " : " or ";
    out += join + GenComparison(rng, var);
  }
  if (rng.Uniform(5) == 0) out = "not (" + out + ")";
  return out;
}

/// Random one-variable retrieve over h or i; occasionally a two-variable
/// substitution join.  Never `into` (executions must not mutate state).
std::string GenQuery(Random& rng) {
  if (rng.Uniform(5) == 0) {
    // Join shape: equality conjunct makes one side a keyed/scan inner.
    std::string q = "retrieve (h.id, i.amount) where h.id = i.id";
    if (rng.Uniform(2) == 0) q += " and " + GenComparison(rng, "h");
    if (rng.Uniform(2) == 0) q += " when h overlap i";
    return q;
  }
  std::string var = rng.Uniform(2) == 0 ? "h" : "i";
  std::string q;
  if (var == "h" && rng.Uniform(6) == 0) {
    q = "retrieve (h.id, n = count(h.amount))";  // aggregate fallback path
  } else if (var == "h") {
    q = StrPrintf("retrieve (h.id, x = h.amount + %d, h.tag)",
                  static_cast<int>(rng.Uniform(7)));
  } else {
    q = "retrieve (i.id, i.amount)";
  }
  if (rng.Uniform(4) != 0) q += " where " + GenWhere(rng, var);
  switch (rng.Uniform(5)) {
    case 0:
      q += " when " + var + " overlap \"now\"";
      break;
    case 1:
      q += " when start of " + var + " precede \"now\"";
      break;
    case 2:
      q += " when not " + var + " overlap \"forever\"";
      break;
    default:
      break;
  }
  if (rng.Uniform(4) == 0) q += " as of \"now\"";
  if (rng.Uniform(6) == 0) q += " sort by id desc";
  return q;
}

void CheckMetricInvariants(Database* db, bool journaled) {
  obs::MetricsSnapshot snap = db->Snapshot();
  size_t files = 0;
  for (const auto& [name, value] : snap.counters) {
    const std::string prefix = "bufpool.";
    const std::string suffix = ".requests";
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() < prefix.size() + suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    std::string file = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    ++files;
    SCOPED_TRACE(file);
    EXPECT_EQ(value, snap.counter("bufpool." + file + ".hits") +
                         snap.counter("bufpool." + file + ".misses"));
    EXPECT_EQ(snap.counter("bufpool." + file + ".misses"),
              snap.counter("pager." + file + ".read_pages"));
  }
  EXPECT_GT(files, 0u);
  if (journaled) {
    EXPECT_GT(snap.counter("journal.batches"), 0u);
    EXPECT_EQ(snap.counter("journal.commits"),
              snap.counter("journal.batches"));
    EXPECT_EQ(snap.counter("journal.rollbacks"), 0u);
  }
}

TEST(DifferentialTest, EightWayExecutionAgrees) {
  int seeds = NumSeeds();
  int queries_checked = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    Instance plain = MakeInstance(seed, DurabilityMode::kOff);
    Instance journaled = MakeInstance(seed, DurabilityMode::kJournal);
    ASSERT_NE(plain.db, nullptr);
    ASSERT_NE(journaled.db, nullptr);

    // A separate query stream, so adding a data-generation step never
    // shifts which queries a seed runs.
    Random qrng(seed * 0x9E3779B9ULL + 1);
    for (int qi = 0; qi < 12; ++qi) {
      std::string text = GenQuery(qrng);
      SCOPED_TRACE(text);
      std::vector<std::string> renderings;
      for (bool vec : {true, false}) {
        SetVectorExecEnabledForTest(vec);
        for (bool compiled : {true, false}) {
          SetCompiledExprEnabledForTest(compiled);
          for (Database* db : {plain.db.get(), journaled.db.get()}) {
            auto r = db->Execute(text);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            renderings.push_back(
                r->result.ToString(TimeResolution::kSecond) +
                StrPrintf("(%zu rows)", r->result.num_rows()));
          }
        }
      }
      SetCompiledExprEnabledForTest(std::nullopt);
      SetVectorExecEnabledForTest(std::nullopt);
      ASSERT_EQ(renderings.size(), 8u);
      // {vectorized, tuple} x {compiled, ast} x {off, journal}: everything
      // must agree with the first rendering.
      for (size_t i = 1; i < renderings.size(); ++i) {
        EXPECT_EQ(renderings[0], renderings[i]) << "variant " << i;
      }
      ++queries_checked;
    }
    CheckMetricInvariants(plain.db.get(), /*journaled=*/false);
    CheckMetricInvariants(journaled.db.get(), /*journaled=*/true);
  }
  EXPECT_EQ(queries_checked, seeds * 12);
}

}  // namespace
}  // namespace tdb
