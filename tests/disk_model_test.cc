#include "diskmodel/disk_model.h"

#include <gtest/gtest.h>

#include "benchlib/workload.h"

namespace tdb {
namespace {

TEST(IoTraceTest, DisabledByDefault) {
  IoTrace trace;
  trace.Record(0, 1, false);
  EXPECT_TRUE(trace.events().empty());
  trace.set_enabled(true);
  trace.Record(0, 1, false);
  trace.Record(1, 2, true);
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].page, 1u);
  EXPECT_TRUE(trace.events()[1].write);
  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(DiskModelTest, EmptyTraceCostsNothing) {
  DiskModel model;
  DiskEstimate estimate = model.Estimate({});
  EXPECT_EQ(estimate.total_ms, 0);
  EXPECT_EQ(estimate.random_accesses, 0u);
}

TEST(DiskModelTest, SequentialRunIsCheap) {
  DiskModel model;
  std::vector<IoEvent> events;
  for (uint32_t p = 0; p < 100; ++p) events.push_back({0, p, false});
  DiskEstimate estimate = model.Estimate(events);
  EXPECT_EQ(estimate.random_accesses, 1u);  // only the first access seeks
  EXPECT_EQ(estimate.sequential_accesses, 99u);
  const DiskParameters& params = model.params();
  double expected = params.average_seek_ms + params.rotation_ms / 2 +
                    params.transfer_ms_per_page +
                    99 * params.sequential_ms_per_page;
  EXPECT_NEAR(estimate.total_ms, expected, 1e-9);
}

TEST(DiskModelTest, RandomAccessesPaySeeks) {
  DiskModel model;
  std::vector<IoEvent> events;
  for (uint32_t p = 0; p < 50; ++p) events.push_back({0, p * 7 % 50, false});
  DiskEstimate estimate = model.Estimate(events);
  EXPECT_EQ(estimate.sequential_accesses, 0u);
  EXPECT_EQ(estimate.random_accesses, 50u);
}

TEST(DiskModelTest, FileSwitchBreaksSequentiality) {
  DiskModel model;
  std::vector<IoEvent> events = {
      {0, 0, false}, {0, 1, false}, {1, 2, false}, {0, 2, false}};
  DiskEstimate estimate = model.Estimate(events);
  // 0->1 is sequential within file 0; the file switches are random.
  EXPECT_EQ(estimate.sequential_accesses, 1u);
  EXPECT_EQ(estimate.random_accesses, 3u);
}

TEST(DiskModelTest, CustomParameters) {
  DiskParameters params;
  params.average_seek_ms = 10;
  params.rotation_ms = 4;
  params.transfer_ms_per_page = 1;
  params.sequential_ms_per_page = 1;
  DiskModel model(params);
  DiskEstimate estimate = model.Estimate({{0, 5, false}, {0, 6, false}});
  EXPECT_NEAR(estimate.total_ms, (10 + 2 + 1) + 1, 1e-9);
}

TEST(DiskModelBenchTest, ScansAreMostlySequentialProbesAreNot) {
  bench::WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.ntuples = 256;
  auto bench_db = bench::BenchmarkDb::Create(config);
  ASSERT_TRUE(bench_db.ok());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE((*bench_db)->UniformUpdateRound().ok());
  }
  // Q03: hash-file sequential scan — nearly all accesses sequential.
  auto scan = (*bench_db)->RunQuery(3);
  ASSERT_TRUE(scan.ok());
  EXPECT_GT(scan->sequential_accesses, scan->random_accesses * 10);
  // Q09: probe-heavy join — mostly random.
  auto join = (*bench_db)->RunQuery(9);
  ASSERT_TRUE(join.ok());
  EXPECT_GT(join->random_accesses, join->sequential_accesses / 4);
  EXPECT_GT(join->modeled_ms, scan->modeled_ms);
}

TEST(DiskModelBenchTest, ModeledTimeGrowsWithUpdateCount) {
  bench::WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.ntuples = 256;
  auto bench_db = bench::BenchmarkDb::Create(config);
  ASSERT_TRUE(bench_db.ok());
  auto before = (*bench_db)->RunQuery(1);
  ASSERT_TRUE(before.ok());
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE((*bench_db)->UniformUpdateRound().ok());
  }
  auto after = (*bench_db)->RunQuery(1);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->modeled_ms, before->modeled_ms);
}

}  // namespace
}  // namespace tdb
