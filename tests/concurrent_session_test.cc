// Concurrency tests of the service layer: sessions executing in parallel
// from multiple threads against one Database.
//
//   * snapshot isolation — N pinned readers see a frozen world while a
//     writer commits through it;
//   * serial-replay equivalence — 8 concurrent clients produce exactly
//     the state a serial run of the same statements produces;
//   * writer/writer isolation — per-relation locks serialize writers on
//     one relation, run them in parallel on distinct relations;
//   * group commit — overlapping kJournalSync commits share fsyncs, so
//     journal.group_syncs stays below journal.commits.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/session.h"
#include "env/env.h"

namespace tdb {
namespace {

int64_t Count(Session* s) {
  auto rows = s->Query("retrieve (n = count(e.sal))");
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? rows->rows[0][0].AsInt() : -1;
}

TEST(ConcurrentSessionTest, PinnedReadersSeeFrozenSnapshots) {
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->ExecuteScript("create persistent emp (sal = i4);"
                                  "range of e is emp;"
                                  "append to emp (sal = 100)")
                  .ok());
  const TimePoint pin = (*db)->now();
  // Move the clock past the pin: a write stamped exactly at the pin
  // instant is legitimately visible "as of" it.
  (*db)->AdvanceSeconds(1);

  constexpr int kReaders = 8;
  constexpr int kWriterStatements = 24;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &stop, &failures, pin] {
      auto session = (*db)->CreateSession();
      session->PinAsOf(pin);
      if (!session->Execute("range of e is emp").ok()) {
        failures.fetch_add(1);
        return;
      }
      // Whatever the writer commits, every read through the pin must see
      // exactly the one row that existed at the pin instant.
      while (!stop.load(std::memory_order_acquire)) {
        auto rows = session->Query("retrieve (e.sal)");
        if (!rows.ok() || rows->num_rows() != 1 ||
            rows->rows[0][0].AsInt() != 100) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  {
    auto writer = (*db)->CreateSession();
    ASSERT_TRUE(writer->Execute("range of e is emp").ok());
    for (int i = 0; i < kWriterStatements; ++i) {
      ASSERT_TRUE(writer
                      ->Execute("append to emp (sal = " +
                                std::to_string(1000 + i) + ")")
                      .ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Unpinned, the same database shows everything the writer committed.
  auto check = (*db)->CreateSession();
  ASSERT_TRUE(check->Execute("range of e is emp").ok());
  EXPECT_EQ(Count(check.get()), 1 + kWriterStatements);
}

TEST(ConcurrentSessionTest, EightClientsMatchSerialReplay) {
  constexpr int kClients = 8;
  constexpr int kRowsEach = 20;

  // Concurrent run: every client appends its rows to a shared relation
  // and to its own relation, interleaving freely.
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  {
    std::string setup = "create shared (who = i4, v = i4)";
    for (int c = 0; c < kClients; ++c) {
      setup += ";create own" + std::to_string(c) + " (v = i4)";
    }
    ASSERT_TRUE((*db)->ExecuteScript(setup).ok());
  }
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&db, &failures, c] {
      auto session = (*db)->CreateSession();
      for (int i = 0; i < kRowsEach; ++i) {
        const int v = c * kRowsEach + i;
        std::string script = "append to shared (who = " + std::to_string(c) +
                             ", v = " + std::to_string(v) + ")";
        if (!session->Execute(script).ok()) failures.fetch_add(1);
        script = "append to own" + std::to_string(c) +
                 " (v = " + std::to_string(v) + ")";
        if (!session->Execute(script).ok()) failures.fetch_add(1);
        // A read mixed into the write stream, as a real client would.
        if (!session
                 ->ExecuteScript("range of s is shared;"
                                 "retrieve (n = count(s.v))")
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Serial replay: the same statements, one after another.
  MemEnv serial_env;
  DatabaseOptions serial_options;
  serial_options.env = &serial_env;
  auto serial = Database::Open("/db", serial_options);
  ASSERT_TRUE(serial.ok());
  {
    std::string setup = "create shared (who = i4, v = i4)";
    for (int c = 0; c < kClients; ++c) {
      setup += ";create own" + std::to_string(c) + " (v = i4)";
    }
    ASSERT_TRUE((*serial)->ExecuteScript(setup).ok());
    for (int c = 0; c < kClients; ++c) {
      for (int i = 0; i < kRowsEach; ++i) {
        const int v = c * kRowsEach + i;
        ASSERT_TRUE((*serial)
                        ->Execute("append to shared (who = " +
                                  std::to_string(c) + ", v = " +
                                  std::to_string(v) + ")")
                        .ok());
        ASSERT_TRUE((*serial)
                        ->Execute("append to own" + std::to_string(c) +
                                  " (v = " + std::to_string(v) + ")")
                        .ok());
      }
    }
  }

  // The content must agree relation by relation (sorted: the concurrent
  // interleaving may order the shared relation differently).
  auto dump = [](Database* d, const std::string& rel) {
    std::vector<int64_t> values;
    EXPECT_TRUE(d->Execute("range of x is " + rel).ok());
    auto rows = d->Query("retrieve (x.v) sort by v");
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    if (rows.ok()) {
      for (const Row& r : rows->rows) values.push_back(r[0].AsInt());
    }
    return values;
  };
  EXPECT_EQ(dump(db->get(), "shared"), dump(serial->get(), "shared"));
  for (int c = 0; c < kClients; ++c) {
    const std::string rel = "own" + std::to_string(c);
    EXPECT_EQ(dump(db->get(), rel), dump(serial->get(), rel));
  }
}

TEST(ConcurrentSessionTest, WritersOnOneRelationSerializeCleanly) {
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  options.durability = DurabilityMode::kJournal;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Execute("create acct (v = i4)").ok());

  constexpr int kWriters = 6;
  constexpr int kAppendsEach = 15;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&db, &failures, w] {
      auto session = (*db)->CreateSession();
      for (int i = 0; i < kAppendsEach; ++i) {
        if (!session
                 ->Execute("append to acct (v = " +
                           std::to_string(w * 100 + i) + ")")
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(failures.load(), 0);
  auto check = (*db)->CreateSession();
  ASSERT_TRUE(check->Execute("range of a is acct").ok());
  auto rows = check->Query("retrieve (n = count(a.v))");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].AsInt(), kWriters * kAppendsEach);
}

TEST(ConcurrentSessionTest, GroupCommitSharesFsyncsAcrossWriters) {
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  options.durability = DurabilityMode::kJournalSync;
  options.metrics = true;
  // A generous group window: MemEnv fsyncs are instant, so without the
  // leader holding the door open there would be nothing to batch and the
  // test would measure scheduler luck instead of the mechanism.
  options.group_commit_window_micros = 2000;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());

  constexpr int kWriters = 8;
  constexpr int kAppendsEach = 12;
  {
    std::string setup;
    for (int w = 0; w < kWriters; ++w) {
      if (w > 0) setup += ";";
      setup += "create r" + std::to_string(w) + " (v = i4)";
    }
    ASSERT_TRUE((*db)->ExecuteScript(setup).ok());
  }
  const uint64_t syncs_before =
      (*db)->Snapshot().counters.count("journal.group_syncs") != 0
          ? (*db)->Snapshot().counters.at("journal.group_syncs")
          : 0;

  // Distinct target relations, so the statements overlap freely; the one
  // journal serializes only the Begin..CommitGroup window and the
  // commit-mark fsync happens in WaitDurable, where waiters batch.
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&db, &failures, w] {
      auto session = (*db)->CreateSession();
      for (int i = 0; i < kAppendsEach; ++i) {
        if (!session
                 ->Execute("append to r" + std::to_string(w) + " (v = " +
                           std::to_string(i) + ")")
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(failures.load(), 0);

  auto counters = (*db)->Snapshot().counters;
  const uint64_t total_commits = kWriters * kAppendsEach;
  ASSERT_NE(counters.count("journal.group_syncs"), 0u);
  const uint64_t group_syncs =
      counters.at("journal.group_syncs") - syncs_before;
  EXPECT_GT(group_syncs, 0u);
  // The whole point of group commit: strictly fewer fsyncs than
  // clients x statements.  With a 2ms window and 8 overlapping writers
  // the batching factor is large; "strictly fewer" is the safe floor.
  EXPECT_LT(group_syncs, total_commits);

  // Nothing was lost to the batching: every row is present.
  for (int w = 0; w < kWriters; ++w) {
    auto check = (*db)->CreateSession();
    ASSERT_TRUE(
        check->Execute("range of x is r" + std::to_string(w)).ok());
    auto rows = check->Query("retrieve (n = count(x.v))");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows[0][0].AsInt(), kAppendsEach);
  }
}

}  // namespace
}  // namespace tdb
