// Wire-protocol codec tests: exact round-trips for every payload kind,
// then adversarial decoding — truncated prefixes and random byte soup
// must come back as Status, never crash or over-read.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

namespace tdb {
namespace net {
namespace {

bool ValuesEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case TypeId::kInt1:
    case TypeId::kInt2:
    case TypeId::kInt4:
      return a.AsInt() == b.AsInt();
    case TypeId::kFloat8:
      return a.AsDouble() == b.AsDouble();
    case TypeId::kChar:
      return a.AsString() == b.AsString();
    case TypeId::kTime:
      return a.AsTime() == b.AsTime();
  }
  return false;
}

bool ResultsEqual(const WireResult& a, const WireResult& b) {
  if (a.message != b.message || a.affected != b.affected ||
      a.columns != b.columns || a.rows.size() != b.rows.size()) {
    return false;
  }
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i].size() != b.rows[i].size()) return false;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      if (!ValuesEqual(a.rows[i][j], b.rows[i][j])) return false;
    }
  }
  return true;
}

Value RandomValue(std::mt19937* rng) {
  switch ((*rng)() % 6) {
    case 0:
      return Value::Int1(static_cast<int8_t>((*rng)()));
    case 1:
      return Value::Int2(static_cast<int16_t>((*rng)()));
    case 2:
      return Value::Int4(static_cast<int32_t>((*rng)()));
    case 3: {
      std::uniform_real_distribution<double> d(-1e9, 1e9);
      return Value::Float8(d(*rng));
    }
    case 4: {
      std::string s;
      const size_t len = (*rng)() % 40;
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>((*rng)() % 256));  // binary-safe
      }
      return Value::Char(std::move(s));
    }
    default:
      return Value::Time(TimePoint(static_cast<int32_t>((*rng)())));
  }
}

WireResult RandomResult(std::mt19937* rng) {
  WireResult r;
  const size_t ncols = (*rng)() % 5;
  for (size_t c = 0; c < ncols; ++c) {
    r.columns.push_back("col" + std::to_string(c));
  }
  const size_t nrows = (*rng)() % 8;
  for (size_t i = 0; i < nrows; ++i) {
    Row row;
    for (size_t c = 0; c < ncols; ++c) row.push_back(RandomValue(rng));
    r.rows.push_back(std::move(row));
  }
  r.affected = static_cast<int64_t>((*rng)()) - (1 << 30);
  if ((*rng)() % 2 == 0) r.message = "message " + std::to_string((*rng)());
  return r;
}

TEST(ProtocolTest, RandomResultsRoundTripExactly) {
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<WireResult> results;
    const size_t n = rng() % 4;
    for (size_t i = 0; i < n; ++i) results.push_back(RandomResult(&rng));

    std::vector<uint8_t> payload = EncodeResults(results);
    std::vector<WireResult> decoded;
    Status st = DecodeResults(payload, &decoded);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_EQ(decoded.size(), results.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(ResultsEqual(results[i], decoded[i])) << "iter " << iter;
    }
  }
}

TEST(ProtocolTest, StatusRoundTripsWithAndWithoutContext) {
  Status plain = Status::BindError("relation 'emp' does not exist");
  Status decoded;
  ASSERT_TRUE(DecodeStatus(EncodeStatus(plain), &decoded).ok());
  EXPECT_EQ(decoded.code(), plain.code());
  EXPECT_EQ(decoded.message(), plain.message());
  EXPECT_EQ(decoded.statement_context(), nullptr);

  StatementContext ctx;
  ctx.statement_index = 3;
  ctx.source_offset = 47;
  Status with_ctx = Status::ParseError("bad token").WithStatementContext(ctx);
  ASSERT_TRUE(DecodeStatus(EncodeStatus(with_ctx), &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kParseError);
  ASSERT_NE(decoded.statement_context(), nullptr);
  EXPECT_EQ(*decoded.statement_context(), ctx);
}

TEST(ProtocolTest, EveryTruncationOfAValidPayloadFailsCleanly) {
  std::mt19937 rng(7);
  std::vector<WireResult> results{RandomResult(&rng), RandomResult(&rng)};
  std::vector<uint8_t> payload = EncodeResults(results);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> prefix(payload.begin(), payload.begin() + cut);
    std::vector<WireResult> decoded;
    EXPECT_FALSE(DecodeResults(prefix, &decoded).ok()) << "cut " << cut;
  }
  // Appending junk must also be rejected (AtEnd discipline).
  std::vector<uint8_t> padded = payload;
  padded.push_back(0);
  std::vector<WireResult> decoded;
  EXPECT_FALSE(DecodeResults(padded, &decoded).ok());
}

TEST(ProtocolTest, RandomByteSoupNeverCrashesTheDecoders) {
  std::mt19937 rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> soup(rng() % 200);
    for (uint8_t& b : soup) b = static_cast<uint8_t>(rng());
    std::vector<WireResult> results;
    (void)DecodeResults(soup, &results);  // outcome free, crash forbidden
    Status status;
    (void)DecodeStatus(soup, &status);
  }
}

TEST(ProtocolTest, HostileLengthPrefixesAreBoundedBeforeAllocation) {
  // A claimed element count of 2^32-1 with no bytes behind it must fail
  // on the first element, not attempt a giant reserve.
  std::vector<uint8_t> payload;
  PutU32(&payload, 0xFFFFFFFFu);
  std::vector<WireResult> results;
  EXPECT_FALSE(DecodeResults(payload, &results).ok());

  // Same for a string whose announced length exceeds the payload.
  std::vector<uint8_t> sp;
  PutU8(&sp, static_cast<uint8_t>(StatusCode::kInternal));
  PutU32(&sp, 1u << 30);  // message "length"
  Status status;
  EXPECT_FALSE(DecodeStatus(sp, &status).ok());
}

}  // namespace
}  // namespace net
}  // namespace tdb
