#include "storage/btree_file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "storage_test_util.h"
#include "util/random.h"

namespace tdb {
namespace {

using testutil::DrainKeys;
using testutil::KeyedRecord;
using testutil::SmallLayout;

class BtreeFileTest : public ::testing::Test {
 protected:
  std::unique_ptr<BtreeFile> Create(uint16_t record_size = 32) {
    auto pager = Pager::Open(&env_, "/bt", &counters_);
    EXPECT_TRUE(pager.ok());
    auto file = BtreeFile::Create(std::move(*pager), SmallLayout(record_size));
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    return std::move(file).value();
  }

  MemEnv env_;
  IoCounters counters_;
};

TEST_F(BtreeFileTest, EmptyTreeIsOneLeaf) {
  auto tree = Create();
  EXPECT_EQ(tree->page_count(), 1u);
  EXPECT_EQ(*tree->Height(), 1);
  auto cur = tree->Scan();
  EXPECT_TRUE(DrainKeys(cur->get()).empty());
}

TEST_F(BtreeFileTest, InsertAndLookup) {
  auto tree = Create();
  for (int i = 0; i < 10; ++i) {
    auto rec = KeyedRecord(i * 3);
    Tid tid;
    ASSERT_TRUE(tree->Insert(rec.data(), rec.size(), &tid).ok());
    EXPECT_EQ(*tree->Fetch(tid), rec);
  }
  auto cur = tree->ScanKey(Value::Int4(9));
  EXPECT_EQ(DrainKeys(cur->get()), std::vector<int32_t>{9});
  auto miss = tree->ScanKey(Value::Int4(10));
  EXPECT_TRUE(DrainKeys(miss->get()).empty());
}

TEST_F(BtreeFileTest, RootLeafSplits) {
  auto tree = Create();
  uint16_t cap = static_cast<uint16_t>((kPageSize - 16) / 32);
  for (int i = 0; i < cap + 1; ++i) {
    auto rec = KeyedRecord(i);
    ASSERT_TRUE(tree->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  EXPECT_EQ(*tree->Height(), 2);  // root became internal
  auto cur = tree->Scan();
  auto keys = DrainKeys(cur->get());
  ASSERT_EQ(keys.size(), static_cast<size_t>(cap + 1));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Every key remains findable after the split.
  for (int i = 0; i < cap + 1; ++i) {
    auto probe = tree->ScanKey(Value::Int4(i));
    EXPECT_EQ(DrainKeys(probe->get()), std::vector<int32_t>{i}) << i;
  }
}

TEST_F(BtreeFileTest, GrowsThroughMultipleLevels) {
  auto tree = Create(200);  // 5 records per leaf -> deep tree quickly
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto rec = KeyedRecord(i, 200);
    ASSERT_TRUE(tree->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  EXPECT_GE(*tree->Height(), 3);
  auto cur = tree->Scan();
  auto keys = DrainKeys(cur->get());
  ASSERT_EQ(keys.size(), static_cast<size_t>(n));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_F(BtreeFileTest, ScanRange) {
  auto tree = Create();
  for (int i = 0; i < 300; ++i) {
    auto rec = KeyedRecord(i * 2);
    ASSERT_TRUE(tree->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  auto cur = tree->ScanRange(Value::Int4(100), true, Value::Int4(110), false);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(DrainKeys(cur->get()),
            (std::vector<int32_t>{100, 102, 104, 106, 108}));
  auto open_lo = tree->ScanRange(std::nullopt, true, Value::Int4(6), true);
  EXPECT_EQ(DrainKeys(open_lo->get()), (std::vector<int32_t>{0, 2, 4, 6}));
  auto open_hi = tree->ScanRange(Value::Int4(594), false, std::nullopt, true);
  EXPECT_EQ(DrainKeys(open_hi->get()), (std::vector<int32_t>{596, 598}));
}

TEST_F(BtreeFileTest, DuplicateKeysGrowOverflowChains) {
  auto tree = Create();
  uint16_t cap = static_cast<uint16_t>((kPageSize - 16) / 32);
  // Force a leaf of a single key past its capacity — the paper's
  // multi-version pile-up.  The leaf must chain, not split.
  const int dups = cap * 3;
  for (int i = 0; i < dups; ++i) {
    auto rec = KeyedRecord(7, 32, static_cast<uint8_t>(1 + i % 200));
    ASSERT_TRUE(tree->Insert(rec.data(), rec.size(), nullptr).ok());
  }
  auto cur = tree->ScanKey(Value::Int4(7));
  EXPECT_EQ(DrainKeys(cur->get()).size(), static_cast<size_t>(dups));
  // The keyed access reads the whole chain: ~3 pages.
  ASSERT_TRUE(tree->pager()->FlushAndDrop().ok());
  counters_.Reset();
  auto cur2 = tree->ScanKey(Value::Int4(7));
  (void)DrainKeys(cur2->get());
  EXPECT_GE(counters_.TotalReads(), 3u);
}

TEST_F(BtreeFileTest, MixedDuplicatesAndSplitsStayConsistent) {
  auto tree = Create();
  std::map<int32_t, int> expected;
  Random rng(3);
  for (int i = 0; i < 2000; ++i) {
    int32_t key = static_cast<int32_t>(rng.Uniform(50));
    auto rec = KeyedRecord(key);
    ASSERT_TRUE(tree->Insert(rec.data(), rec.size(), nullptr).ok());
    ++expected[key];
  }
  for (const auto& [key, count] : expected) {
    auto cur = tree->ScanKey(Value::Int4(key));
    EXPECT_EQ(DrainKeys(cur->get()).size(), static_cast<size_t>(count))
        << key;
  }
  auto cur = tree->Scan();
  EXPECT_EQ(DrainKeys(cur->get()).size(), 2000u);
}

TEST_F(BtreeFileTest, EraseAndUpdateInPlace) {
  auto tree = Create();
  Tid tid;
  auto rec = KeyedRecord(5);
  ASSERT_TRUE(tree->Insert(rec.data(), rec.size(), &tid).ok());
  auto updated = KeyedRecord(5, 32, 0x99);
  ASSERT_TRUE(tree->UpdateInPlace(tid, updated.data(), updated.size()).ok());
  EXPECT_EQ(*tree->Fetch(tid), updated);
  ASSERT_TRUE(tree->Erase(tid).ok());
  EXPECT_FALSE(tree->Fetch(tid).ok());
  auto cur = tree->ScanKey(Value::Int4(5));
  EXPECT_TRUE(DrainKeys(cur->get()).empty());
}

TEST_F(BtreeFileTest, PersistsAcrossReopen) {
  {
    auto tree = Create();
    for (int i = 0; i < 500; ++i) {
      auto rec = KeyedRecord(i);
      ASSERT_TRUE(tree->Insert(rec.data(), rec.size(), nullptr).ok());
    }
    ASSERT_TRUE(tree->pager()->Flush().ok());
  }
  auto pager = Pager::Open(&env_, "/bt", &counters_);
  auto tree = BtreeFile::Open(std::move(*pager), SmallLayout());
  ASSERT_TRUE(tree.ok());
  auto cur = (*tree)->ScanKey(Value::Int4(321));
  EXPECT_EQ(DrainKeys(cur->get()), std::vector<int32_t>{321});
  auto all = (*tree)->Scan();
  EXPECT_EQ(DrainKeys(all->get()).size(), 500u);
}

// Property sweep: random inserts at several record sizes; full ordering and
// per-key lookups must always hold.
class BtreeProperty : public ::testing::TestWithParam<uint16_t> {};

TEST_P(BtreeProperty, OrderedAndComplete) {
  MemEnv env;
  IoCounters counters;
  auto pager = Pager::Open(&env, "/bt", &counters);
  auto tree = BtreeFile::Create(std::move(*pager), SmallLayout(GetParam()));
  ASSERT_TRUE(tree.ok());
  Random rng(GetParam());
  std::map<int32_t, int> expected;
  for (int i = 0; i < 1500; ++i) {
    int32_t key = static_cast<int32_t>(rng.Uniform(400));
    auto rec = KeyedRecord(key, GetParam());
    ASSERT_TRUE((*tree)->Insert(rec.data(), rec.size(), nullptr).ok());
    ++expected[key];
  }
  auto cur = (*tree)->Scan();
  auto keys = DrainKeys(cur->get());
  ASSERT_EQ(keys.size(), 1500u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (int probe = 0; probe < 60; ++probe) {
    int32_t key = static_cast<int32_t>(rng.Uniform(400));
    auto c = (*tree)->ScanKey(Value::Int4(key));
    size_t want = expected.count(key) ? static_cast<size_t>(expected[key]) : 0;
    EXPECT_EQ(DrainKeys(c->get()).size(), want) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(RecordSizes, BtreeProperty,
                         ::testing::Values(24, 32, 116, 124, 200));

}  // namespace
}  // namespace tdb
