// Differential tests: a CompiledProgram must be observationally identical
// to the AST-walking Evaluator — same values, same truthiness, same error
// texts, same short-circuit behavior — on every construct it claims to
// support.  The golden I/O test covers the page counts; this covers the
// scalar/temporal semantics.

#include "exec/compiled_expr.h"

#include <gtest/gtest.h>

#include "tquel/parser.h"

namespace tdb {
namespace {

constexpr int32_t kNow = 1000;

std::unique_ptr<Statement> g_stmt;

Expr* ParseExpr(const std::string& text) {
  auto stmt = Parser::ParseStatement("retrieve (x = " + text + ")");
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  g_stmt = std::move(stmt).value();
  return static_cast<RetrieveStmt*>(g_stmt.get())->targets[0].expr.get();
}

TemporalPred* ParsePred(const std::string& text) {
  auto stmt = Parser::ParseStatement("retrieve (h.a) when " + text);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  g_stmt = std::move(stmt).value();
  return static_cast<RetrieveStmt*>(g_stmt.get())->when.get();
}

/// Evaluates `text` both ways against `binding` and checks agreement.
void ExpectSameScalar(const std::string& text, const Binding& binding) {
  Expr* e = ParseExpr(text);
  Evaluator eval{TimePoint(kNow)};
  auto prog = CompiledProgram::CompileExpr(*e);
  ASSERT_TRUE(prog.has_value()) << text << " did not compile";
  auto ast = eval.Eval(*e, binding);
  auto compiled = prog->Eval(binding, TimePoint(kNow));
  ASSERT_EQ(ast.ok(), compiled.ok()) << text;
  if (!ast.ok()) {
    EXPECT_EQ(ast.status().ToString(), compiled.status().ToString()) << text;
    return;
  }
  EXPECT_TRUE(ast->Equals(*compiled))
      << text << ": ast=" << ast->ToString() << " compiled="
      << compiled->ToString();
}

TEST(CompiledExprTest, ConstantsAndArithmetic) {
  Binding none;
  for (const char* text :
       {"1 + 2 * 3", "10 / 3", "10 % 3", "-5 + 2", "1.5 * 2", "7 / 2.0",
        "2 - 3 - 4", "-(1 + 2)", "\"abc\"", "3.25"}) {
    ExpectSameScalar(text, none);
  }
}

TEST(CompiledExprTest, ComparisonsAndLogic) {
  Binding none;
  for (const char* text :
       {"1 < 2", "2 <= 2", "3 > 4", "3 != 3", "\"abc\" = \"abc\"",
        "\"abc\" < \"abd\"", "1 = 1 and 2 = 2", "1 = 2 or 2 = 2",
        "not 1 = 2", "1 = 2 and 1 / 0 = 1", "1 = 1 or 1 / 0 = 1",
        "1 < 2 and 2 < 3 and 3 < 4", "1 = 2 or 2 = 3 or 3 = 3"}) {
    ExpectSameScalar(text, none);
  }
}

TEST(CompiledExprTest, ErrorTextsMatch) {
  Binding none;
  for (const char* text :
       {"1 / 0", "1 % 0", "1.5 % 2", "-\"abc\"", "1 + \"abc\""}) {
    ExpectSameScalar(text, none);
  }
}

TEST(CompiledExprTest, ColumnAccess) {
  VersionRef ref;
  ref.SetRow({Value::Int4(42), Value::Char("zz")});
  Binding binding = {&ref};
  Expr* e = ParseExpr("h.a * 2 + 1");
  auto* col = e->left->left.get();
  col->var_index = 0;
  col->attr_index = 0;
  auto prog = CompiledProgram::CompileExpr(*e);
  ASSERT_TRUE(prog.has_value());
  auto v = prog->Eval(binding, TimePoint(kNow));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->AsInt(), 85);

  // Same program over an unbound slot reports the Evaluator's error text.
  Binding unbound = {nullptr};
  Evaluator eval{TimePoint(kNow)};
  auto ast_err = eval.Eval(*e, unbound);
  auto prog_err = prog->Eval(unbound, TimePoint(kNow));
  ASSERT_FALSE(ast_err.ok());
  ASSERT_FALSE(prog_err.ok());
  EXPECT_EQ(ast_err.status().ToString(), prog_err.status().ToString());
}

TEST(CompiledExprTest, GroupedAggregateDoesNotCompile) {
  Expr* e = ParseExpr("count(h.a by h.b)");
  EXPECT_FALSE(CompiledProgram::CompileExpr(*e).has_value());
}

class CompiledPredTest : public ::testing::Test {
 protected:
  CompiledPredTest() {
    h_.valid = Interval(TimePoint(100), TimePoint(200));
    i_.valid = Interval(TimePoint(150), TimePoint(300));
    binding_ = {&h_, &i_};
  }

  void BindVars(TemporalExpr* e) {
    if (e == nullptr) return;
    if (e->kind == TemporalExpr::Kind::kVar) {
      e->var_index = e->var == "h" ? 0 : 1;
    }
    BindVars(e->left.get());
    BindVars(e->right.get());
  }
  void BindVars(TemporalPred* p) {
    if (p == nullptr) return;
    BindVars(p->lexpr.get());
    BindVars(p->rexpr.get());
    BindVars(p->left.get());
    BindVars(p->right.get());
  }

  void ExpectSamePred(const std::string& text) {
    TemporalPred* pred = ParsePred(text);
    BindVars(pred);
    Evaluator eval{TimePoint(kNow)};
    CompiledProgram prog = CompiledProgram::CompilePred(*pred);
    auto ast = eval.EvalPred(*pred, binding_);
    auto compiled = prog.EvalPred(binding_, TimePoint(kNow));
    ASSERT_EQ(ast.ok(), compiled.ok()) << text;
    if (ast.ok()) {
      EXPECT_EQ(*ast, *compiled) << text;
    }
  }

  VersionRef h_;
  VersionRef i_;
  Binding binding_;
};

TEST_F(CompiledPredTest, AllPredicateShapes) {
  for (const char* text :
       {"h overlap i", "start of h precede i", "i precede h", "h equal h",
        "h equal i", "not i precede h", "h overlap i and h overlap i",
        "i precede h or h overlap i", "h overlap \"now\"",
        "h overlap (start of i extend end of i)",
        "(h overlap i) precede end of i"}) {
    ExpectSamePred(text);
  }
}

TEST_F(CompiledPredTest, EventAndTouchingIntervals) {
  i_.valid = Interval(TimePoint(200), TimePoint(300));
  ExpectSamePred("h overlap i");
  ExpectSamePred("h precede i");
  h_.valid = Interval::Event(TimePoint(250));
  ExpectSamePred("h overlap i");
  h_.valid = Interval::Event(TimePoint(300));
  ExpectSamePred("h overlap i");
}

TEST_F(CompiledPredTest, LazyColumnDecodeThroughPrograms) {
  // A predicate over a raw-bound tuple decodes only the attribute it reads.
  auto schema = Schema::Create({{"a", TypeId::kInt4, 4, false},
                                {"b", TypeId::kChar, 96, false}},
                               DbType::kStatic);
  ASSERT_TRUE(schema.ok());
  Row row = {Value::Int4(7), Value::Char(std::string(96, 'y'))};
  auto rec = EncodeRecord(*schema, row);
  ASSERT_TRUE(rec.ok());
  VersionRef ref;
  ref.BindRaw(*schema, rec->data());
  Binding binding = {&ref};

  Expr* e = ParseExpr("h.a = 7");
  e->left->var_index = 0;
  e->left->attr_index = 0;
  auto prog = CompiledProgram::CompileExpr(*e);
  ASSERT_TRUE(prog.has_value());
  auto v = prog->EvalBool(binding, TimePoint(kNow));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  // The full row is still materializable afterwards.
  EXPECT_EQ(ref.FullRow()[1].ToString(), row[1].ToString());
}

}  // namespace
}  // namespace tdb
