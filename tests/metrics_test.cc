// Tests of the observability layer: metric primitives (counter, gauge,
// log2 histogram), the trace ring buffer, registry snapshots and their
// JSON form, the zero-wiring-when-disabled guarantee, and — the paper
// tie-in — exact buffer-pool/pager counts for Q01 and Q07 on the temporal
// database that must agree with the golden page model in
// paper_metrics_golden.inc.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "benchlib/workload.h"
#include "core/database.h"
#include "env/env.h"
#include "exec/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tdb {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceEvent;
using obs::TraceSink;

/// Scoped override of the TDB_METRICS default, so these tests behave the
/// same whether the suite runs with metrics on (default) or off (CI
/// sanitizer sweeps).
class ScopedMetricsEnabled {
 public:
  explicit ScopedMetricsEnabled(bool enabled) {
    obs::SetMetricsEnabledForTest(enabled);
  }
  ~ScopedMetricsEnabled() { obs::SetMetricsEnabledForTest(std::nullopt); }
};

// --- Primitives ---------------------------------------------------------

TEST(CounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, MovesBothWays) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(HistogramTest, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 64);
}

TEST(HistogramTest, BucketUpperBoundsPartitionTheRange) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~uint64_t{0});
  // Every representable value lands in the bucket its upper bound implies.
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketUpperBound(i)), i);
  }
}

TEST(HistogramTest, RecordAccumulatesCountSumBuckets) {
  Histogram h;
  for (uint64_t v : {0u, 1u, 2u, 3u, 100u}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(7), 1u);  // 100
}

// --- Trace sink ----------------------------------------------------------

TEST(TraceSinkTest, RingKeepsOnlyTheTail) {
  TraceSink sink(4);
  for (int i = 0; i < 6; ++i) {
    sink.Record(TraceEvent{"ev" + std::to_string(i), 0, 0, 0});
  }
  EXPECT_EQ(sink.size(), 4u);
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "ev2");  // oldest retained
  EXPECT_EQ(events.back().name, "ev5");
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSinkTest, SpansRecordNestingDepth) {
  MetricsRegistry registry(/*enabled=*/true);
  {
    obs::TraceSpan outer(&registry, "outer");
    obs::TraceSpan inner(&registry, "inner");
  }
  std::vector<TraceEvent> events = registry.trace()->Events();
  ASSERT_EQ(events.size(), 2u);
  // Inner completes (and records) first, at depth 1.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(registry.trace()->depth(), 0u);
}

TEST(TraceSinkTest, NullRegistryIsANoOp) {
  obs::TraceSpan span(nullptr, "nothing");  // must not crash
}

// --- Registry and snapshots ----------------------------------------------

TEST(MetricsRegistryTest, NamedAccessorsAreStable) {
  MetricsRegistry registry(/*enabled=*/true);
  Counter* a = registry.counter("x");
  a->Add(3);
  EXPECT_EQ(registry.counter("x"), a);
  EXPECT_EQ(registry.counter("x")->value(), 3u);
  EXPECT_EQ(registry.pager("f"), registry.pager("f"));
}

TEST(MetricsRegistryTest, SnapshotFlattensPagerBlocks) {
  MetricsRegistry registry(/*enabled=*/true);
  obs::PagerMetrics* pm = registry.pager("rel_h");
  pm->requests.Add(10);
  pm->hits.Add(7);
  pm->misses.Add(3);
  pm->read_pages.Add(3);
  registry.counter("journal.commits")->Add(2);
  registry.gauge("g")->Set(-5);
  registry.histogram("lat")->Record(7);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("bufpool.rel_h.requests"), 10u);
  EXPECT_EQ(snap.counter("bufpool.rel_h.hits"), 7u);
  EXPECT_EQ(snap.counter("bufpool.rel_h.misses"), 3u);
  EXPECT_EQ(snap.counter("pager.rel_h.read_pages"), 3u);
  EXPECT_EQ(snap.counter("journal.commits"), 2u);
  EXPECT_EQ(snap.counter("no.such.counter"), 0u);
  EXPECT_EQ(snap.gauges.at("g"), -5);
  EXPECT_EQ(snap.histograms.at("lat").count, 1u);
  EXPECT_EQ(snap.histograms.at("lat").sum, 7u);
  EXPECT_EQ(snap.SumCounters("bufpool.", ".requests"), 10u);
  EXPECT_EQ(snap.SumCounters("", ""), 10u + 7u + 3u + 3u + 2u);
}

TEST(MetricsRegistryTest, ToJsonIsWellFormedAndOrdered) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.counter("b")->Add(2);
  registry.counter("a")->Add(1);
  registry.histogram("h")->Record(3);
  std::string json = registry.Snapshot().ToJson();
  // Deterministic: map iteration order, single line.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  size_t a = json.find("\"a\":1");
  size_t b = json.find("\"b\":2");
  ASSERT_NE(a, std::string::npos) << json;
  ASSERT_NE(b, std::string::npos) << json;
  EXPECT_LT(a, b);
  EXPECT_NE(json.find("\"h\":{\"count\":1,\"sum\":3,\"buckets\":[0,0,1]}"),
            std::string::npos)
      << json;
}

// --- Database wiring -----------------------------------------------------

TEST(DatabaseMetricsTest, DisabledRegistryIsNeverWired) {
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  options.metrics = false;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->metrics(), nullptr);
  ASSERT_TRUE((*db)->Execute("create interval r (a = i4)").ok());
  ASSERT_TRUE((*db)->Execute("append to r (a = 1)").ok());
  // No counters exist: nothing in the stack ever touched the registry.
  MetricsSnapshot snap = (*db)->Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(DatabaseMetricsTest, EnvDefaultRespectsOverride) {
  ScopedMetricsEnabled off(false);
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;  // options.metrics left unset -> follows the default
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->metrics(), nullptr);
}

TEST(DatabaseMetricsTest, StatementsAndTracesRecorded) {
  ScopedMetricsEnabled on(true);
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  ASSERT_NE((*db)->metrics(), nullptr);
  ASSERT_TRUE((*db)->Execute("create interval r (a = i4)").ok());
  ASSERT_TRUE((*db)->Execute("append to r (a = 1)").ok());
  ASSERT_TRUE((*db)->Execute("range of t is r\nretrieve (t.a)").ok());

  MetricsSnapshot snap = (*db)->Snapshot();
  EXPECT_EQ(snap.counter("db.statements"), 4u);
  EXPECT_EQ(snap.histograms.at("db.statement_nanos").count, 4u);

  bool saw_statement = false;
  bool saw_retrieve = false;
  for (const TraceEvent& ev : (*db)->metrics()->trace()->Events()) {
    if (ev.name == "db.statement") saw_statement = true;
    if (ev.name == "exec.retrieve") {
      saw_retrieve = true;
      EXPECT_EQ(ev.depth, 1u);  // nested inside the statement span
    }
  }
  EXPECT_TRUE(saw_statement);
  EXPECT_TRUE(saw_retrieve);
}

TEST(DatabaseMetricsTest, JournalCountersBalance) {
  ScopedMetricsEnabled on(true);
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  options.durability = DurabilityMode::kJournal;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Execute("create persistent interval r (a = i4)").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        (*db)->Execute("append to r (a = " + std::to_string(i) + ")").ok());
  }
  MetricsSnapshot snap = (*db)->Snapshot();
  EXPECT_GT(snap.counter("journal.batches"), 0u);
  // Every batch committed cleanly: no rollbacks, no replays.
  EXPECT_EQ(snap.counter("journal.commits"), snap.counter("journal.batches"));
  EXPECT_EQ(snap.counter("journal.rollbacks"), 0u);
  EXPECT_EQ(snap.counter("journal.replay_ops"), 0u);
  EXPECT_GT(snap.counter("journal.records"), 0u);
  EXPECT_GT(snap.counter("journal.pre_image_bytes"), 0u);
}

TEST(DatabaseMetricsTest, SecondaryIndexProbesCounted) {
  ScopedMetricsEnabled on(true);
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->Execute("create persistent interval r (id = i4, amt = i4)")
                  .ok());
  for (int i = 0; i < 10; ++i) {
    auto r = (*db)->Execute("append to r (id = " + std::to_string(i) +
                            ", amt = " + std::to_string(i * 7) + ")");
    ASSERT_TRUE(r.ok());
  }
  ASSERT_TRUE(
      (*db)->Execute("index on r is amt_idx (amt) with structure = hash").ok());
  ASSERT_TRUE((*db)->Execute("range of t is r").ok());
  ASSERT_TRUE((*db)->Execute("retrieve (t.id) where t.amt = 21").ok());
  MetricsSnapshot snap = (*db)->Snapshot();
  EXPECT_GT(snap.counter("index.amt_idx.inserts"), 0u);
  EXPECT_EQ(snap.counter("index.amt_idx.probes"), 1u);
  EXPECT_GE(snap.counter("index.amt_idx.entries_scanned"), 1u);
}

// --- Structural invariants under a real workload -------------------------

/// Per-file invariants: every buffer request is a hit or a miss, and every
/// miss is exactly one physical page read (the one-frame-per-relation
/// paper discipline has no prefetch and no read coalescing).
void CheckPoolInvariants(const MetricsSnapshot& snap) {
  size_t files = 0;
  for (const auto& [name, value] : snap.counters) {
    const std::string prefix = "bufpool.";
    const std::string suffix = ".requests";
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() < prefix.size() + suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    std::string file = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    ++files;
    SCOPED_TRACE(file);
    EXPECT_EQ(value, snap.counter("bufpool." + file + ".hits") +
                         snap.counter("bufpool." + file + ".misses"));
    EXPECT_EQ(snap.counter("bufpool." + file + ".misses"),
              snap.counter("pager." + file + ".read_pages"));
  }
  EXPECT_GT(files, 0u);
}

TEST(MetricsInvariantsTest, BufferPoolBalancesAcrossAWorkload) {
  ScopedMetricsEnabled on(true);
  bench::WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  config.ntuples = 64;
  auto bench = bench::BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE((*bench)->UniformUpdateRound().ok());
  }
  for (int q : {1, 7, 9}) {
    ASSERT_TRUE((*bench)->RunQuery(q).ok());
  }
  CheckPoolInvariants((*bench)->db()->Snapshot());
}

// --- Exact counts tied to the paper's page model -------------------------

/// Runs Qnum on a fresh snapshot window and returns the database-wide
/// buffer miss delta, asserting it equals both the pager read delta and
/// the Measure's input_pages (they count the same physical events).
uint64_t MissesForQuery(bench::BenchmarkDb* bench, int qnum) {
  MetricsSnapshot before = bench->db()->Snapshot();
  auto m = bench->RunQuery(qnum);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  MetricsSnapshot after = bench->db()->Snapshot();
  uint64_t misses = after.SumCounters("bufpool.", ".misses") -
                    before.SumCounters("bufpool.", ".misses");
  uint64_t reads = after.SumCounters("pager.", ".read_pages") -
                   before.SumCounters("pager.", ".read_pages");
  EXPECT_EQ(misses, reads);
  EXPECT_EQ(misses, m->input_pages);
  return misses;
}

TEST(MetricsExactCountTest, TemporalQ01AndQ07MatchGoldenPageModel) {
  ScopedMetricsEnabled on(true);
  bench::WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  auto bench = bench::BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  // paper_metrics_golden.inc, temporal ff=100 uc=0: Q01 = 1 page (keyed
  // hash probe), Q07 = 128 pages (full scan of the 128-page relation).
  EXPECT_EQ(MissesForQuery(bench->get(), 1), 1u);
  EXPECT_EQ(MissesForQuery(bench->get(), 7), 128u);
}

// --- explain analyze across all twelve benchmark queries -----------------

TEST(ExplainAnalyzeAcceptanceTest, AllTwelveQueriesCarryRowsAndTime) {
  ScopedMetricsEnabled on(true);
  bench::WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.ntuples = 64;
  auto bench = bench::BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  for (int q = 1; q <= 12; ++q) {
    std::string text = (*bench)->QueryText(q);
    ASSERT_FALSE(text.empty()) << "Q" << q;  // temporal supports all twelve
    auto r = (*bench)->db()->Execute("explain analyze " + text);
    ASSERT_TRUE(r.ok()) << "Q" << q << ": " << r.status().ToString();
    std::string tree;
    for (const auto& row : r->result.rows) tree += row[0].AsString() + "\n";
    SCOPED_TRACE("Q" + std::to_string(q) + "\n" + tree);
    // Every analyzed plan carries executed per-node statistics: row
    // counts, page I/O and wall time.
    EXPECT_NE(tree.find("[rows="), std::string::npos);
    EXPECT_NE(tree.find("loops="), std::string::npos);
    EXPECT_NE(tree.find("time="), std::string::npos);
    ASSERT_NE(r->plan, nullptr);
    EXPECT_TRUE(r->plan->root->stats.executed);
  }
}

}  // namespace
}  // namespace tdb
