// Tests of the benchmark workload generator itself.

#include "benchlib/workload.h"

#include <gtest/gtest.h>

namespace tdb {
namespace bench {
namespace {

TEST(WorkloadTest, PaperGeometryAt100Percent) {
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  auto bench = BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  // Section 5.1: 128 primary pages for the hashed relation, 129 for ISAM
  // (128 data + 1 directory).
  EXPECT_EQ((*bench)->PagesOf("h").value_or(0), 128u);
  EXPECT_EQ((*bench)->PagesOf("i").value_or(0), 129u);
}

TEST(WorkloadTest, PaperGeometryAt50Percent) {
  WorkloadConfig config;
  config.type = DbType::kRollback;
  config.fillfactor = 50;
  auto bench = BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok());
  EXPECT_EQ((*bench)->PagesOf("h").value_or(0), 256u);
  EXPECT_EQ((*bench)->PagesOf("i").value_or(0), 259u);  // 256 + 3 directory
}

TEST(WorkloadTest, StaticGeometry) {
  WorkloadConfig config;
  config.type = DbType::kStatic;
  auto bench = BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok());
  EXPECT_EQ((*bench)->PagesOf("h").value_or(0), 114u);  // 9 tuples/page
  EXPECT_EQ((*bench)->PagesOf("i").value_or(0), 115u);
}

TEST(WorkloadTest, QueryApplicabilityMatrix) {
  struct Case {
    DbType type;
    std::vector<int> applicable;
  } cases[] = {
      {DbType::kStatic, {1, 2, 5, 6, 7, 8, 9, 10}},
      {DbType::kRollback, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
      {DbType::kHistorical, {1, 2, 5, 6, 7, 8, 9, 10}},
      {DbType::kTemporal, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
  };
  for (const Case& c : cases) {
    WorkloadConfig config;
    config.type = c.type;
    config.ntuples = 64;
    auto bench = BenchmarkDb::Create(config);
    ASSERT_TRUE(bench.ok());
    for (int q = 1; q <= 12; ++q) {
      bool expected = std::find(c.applicable.begin(), c.applicable.end(),
                                q) != c.applicable.end();
      EXPECT_EQ(!(*bench)->QueryText(q).empty(), expected)
          << DbTypeName(c.type) << " Q" << q;
    }
  }
}

TEST(WorkloadTest, ProbeAmountsMatchExactlyOneTuple) {
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  auto bench = BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok());
  auto q7 = (*bench)->RunQuery(7);
  ASSERT_TRUE(q7.ok());
  EXPECT_EQ(q7->rows, 1u);
  auto q8 = (*bench)->RunQuery(8);
  ASSERT_TRUE(q8.ok());
  EXPECT_EQ(q8->rows, 1u);
}

TEST(WorkloadTest, DeterministicAcrossRuns) {
  auto run = []() {
    WorkloadConfig config;
    config.type = DbType::kTemporal;
    config.ntuples = 128;
    auto bench = BenchmarkDb::Create(config);
    EXPECT_TRUE(bench.ok());
    EXPECT_TRUE((*bench)->UniformUpdateRound().ok());
    return (*bench)->RunQuery(9)->input_pages;
  };
  EXPECT_EQ(run(), run());
}

TEST(WorkloadTest, UpdateRoundRaisesUpdateCountByOne) {
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.ntuples = 64;
  auto bench = BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok());
  EXPECT_EQ((*bench)->update_count(), 0);
  ASSERT_TRUE((*bench)->UniformUpdateRound().ok());
  EXPECT_EQ((*bench)->update_count(), 1);
  // Every tuple now has exactly one more version pair: the version scan of
  // tuple 5 sees 3 versions.
  auto r = (*bench)->db()->Execute(
      "retrieve (h.seq) where h.id = 5 "
      "as of \"beginning\" through \"forever\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 3u);
}

TEST(WorkloadTest, MeasureSeparatesFixedCosts) {
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.ntuples = 256;
  auto bench = BenchmarkDb::Create(config);
  ASSERT_TRUE(bench.ok());
  // Q02 (ISAM keyed): fixed = 1 directory page at 100% loading.
  auto q2 = (*bench)->RunQuery(2);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->fixed_pages, 1u);
  // Q01 (hashed): no fixed portion.
  auto q1 = (*bench)->RunQuery(1);
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->fixed_pages, 0u);
}

TEST(WorkloadTest, TablePrinterAlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(Cell(uint64_t{42}), "42");
  EXPECT_EQ(Cell(1.5, 2), "1.50");
}

}  // namespace
}  // namespace bench
}  // namespace tdb
