#include "types/value.h"

#include <gtest/gtest.h>

namespace tdb {
namespace {

TEST(ValueTest, DefaultIsInt4Zero) {
  Value v;
  EXPECT_EQ(v.type(), TypeId::kInt4);
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Int1(-5).AsInt(), -5);
  EXPECT_EQ(Value::Int2(300).AsInt(), 300);
  EXPECT_EQ(Value::Int4(70000).AsInt(), 70000);
  EXPECT_DOUBLE_EQ(Value::Float8(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Char("abc").AsString(), "abc");
  EXPECT_EQ(Value::Time(TimePoint(9)).AsTime(), TimePoint(9));
}

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value::Int1(1).is_integer());
  EXPECT_TRUE(Value::Int4(1).is_numeric());
  EXPECT_TRUE(Value::Float8(1).is_numeric());
  EXPECT_FALSE(Value::Float8(1).is_integer());
  EXPECT_FALSE(Value::Char("x").is_numeric());
  EXPECT_FALSE(Value::Time(TimePoint(0)).is_numeric());
}

TEST(ValueTest, AsDoubleWidensIntegers) {
  EXPECT_DOUBLE_EQ(Value::Int4(3).AsDouble(), 3.0);
}

TEST(ValueCompareTest, Integers) {
  auto c = Value::Compare(Value::Int4(1), Value::Int4(2));
  ASSERT_TRUE(c.ok());
  EXPECT_LT(*c, 0);
  EXPECT_EQ(*Value::Compare(Value::Int4(2), Value::Int4(2)), 0);
  EXPECT_GT(*Value::Compare(Value::Int4(3), Value::Int4(2)), 0);
}

TEST(ValueCompareTest, MixedIntegerWidthsCompare) {
  EXPECT_EQ(*Value::Compare(Value::Int1(5), Value::Int4(5)), 0);
  EXPECT_LT(*Value::Compare(Value::Int2(-1), Value::Int4(0)), 0);
}

TEST(ValueCompareTest, IntegerVsFloat) {
  EXPECT_LT(*Value::Compare(Value::Int4(1), Value::Float8(1.5)), 0);
  EXPECT_EQ(*Value::Compare(Value::Int4(2), Value::Float8(2.0)), 0);
}

TEST(ValueCompareTest, CharIgnoresTrailingBlanks) {
  EXPECT_EQ(*Value::Compare(Value::Char("abc"), Value::Char("abc   ")), 0);
  EXPECT_LT(*Value::Compare(Value::Char("ab"), Value::Char("abc")), 0);
}

TEST(ValueCompareTest, Times) {
  EXPECT_LT(*Value::Compare(Value::Time(TimePoint(1)),
                            Value::Time(TimePoint(2))),
            0);
  EXPECT_LT(*Value::Compare(Value::Time(TimePoint(1)),
                            Value::Time(TimePoint::Forever())),
            0);
}

TEST(ValueCompareTest, IncompatibleTypesFail) {
  EXPECT_FALSE(Value::Compare(Value::Int4(1), Value::Char("1")).ok());
  EXPECT_FALSE(Value::Compare(Value::Time(TimePoint(1)), Value::Int4(1)).ok());
  EXPECT_FALSE(
      Value::Compare(Value::Char("a"), Value::Time(TimePoint(0))).ok());
}

TEST(ValueEqualsTest, Basic) {
  EXPECT_TRUE(Value::Int4(5).Equals(Value::Int4(5)));
  EXPECT_FALSE(Value::Int4(5).Equals(Value::Int4(6)));
  EXPECT_FALSE(Value::Int4(5).Equals(Value::Char("5")));
}

TEST(ValueToStringTest, AllTypes) {
  EXPECT_EQ(Value::Int4(-7).ToString(), "-7");
  EXPECT_EQ(Value::Float8(1.5).ToString(), "1.5");
  EXPECT_EQ(Value::Char("hi   ").ToString(), "hi");  // blanks trimmed
  EXPECT_EQ(Value::Time(TimePoint::Forever()).ToString(), "forever");
}

TEST(ValueToStringTest, TimeUsesResolution) {
  auto tp = TimePoint::FromCivil(1980, 6, 1, 12, 0, 0);
  ASSERT_TRUE(tp.ok());
  EXPECT_EQ(Value::Time(*tp).ToString(TimeResolution::kYear), "1980");
  EXPECT_EQ(Value::Time(*tp).ToString(TimeResolution::kDay), "6/1/1980");
}

TEST(ValueHashTest, EqualValuesHashEqual) {
  EXPECT_EQ(Value::Int4(42).Hash(), Value::Int4(42).Hash());
  EXPECT_EQ(Value::Char("abc").Hash(), Value::Char("abc  ").Hash());
  EXPECT_EQ(Value::Time(TimePoint(5)).Hash(), Value::Time(TimePoint(5)).Hash());
}

TEST(ValueHashTest, SpreadsDistinctValues) {
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (Value::Int4(i).Hash() % 128 == Value::Int4(i + 1).Hash() % 128) {
      ++collisions;
    }
  }
  EXPECT_LT(collisions, 50);
}

TEST(TypeIdNameTest, Names) {
  EXPECT_STREQ(TypeIdName(TypeId::kInt4), "i4");
  EXPECT_STREQ(TypeIdName(TypeId::kFloat8), "f8");
  EXPECT_STREQ(TypeIdName(TypeId::kTime), "time");
}

}  // namespace
}  // namespace tdb
