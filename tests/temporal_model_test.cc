// Model-based property test of the bitemporal semantics.
//
// A shadow model tracks, for every mutation the test issues, what the
// database *should* contain: each version's user value, transaction
// interval, and valid interval.  After a random workload we compare the
// engine's answers against the model for many random (rollback point,
// validity point) combinations.  This checks the whole pipeline — DML
// stamping, default as-of, when evaluation, access paths — in one sweep.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/database.h"
#include "env/env.h"
#include "temporal/interval.h"
#include "util/random.h"

namespace tdb {
namespace {

struct ModelVersion {
  int id;
  int value;
  Interval tx;
  Interval valid;
};

/// The reference implementation of "value of tuple `id` valid at `vt` as
/// known at `tt`".
std::vector<int> ModelQuery(const std::vector<ModelVersion>& versions, int id,
                            TimePoint tt, TimePoint vt) {
  std::vector<int> out;
  for (const ModelVersion& v : versions) {
    if (v.id != id) continue;
    if (!v.tx.Contains(tt)) continue;
    if (!v.valid.Contains(vt)) continue;
    out.push_back(v.value);
  }
  return out;
}

class TemporalModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TemporalModelTest, EngineMatchesModel) {
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  options.start_time = TimePoint(10000);
  options.auto_advance_seconds = 0;  // the test drives the clock
  auto db = Database::Open("/db", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(
      (*db)->Execute("create persistent interval r (id = i4, v = i4)").ok());
  ASSERT_TRUE((*db)->Execute("range of x is r").ok());

  constexpr int kIds = 6;
  Random rng(GetParam());
  std::vector<ModelVersion> model;
  // live[id] -> index into `model` of the tx-current, valid-open version.
  std::map<int, size_t> live;

  TimePoint clock(10000);
  auto forever = TimePoint::Forever();

  for (int step = 0; step < 80; ++step) {
    clock = clock.AddSeconds(static_cast<int64_t>(1 + rng.Uniform(500)));
    (*db)->SetNow(clock);
    int id = static_cast<int>(rng.Uniform(kIds));
    bool exists = live.count(id) > 0;
    int action = static_cast<int>(rng.Uniform(3));

    if (!exists && action != 2) {
      // Append a fresh tuple.
      int value = static_cast<int>(rng.Uniform(1000));
      ASSERT_TRUE((*db)
                      ->Execute("append to r (id = " + std::to_string(id) +
                                ", v = " + std::to_string(value) + ")")
                      .ok());
      model.push_back({id, value, Interval(clock, forever),
                       Interval(clock, forever)});
      live[id] = model.size() - 1;
      continue;
    }
    if (!exists) continue;

    if (action == 0) {
      // Replace: old version closed in tx time; correction (valid ends now)
      // and new version (valid from now) both inserted.
      int value = static_cast<int>(rng.Uniform(1000));
      ASSERT_TRUE((*db)
                      ->Execute("replace x (v = " + std::to_string(value) +
                                ") where x.id = " + std::to_string(id))
                      .ok());
      ModelVersion& old_version = model[live[id]];
      old_version.tx.to = clock;
      ModelVersion correction = old_version;
      correction.tx = Interval(clock, forever);
      correction.valid.to = clock;
      model.push_back(correction);
      model.push_back(
          {id, value, Interval(clock, forever), Interval(clock, forever)});
      live[id] = model.size() - 1;
    } else if (action == 1) {
      // Delete: old version closed in tx time; correction inserted.
      ASSERT_TRUE(
          (*db)
              ->Execute("delete x where x.id = " + std::to_string(id))
              .ok());
      ModelVersion& old_version = model[live[id]];
      old_version.tx.to = clock;
      ModelVersion correction = old_version;
      correction.tx = Interval(clock, forever);
      correction.valid.to = clock;
      model.push_back(correction);
      live.erase(id);
    }
    // action == 2 with an existing tuple: no-op step.
  }

  // Interrogate: for random (id, tt, vt) pairs, engine == model.
  for (int probe = 0; probe < 120; ++probe) {
    int id = static_cast<int>(rng.Uniform(kIds));
    TimePoint tt(static_cast<int32_t>(10000 + rng.Uniform(60000)));
    TimePoint vt(static_cast<int32_t>(10000 + rng.Uniform(60000)));
    std::vector<int> expected = ModelQuery(model, id, tt, vt);

    auto r = (*db)->Execute(
        "retrieve (x.v) where x.id = " + std::to_string(id) +
        " when x overlap \"" + vt.ToString() + "\" as of \"" + tt.ToString() +
        "\"");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::vector<int> got;
    for (const Row& row : r->result.rows) {
      got.push_back(static_cast<int>(row[0].AsInt()));
    }
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected)
        << "id=" << id << " tt=" << tt.ToString() << " vt=" << vt.ToString();
  }

  // The same comparison through a reorganized (hash) relation and through a
  // two-level store must give identical answers.
  for (const char* reorg :
       {"modify r to hash on id where fillfactor = 100",
        "modify r to isam on id where fillfactor = 50",
        "modify r to btree on id",
        "modify r to twolevel hash on id where fillfactor = 100, "
        "history = clustered",
        "modify r to twolevel isam on id where fillfactor = 100, "
        "history = simple"}) {
    ASSERT_TRUE((*db)->Execute(reorg).ok());
    for (int probe = 0; probe < 40; ++probe) {
      int id = static_cast<int>(rng.Uniform(kIds));
      TimePoint tt(static_cast<int32_t>(10000 + rng.Uniform(60000)));
      TimePoint vt(static_cast<int32_t>(10000 + rng.Uniform(60000)));
      std::vector<int> expected = ModelQuery(model, id, tt, vt);
      auto r = (*db)->Execute(
          "retrieve (x.v) where x.id = " + std::to_string(id) +
          " when x overlap \"" + vt.ToString() + "\" as of \"" +
          tt.ToString() + "\"");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      std::vector<int> got;
      for (const Row& row : r->result.rows) {
        got.push_back(static_cast<int>(row[0].AsInt()));
      }
      std::sort(expected.begin(), expected.end());
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << reorg << " id=" << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace tdb
