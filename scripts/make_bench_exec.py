#!/usr/bin/env python3
"""Distills micro_exec --benchmark_format=json output into BENCH_exec.json.

Usage:
    build/bench/micro_exec --benchmark_format=json > /tmp/micro_exec.json
    python3 scripts/make_bench_exec.py /tmp/micro_exec.json [-o BENCH_exec.json]

The output is the repo-root ns/tuple table per engine mode: the scan-filter
loop (per-tuple predicate cost, isolated from the pager) and the end-to-end
scan-filter / join queries, each tuple-at-a-time vs vectorized, plus the
speedup ratios the PR's acceptance criteria reference.
"""

import argparse
import json
import sys

# benchmark name -> (section, engine-mode key)
MAPPING = {
    "BM_ScanFilterBaseline": ("scan_filter_loop", "decode_row_ast"),
    "BM_ScanFilterAstLazy": ("scan_filter_loop", "lazy_ast"),
    "BM_ScanFilterHotPath": ("scan_filter_loop", "compiled_tuple"),
    "BM_ScanFilterVectorized": ("scan_filter_loop", "vectorized"),
    "BM_ExecScanFilterTuple": ("exec_scan_filter", "tuple"),
    "BM_ExecScanFilterVectorized": ("exec_scan_filter", "vectorized"),
    "BM_ExecJoinTuple": ("exec_join", "tuple"),
    "BM_ExecJoinVectorized": ("exec_join", "vectorized"),
    "BM_ExecJoinHash": ("exec_join", "hash"),
    "BM_ExecJoinHashVectorized": ("exec_join", "hash_vectorized"),
    "BM_ExecIntervalJoinPaper": ("exec_interval_join", "paper"),
    "BM_ExecIntervalJoinSweep": ("exec_interval_join", "sweep"),
    # Thread scaling of the morsel-driven parallel pipelines (google-benchmark
    # appends the ->Arg() value to the name).
    "BM_ExecScanFilterThreads/1": ("exec_scan_filter", "threads_1"),
    "BM_ExecScanFilterThreads/2": ("exec_scan_filter", "threads_2"),
    "BM_ExecScanFilterThreads/4": ("exec_scan_filter", "threads_4"),
    "BM_ExecJoinHashThreads/1": ("exec_join", "hash_threads_1"),
    "BM_ExecJoinHashThreads/2": ("exec_join", "hash_threads_2"),
    "BM_ExecJoinHashThreads/4": ("exec_join", "hash_threads_4"),
}

# (section, numerator-mode, denominator-mode) -> ratio name
SPEEDUPS = [
    ("scan_filter_loop", "compiled_tuple", "vectorized",
     "speedup_vectorized_vs_compiled_tuple"),
    ("exec_scan_filter", "tuple", "vectorized",
     "speedup_vectorized_vs_tuple"),
    ("exec_join", "tuple", "vectorized", "speedup_vectorized_vs_tuple"),
    ("exec_join", "tuple", "hash", "speedup_hash_vs_tuple"),
    ("exec_interval_join", "paper", "sweep", "speedup_sweep_vs_paper"),
    ("exec_scan_filter", "threads_1", "threads_4", "speedup_threads_4_vs_1"),
    ("exec_join", "hash_threads_1", "hash_threads_4",
     "speedup_hash_threads_4_vs_1"),
]


def ns_per_tuple(bench):
    ips = bench.get("items_per_second")
    if ips:
        return 1e9 / ips
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", help="micro_exec --benchmark_format=json output")
    parser.add_argument("-o", "--output", default="BENCH_exec.json")
    args = parser.parse_args()

    with open(args.input) as f:
        raw = json.load(f)

    table = {}
    for bench in raw.get("benchmarks", []):
        key = MAPPING.get(bench.get("name", ""))
        if key is None:
            continue
        npt = ns_per_tuple(bench)
        if npt is None:
            continue
        table.setdefault(key[0], {})[key[1]] = round(npt, 2)

    if not table:
        sys.exit("no mapped benchmarks found in " + args.input)

    for section, slow, fast, name in SPEEDUPS:
        modes = table.get(section, {})
        if slow in modes and fast in modes and modes[fast] > 0:
            modes[name] = round(modes[slow] / modes[fast], 2)

    out = {
        "unit": "ns_per_tuple",
        "source": "bench/micro_exec.cc",
        "context": {
            k: raw.get("context", {}).get(k)
            for k in ("host_name", "num_cpus", "mhz_per_cpu",
                      "library_build_type", "exec_threads",
                      "hardware_concurrency")
        },
    }
    out.update(table)
    with open(args.output, "w") as f:
        json.dump(out, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote", args.output)


if __name__ == "__main__":
    main()
