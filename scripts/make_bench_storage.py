#!/usr/bin/env python3
"""Runs bench/storage_sweep and distills its JSON into BENCH_storage.json.

Usage:
    python3 scripts/make_bench_storage.py [--bench build/bench/storage_sweep]
                                          [--ntuples 1024]
                                          [-o BENCH_storage.json]

The sweep grid is page size {1024, 4096} x buffer pool {paper single-frame,
shared pool capped at 1 frame/file, uncapped warm pool} over the paper's
temporal query mix, plus a vacuum axis (partition policy x page size) on a
two-level historical store.  This script adds the headline ratios the PR's
acceptance criteria reference:

    pool_parity_exact      pool-at-cap-1 counts identical to the paper cell
                           (the byte-identity the test battery enforces,
                           restated as page counts)
    page_4096_speedup      paper-cell pages at 1024 / paper-cell pages at
                           4096 (what bigger pages alone buy)
    warm_pool_speedup      paper 1024 pages / warm-pool 4096 pages (the
                           production configuration's combined win)
"""

import argparse
import json
import subprocess
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="build/bench/storage_sweep")
    parser.add_argument("--ntuples", type=int, default=1024)
    parser.add_argument("-o", "--output", default="BENCH_storage.json")
    args = parser.parse_args()

    cmd = [args.bench, "--ntuples=%d" % args.ntuples]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.exit("%s failed:\n%s" % (" ".join(cmd), proc.stderr))
    raw = json.loads(proc.stdout)

    def cell(pool, page_size):
        for c in raw["cells"]:
            if c["pool"] == pool and c["page_size"] == page_size:
                return c
        sys.exit("missing cell %s/%d in sweep output" % (pool, page_size))

    paper_1024 = cell("paper", 1024)
    paper_4096 = cell("paper", 4096)
    ratios = {
        "pool_parity_exact": all(
            cell("pool_cap1", ps)["input_pages"] == cell("paper", ps)["input_pages"]
            and cell("pool_cap1", ps)["output_pages"] == cell("paper", ps)["output_pages"]
            for ps in (1024, 4096)
        ),
        "page_4096_speedup": round(
            paper_1024["input_pages"] / paper_4096["input_pages"], 2
        ),
        "warm_pool_speedup": round(
            paper_1024["input_pages"] / cell("pool_warm", 4096)["input_pages"], 2
        ),
    }

    out = {
        "source": raw["source"],
        "workload": raw["workload"],
        "ratios": ratios,
        "cells": raw["cells"],
        "vacuum": raw["vacuum"],
    }
    with open(args.output, "w") as f:
        json.dump(out, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote", args.output)
    if not ratios["pool_parity_exact"]:
        sys.exit("pool-at-cap-1 page counts diverged from the paper cell")


if __name__ == "__main__":
    main()
