#!/usr/bin/env bash
# Builds everything, runs the test suite, regenerates every paper figure,
# and runs the examples.  Mirrors what CI does.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "=== paper figures and ablations ==="
for b in build/bench/fig* build/bench/nonuniform_updates \
         build/bench/ablation_* build/bench/response_time_model; do
  echo "----- $(basename "$b") -----"
  "$b"
done

echo "=== microbenchmarks (short) ==="
for b in build/bench/micro_*; do
  "$b" --benchmark_min_time=0.05s || "$b" --benchmark_min_time=0.05
done

echo "=== examples ==="
for e in quickstart audit_trail trend_analysis version_mgmt; do
  rm -rf "/tmp/chronoquel_ci_$e"
  "build/examples/$e" "/tmp/chronoquel_ci_$e" > /dev/null
  echo "$e OK"
done
echo "all green"
