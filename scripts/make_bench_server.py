#!/usr/bin/env python3
"""Runs bench/load_server across durability levels and statement-pipeline
configurations and merges the results into BENCH_server.json.

Usage:
    python3 scripts/make_bench_server.py [--bench build/bench/load_server]
                                         [--seconds 2] [--clients 1,2,4,8]
                                         [--pipeline-clients 1,2,8,32]
                                         [-o BENCH_server.json]

Two sweeps:

1. Durability (the historical count-statement mix, 80% reads):

    off      no journal — pure service-layer cost (locks, MVCC, wire codec)
    journal  pre-images + commit marks written, fsync deferred
    sync     every commit durable before the client's OK; overlapping
             committers share fsyncs via group commit

   The sync run widens the group-commit window (see
   DatabaseOptions::group_commit_window_micros): on fast storage the fsync
   itself is near-free, so without the window holding the door open there
   is nothing to batch and the sharing the paper-scale numbers hinge on
   would not show.  The per-cell journal counters (commits vs group_syncs)
   make the batching factor visible in the output.

2. Statement pipeline (a read-heavy four-variable join workload, where
   parsing, binding, and cost-based join planning are a real share of the
   round trip):

    raw/thread             every statement ships as text; parse+plan per op
    prepared/thread        kPrepare once, kExecPrepared per op (no parse)
    prepared+cache/thread  plus the shared plan cache (no parse, no plan)
    raw/epoll              text statements, epoll dispatch loop
    prepared+cache/epoll   the full pipeline on the epoll loop

   The per-cell engine counters (parses, plan_builds, plancache_hits)
   verify each configuration does the work it claims and no more.  The
   epoll rows demonstrate one event loop plus a bounded worker pool
   sustaining the full client-count axis without per-connection threads.
"""

import argparse
import json
import subprocess
import sys
import tempfile

DURABILITY_RUNS = [
    # (durability flag, extra flags)
    ("off", []),
    ("journal", []),
    ("sync", ["--group-window-us=2000"]),
]

PIPELINE_RUNS = [
    # (label, extra flags)
    ("raw/thread", ["--mode=raw", "--server=thread"]),
    ("prepared/thread", ["--mode=prepared", "--server=thread"]),
    ("prepared+cache/thread",
     ["--mode=prepared", "--plan-cache", "--server=thread"]),
    ("raw/epoll", ["--mode=raw", "--server=epoll"]),
    ("prepared+cache/epoll",
     ["--mode=prepared", "--plan-cache", "--server=epoll"]),
]


def run_cell(bench, flags, clients, seconds):
    with tempfile.TemporaryDirectory(prefix="tquel_bench_") as root:
        cmd = [
            bench,
            "--clients=" + clients,
            "--seconds=" + str(seconds),
            "--root=" + root + "/db",
        ] + flags
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit("%s failed:\n%s" % (" ".join(cmd), proc.stderr))
        return json.loads(proc.stdout)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="build/bench/load_server")
    parser.add_argument("--seconds", type=float, default=2.0)
    parser.add_argument("--clients", default="1,2,4,8")
    parser.add_argument("--pipeline-clients", default="1,2,8,32")
    parser.add_argument("-o", "--output", default="BENCH_server.json")
    args = parser.parse_args()

    levels = {}
    for durability, extra in DURABILITY_RUNS:
        print("running durability", durability, "...", flush=True)
        levels[durability] = run_cell(
            args.bench, ["--durability=" + durability] + extra,
            args.clients, args.seconds)

    pipeline = {}
    for label, extra in PIPELINE_RUNS:
        print("running pipeline", label, "...", flush=True)
        pipeline[label] = run_cell(args.bench, extra + ["--read-pct=100"],
                                   args.pipeline_clients, args.seconds)

    out = {
        "source": "bench/load_server.cc",
        "unit": "ops_per_second; latency in ms",
        "workload": "closed loop, %d%% reads, per-client relations" %
                    levels["off"].get("read_pct", 80),
        "durability_levels": levels,
        "statement_pipeline": pipeline,
    }
    with open(args.output, "w") as f:
        json.dump(out, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote", args.output)

    # Sanity summary: the speedup the statement pipeline is for.
    def ops(label):
        cells = pipeline[label]["cells"]
        return {c["clients"]: c["throughput_ops_per_s"] for c in cells}

    raw, full = ops("raw/thread"), ops("prepared+cache/thread")
    for n in sorted(raw):
        if n in full and raw[n] > 0:
            print("clients=%d prepared+cache/raw = %.2fx" %
                  (n, full[n] / raw[n]))


if __name__ == "__main__":
    main()
