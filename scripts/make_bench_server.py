#!/usr/bin/env python3
"""Runs bench/load_server at each durability level and merges the results
into BENCH_server.json.

Usage:
    python3 scripts/make_bench_server.py [--bench build/bench/load_server]
                                         [--seconds 2] [--clients 1,2,4,8]
                                         [-o BENCH_server.json]

Each durability level exercises a different slice of the commit path:

    off      no journal — pure service-layer cost (locks, MVCC, wire codec)
    journal  pre-images + commit marks written, fsync deferred
    sync     every commit durable before the client's OK; overlapping
             committers share fsyncs via group commit

The sync run widens the group-commit window (see
DatabaseOptions::group_commit_window_micros): on fast storage the fsync
itself is near-free, so without the window holding the door open there is
nothing to batch and the sharing the paper-scale numbers hinge on would
not show.  The per-cell journal counters (commits vs group_syncs) make
the batching factor visible in the output.
"""

import argparse
import json
import subprocess
import sys
import tempfile

RUNS = [
    # (durability flag, extra flags)
    ("off", []),
    ("journal", []),
    ("sync", ["--group-window-us=2000"]),
]


def run_level(bench, durability, extra, clients, seconds):
    with tempfile.TemporaryDirectory(prefix="tquel_bench_") as root:
        cmd = [
            bench,
            "--durability=" + durability,
            "--clients=" + clients,
            "--seconds=" + str(seconds),
            "--root=" + root + "/db",
        ] + extra
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit("%s failed:\n%s" % (" ".join(cmd), proc.stderr))
        return json.loads(proc.stdout)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="build/bench/load_server")
    parser.add_argument("--seconds", type=float, default=2.0)
    parser.add_argument("--clients", default="1,2,4,8")
    parser.add_argument("-o", "--output", default="BENCH_server.json")
    args = parser.parse_args()

    levels = {}
    for durability, extra in RUNS:
        print("running", durability, "...", flush=True)
        levels[durability] = run_level(args.bench, durability, extra,
                                       args.clients, args.seconds)

    out = {
        "source": "bench/load_server.cc",
        "unit": "ops_per_second; latency in ms",
        "workload": "closed loop, %d%% reads, per-client relations" %
                    levels["off"].get("read_pct", 80),
        "durability_levels": levels,
    }
    with open(args.output, "w") as f:
        json.dump(out, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote", args.output)


if __name__ == "__main__":
    main()
