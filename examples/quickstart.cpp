// Quickstart: open a database, create a temporal relation, record some
// facts, and ask historical / rollback questions in TQuel — through a
// Session, the unit of client state the server's connections use too.
//
//   ./quickstart [database-directory]   (defaults to a temp directory)

#include <cstdio>
#include <string>

#include "core/chronoquel.h"
#include "core/session.h"
#include "core/statement_error.h"

using tdb::Database;
using tdb::DatabaseOptions;
using tdb::ExecResult;
using tdb::Session;
using tdb::TimeResolution;

namespace {

void Run(Session* session, const std::string& text) {
  std::printf("tquel> %s\n", text.c_str());
  auto result = session->Execute(text);
  if (!result.ok()) {
    std::printf("  error: %s\n\n",
                tdb::FormatStatementError(result.status(), text).c_str());
    return;
  }
  if (!result->result.columns.empty()) {
    std::printf("%s", result->result.ToString(TimeResolution::kDay).c_str());
  } else if (!result->message.empty()) {
    std::printf("  %s\n", result->message.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/chronoquel_quickstart";

  DatabaseOptions options;
  options.start_time = *tdb::TimePoint::FromCivil(1980, 1, 1);
  // Journal every statement: a crash mid-update rolls back to the last
  // statement boundary when the database is next opened.
  options.durability = tdb::DurabilityMode::kJournal;
  auto db = Database::Open(dir, options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // A session is one client's connection: its own range declarations, its
  // own I/O accounting, optionally its own pinned as-of timestamp.  The
  // embedded Database::Execute is a wrapper over an implicit default
  // session; here we hold one explicitly, as the server's connection
  // handlers do.
  std::unique_ptr<Session> session = (*db)->CreateSession();

  // `persistent` adds transaction time (rollback support); `interval` adds
  // valid time (historical support).  Together: a temporal relation.
  // ExecuteScript runs the whole setup, one atomic statement at a time;
  // on failure the status names the statement and its source offset.
  auto setup = session->ExecuteScript(
      "create persistent interval emp (name = c12, sal = i4);"
      "range of e is emp");
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 setup.status().ToString().c_str());
    return 1;
  }
  for (const ExecResult& r : *setup) std::printf("  %s\n", r.message.c_str());
  std::printf("\n");

  Run(session.get(), "append to emp (name = \"merrie\", sal = 25000)");
  (*db)->AdvanceSeconds(86400 * 90);  // three months pass
  Run(session.get(), "append to emp (name = \"tom\", sal = 23000)");
  (*db)->AdvanceSeconds(86400 * 90);

  tdb::TimePoint before_raise = (*db)->now();
  Run(session.get(), "replace e (sal = 27000) where e.name = \"merrie\"");
  (*db)->AdvanceSeconds(86400 * 30);

  std::printf("--- current state (valid now, known now) ---\n");
  Run(session.get(), "retrieve (e.name, e.sal) when e overlap \"now\"");

  std::printf("--- full salary history of merrie (as known now) ---\n");
  Run(session.get(), "retrieve (e.sal) where e.name = \"merrie\"");

  std::printf("--- rollback: what did the database say before the raise? ---\n");
  Run(session.get(), "retrieve (e.name, e.sal) when e overlap \"" +
                         before_raise.ToString() + "\" as of \"" +
                         before_raise.ToString() + "\"");

  std::printf("--- the same rollback view, pinned session-wide ---\n");
  session->PinAsOf(before_raise);
  Run(session.get(), "retrieve (e.name, e.sal) when e overlap \"" +
                         before_raise.ToString() + "\"");
  session->PinAsOf(std::nullopt);

  std::printf("--- aggregates over the current state ---\n");
  Run(session.get(),
      "retrieve (headcount = count(e.name), payroll = sum(e.sal))");

  std::printf("--- reorganize for keyed access, then probe ---\n");
  Run(session.get(), "modify emp to hash on name where fillfactor = 100");
  Run(session.get(),
      "retrieve (e.sal) where e.name = \"tom\" when e overlap \"now\"");
  return 0;
}
