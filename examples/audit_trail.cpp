// Audit-trail example: the paper's motivation that conventional DBMSs
// "cannot represent retroactive or postactive changes, while support for
// error correction or audit trail necessitates costly maintenance of
// backups, checkpoints, journals or transaction logs".
//
// A temporal relation gives all of that for free: this example records
// account balances, makes a RETROACTIVE correction (we learn in March that
// a February deposit was mis-entered), and then answers:
//   1. what is the balance history as we know it today?
//   2. what did the bank believe on any past day?  (regulatory audit)
//   3. when did the bank learn of the correction?

#include <cstdio>
#include <string>

#include "core/database.h"

using tdb::Database;
using tdb::DatabaseOptions;
using tdb::TimePoint;
using tdb::TimeResolution;

namespace {

void Show(Database* db, const std::string& title, const std::string& text) {
  std::printf("--- %s ---\ntquel> %s\n", title.c_str(), text.c_str());
  auto result = db->Execute(text);
  if (!result.ok()) {
    std::printf("  error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result->result.ToString(TimeResolution::kDay).c_str());
}

void Must(Database* db, const std::string& text) {
  auto result = db->Execute(text);
  if (!result.ok()) {
    std::fprintf(stderr, "'%s' failed: %s\n", text.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
}

TimePoint Day(int year, int month, int day) {
  return *TimePoint::FromCivil(year, month, day);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/chronoquel_audit";
  DatabaseOptions options;
  options.start_time = Day(1984, 1, 2);
  auto db = Database::Open(dir, options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Database* d = db->get();

  Must(d, "create persistent interval balance (acct = c8, cents = i4)");
  Must(d, "range of b is balance");

  // Jan 2: the account opens with $100.
  Must(d, "append to balance (acct = \"A-17\", cents = 10000)");

  // Feb 1: a deposit is recorded — but a typo makes it $250 not $2500.
  d->SetNow(Day(1984, 2, 1));
  Must(d, "replace b (cents = 10000 + 250) where b.acct = \"A-17\"");

  // Mar 10: the error is found.  The correction is RETROACTIVE: the real
  // balance has been $12500 since Feb 1.  The valid clause backdates the
  // new version; transaction time records that we learned this on Mar 10.
  d->SetNow(Day(1984, 3, 10));
  Must(d,
       "replace b (cents = 10000 + 2500) where b.acct = \"A-17\" "
       "valid from \"2/1/84\" to \"forever\"");

  d->SetNow(Day(1984, 4, 1));

  Show(d, "balance history as known today (April 1)",
       "retrieve (b.cents) where b.acct = \"A-17\"");

  Show(d, "audit: what did the bank believe on Feb 15?",
       "retrieve (b.cents) where b.acct = \"A-17\" "
       "when b overlap \"2/15/84\" as of \"2/15/84\"");

  Show(d, "audit: what does the bank NOW believe was true on Feb 15?",
       "retrieve (b.cents) where b.acct = \"A-17\" "
       "when b overlap \"2/15/84\"");

  Show(d, "every version ever stored (the physical audit trail)",
       "retrieve (b.cents, b.transaction_start, b.transaction_stop) "
       "where b.acct = \"A-17\" as of \"beginning\" through \"forever\"");

  std::printf(
      "The Feb-15 answers differ (10250 then, 12500 now): the database\n"
      "distinguishes what was *recorded* from what was *true* — no\n"
      "journals, checkpoints, or log replay needed.\n");
  return 0;
}
