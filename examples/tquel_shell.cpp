// Interactive TQuel shell: a small REPL over a database directory.
//
//   ./tquel_shell [--durability=off|journal|sync] [--metrics[=PATH]]
//                 <database-directory>
//
// --metrics dumps the session's metrics snapshot as JSON on exit (default
// path METRICS_shell.json in the working directory).
//
// Meta commands:
//   \h            help
//   \d            list relations
//   \now          show the logical clock
//   \advance N    advance the clock N seconds
//   \io           show I/O counters since the last \io
//   \metrics      print the metrics snapshot as JSON
//   \res R        output time resolution: second|minute|hour|day|month|year
//   \plan         toggle printing of query plans
//   \q            quit
// Everything else is executed as TQuel (including `explain analyze
// retrieve ...`).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "core/chronoquel.h"
#include "core/statement_error.h"
#include "exec/plan.h"
#include "obs/metrics.h"
#include "util/stringx.h"

using tdb::Database;
using tdb::DatabaseOptions;
using tdb::TimeResolution;

namespace {

void PrintHelp() {
  std::printf(
      "TQuel statements:\n"
      "  range of t is R\n"
      "  retrieve [into R] [unique] (t.a, x = t.b + 1, n = count(t.a))\n"
      "      [valid from E to E | valid at E] [where EXPR]\n"
      "      [when TPRED] [as of E [through E]]\n"
      "  append [to] R (a = 1, ...) [valid ...] [where ...] [when ...]\n"
      "  delete t [valid at E] [where ...] [when ...]\n"
      "  replace t (a = t.a + 1) [valid ...] [where ...] [when ...]\n"
      "  create [persistent] [interval|event] R (a = i4, s = c20, ...)\n"
      "  modify R to [twolevel] heap|hash|isam [on a]\n"
      "      [where fillfactor = N, history = clustered|simple]\n"
      "  index on R is I (a) [with structure = heap|hash, levels = 1|2]\n"
      "  copy R from|to \"file\"\n"
      "  destroy R\n"
      "  help [R]\n"
      "Temporal operators: start of, end of, overlap, extend, precede.\n"
      "Time literals: \"now\", \"forever\", \"1981\", \"08:00 1/1/80\".\n");
}

}  // namespace

int main(int argc, char** argv) {
  DatabaseOptions options;
  const char* dir = nullptr;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--durability=off") {
      options.durability = tdb::DurabilityMode::kOff;
    } else if (arg == "--durability=journal") {
      options.durability = tdb::DurabilityMode::kJournal;
    } else if (arg == "--durability=sync") {
      options.durability = tdb::DurabilityMode::kJournalSync;
    } else if (arg == "--metrics") {
      options.metrics = true;
      metrics_path = "METRICS_shell.json";
    } else if (arg.rfind("--metrics=", 0) == 0) {
      options.metrics = true;
      metrics_path = arg.substr(10);
    } else if (dir == nullptr && arg.rfind("--", 0) != 0) {
      dir = argv[i];
    } else {
      dir = nullptr;
      break;
    }
  }
  if (dir == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--durability=off|journal|sync] "
                 "[--metrics[=PATH]] <database-directory>\n",
                 argv[0]);
    return 1;
  }
  auto db = Database::Open(dir, options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Database* d = db->get();
  std::printf("ChronoQuel shell — TQuel over %s (\\h for help, \\q to quit)\n",
              dir);

  TimeResolution resolution = TimeResolution::kSecond;
  bool show_plan = false;
  std::string line;
  while (true) {
    std::printf("tquel> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string text = tdb::Trim(line);
    if (text.empty()) continue;
    if (text == "\\q") break;
    if (text == "\\h") {
      PrintHelp();
      continue;
    }
    if (text == "\\d") {
      for (const std::string& name : d->catalog()->RelationNames()) {
        const auto* meta = d->catalog()->Find(name);
        std::printf("  %-20s %-10s %s%s\n", name.c_str(),
                    DbTypeName(meta->schema.db_type()),
                    meta->two_level ? "twolevel " : "",
                    OrganizationName(meta->org));
      }
      continue;
    }
    if (text == "\\now") {
      std::printf("%s\n", d->now().ToString().c_str());
      continue;
    }
    if (tdb::StartsWith(text, "\\advance")) {
      int64_t secs = 0;
      if (tdb::ParseInt64(text.substr(8), &secs)) {
        d->AdvanceSeconds(secs);
        std::printf("now = %s\n", d->now().ToString().c_str());
      } else {
        std::printf("usage: \\advance <seconds>\n");
      }
      continue;
    }
    if (tdb::StartsWith(text, "\\res")) {
      std::string name = tdb::ToLower(tdb::Trim(text.substr(4)));
      if (name == "second") resolution = TimeResolution::kSecond;
      else if (name == "minute") resolution = TimeResolution::kMinute;
      else if (name == "hour") resolution = TimeResolution::kHour;
      else if (name == "day") resolution = TimeResolution::kDay;
      else if (name == "month") resolution = TimeResolution::kMonth;
      else if (name == "year") resolution = TimeResolution::kYear;
      else {
        std::printf("usage: \\res second|minute|hour|day|month|year\n");
        continue;
      }
      std::printf("output resolution: %s\n", name.c_str());
      continue;
    }
    if (text == "\\plan") {
      show_plan = !show_plan;
      std::printf("plan printing %s\n", show_plan ? "on" : "off");
      continue;
    }
    if (text == "\\io") {
      auto total = d->io()->Total();
      std::printf("reads = %llu, writes = %llu\n",
                  (unsigned long long)total.TotalReads(),
                  (unsigned long long)total.TotalWrites());
      d->io()->ResetAll();
      continue;
    }
    if (text == "\\metrics") {
      if (d->metrics() == nullptr) {
        std::printf("metrics are disabled (TDB_METRICS=0)\n");
      } else {
        std::printf("%s\n", d->Snapshot().ToJson().c_str());
      }
      continue;
    }

    auto result = d->Execute(text);
    if (!result.ok()) {
      // The same rendering a wire client produces from a kError frame:
      // status text plus the offending line with a caret (the
      // StatementContext travels in both cases).
      std::printf("error: %s\n",
                  tdb::FormatStatementError(result.status(), text).c_str());
      continue;
    }
    if (!result->result.columns.empty()) {
      std::printf("%s(%zu rows)\n",
                  result->result.ToString(resolution).c_str(),
                  result->result.num_rows());
      if (show_plan && result->plan != nullptr) {
        std::printf("%s", result->plan->Describe(/*with_stats=*/true).c_str());
      } else if (show_plan && !result->message.empty()) {
        std::printf("%s\n", result->message.c_str());
      }
    } else if (!result->message.empty()) {
      std::printf("%s\n", result->message.c_str());
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << d->Snapshot().ToJson() << "\n";
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
