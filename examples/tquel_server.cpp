// The tquel server: serves one or more database directories to concurrent
// clients over the length-prefixed wire protocol (src/net/protocol.h).
//
//   ./tquel_server --root=DIR [--socket=PATH | --port=N]
//                  [--durability=off|journal|sync] [--metrics]
//
// Databases live at <root>/<name> and open lazily on the first client
// hello naming them; every connection gets its own Session, so statement
// locking, snapshot reads, and journal group commit all come from the
// service layer.  The server runs until stdin closes or SIGINT/SIGTERM —
// scripts stop it by closing its stdin.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/chronoquel.h"
#include "net/server.h"

using tdb::DatabaseOptions;
using tdb::net::DatabaseRegistry;
using tdb::net::Server;
using tdb::net::ServerOptions;

namespace {

volatile sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  DatabaseOptions db_options;
  ServerOptions srv_options;
  std::string root;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--socket=", 0) == 0) {
      srv_options.unix_path = arg.substr(9);
    } else if (arg.rfind("--port=", 0) == 0) {
      srv_options.tcp_port = std::atoi(arg.c_str() + 7);
    } else if (arg == "--durability=off") {
      db_options.durability = tdb::DurabilityMode::kOff;
    } else if (arg == "--durability=journal") {
      db_options.durability = tdb::DurabilityMode::kJournal;
    } else if (arg == "--durability=sync") {
      db_options.durability = tdb::DurabilityMode::kJournalSync;
    } else if (arg == "--metrics") {
      db_options.metrics = true;
    } else {
      root.clear();
      break;
    }
  }
  if (root.empty() || (srv_options.unix_path.empty() &&
                       srv_options.tcp_port == 0)) {
    std::fprintf(stderr,
                 "usage: %s --root=DIR (--socket=PATH | --port=N)\n"
                 "          [--durability=off|journal|sync] [--metrics]\n",
                 argv[0]);
    return 1;
  }

  // Databases open at <root>/<name>; make sure the root itself exists so
  // the first hello doesn't fail on a missing parent directory.
  tdb::Status root_ok = tdb::Env::Default()->CreateDirIfMissing(root);
  if (!root_ok.ok()) {
    std::fprintf(stderr, "create root %s: %s\n", root.c_str(),
                 root_ok.ToString().c_str());
    return 1;
  }
  DatabaseRegistry registry(root, db_options);
  Server server(&registry, srv_options);
  tdb::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!srv_options.unix_path.empty()) {
    std::printf("tquel_server listening on %s (root %s)\n",
                srv_options.unix_path.c_str(), root.c_str());
  } else {
    std::printf("tquel_server listening on 127.0.0.1:%d (root %s)\n",
                server.port(), root.c_str());
  }
  std::fflush(stdout);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  // Park until stdin closes (scripted shutdown) or a signal arrives.
  char buf[256];
  while (g_stop == 0) {
    ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
    if (n <= 0 && errno != EINTR) break;
    if (g_stop != 0) break;
  }
  server.Stop();
  std::printf("tquel_server stopped\n");
  return 0;
}
