// Trend analysis example — the paper's decision-support motivation
// ("conventional DBMS's cannot support historical queries about the past
// status, much less trend analysis").
//
// A historical relation tracks warehouse stock levels; TQuel's when clause
// reconstructs the level at any instant, joins on coexistence, and the
// two-level store keeps current-state queries fast as history accumulates.

#include <cstdio>
#include <string>

#include "core/database.h"

using tdb::Database;
using tdb::DatabaseOptions;
using tdb::TimePoint;
using tdb::TimeResolution;

namespace {

void Must(Database* db, const std::string& text) {
  auto result = db->Execute(text);
  if (!result.ok()) {
    std::fprintf(stderr, "'%s' failed: %s\n", text.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
}

void Show(Database* db, const std::string& title, const std::string& text) {
  std::printf("--- %s ---\ntquel> %s\n", title.c_str(), text.c_str());
  auto result = db->Execute(text);
  if (!result.ok()) {
    std::printf("  error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result->result.ToString(TimeResolution::kDay).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/chronoquel_trend";
  DatabaseOptions options;
  options.start_time = *TimePoint::FromCivil(1985, 1, 7);
  options.auto_advance_seconds = 0;  // weeks tick exactly on day boundaries
  auto db = Database::Open(dir, options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Database* d = db->get();

  Must(d, "create interval stock (part = c8, qty = i4)");
  Must(d, "create interval orders (part = c8, promised = i4)");
  Must(d, "range of s is stock");
  Must(d, "range of o is orders");

  // A quarter of weekly stock levels for two parts.
  const int bolt[] = {120, 100, 85, 60, 45, 90, 130, 110, 95, 70, 55, 40};
  const int nut[] = {300, 280, 260, 290, 310, 250, 240, 270, 260, 230, 220,
                     210};
  for (int week = 0; week < 12; ++week) {
    if (week == 0) {
      Must(d, "append to stock (part = \"bolt\", qty = 120)");
      Must(d, "append to stock (part = \"nut\", qty = 300)");
    } else {
      Must(d, "replace s (qty = " + std::to_string(bolt[week]) +
                  ") where s.part = \"bolt\"");
      Must(d, "replace s (qty = " + std::to_string(nut[week]) +
                  ") where s.part = \"nut\"");
    }
    d->AdvanceSeconds(86400 * 7);
  }
  // An order promised during week 5.
  Must(d,
       "append to orders (part = \"bolt\", promised = 50) "
       "valid from \"2/4/85\" to \"2/18/85\"");

  Show(d, "current stock", "retrieve (s.part, s.qty) when s overlap \"now\"");

  Show(d, "stock level on Feb 10 (historical point query)",
       "retrieve (s.part, s.qty) when s overlap \"2/10/85\"");

  Show(d, "bolt level trend (all valid periods, oldest first)",
       "retrieve (s.qty) where s.part = \"bolt\"");

  Show(d,
       "temporal join: stock levels that coexisted with the promised order",
       "retrieve (s.qty, o.promised) "
       "valid from start of (s overlap o) to end of (s overlap o) "
       "where s.part = o.part when s overlap o");

  Show(d, "weeks the bolt level was below the order size",
       "retrieve (s.qty) where s.part = \"bolt\" and s.qty < 50");

  // Reorganize as a two-level store: the history keeps growing, but
  // current-state queries stay as cheap as on day one.
  Must(d, "modify stock to twolevel hash on part where fillfactor = 100, "
          "history = clustered");
  Show(d, "current stock after two-level reorganization (same answer)",
       "retrieve (s.part, s.qty) when s overlap \"now\"");
  return 0;
}
