// Version-management example — the paper's third motivation: "there is
// also a growing interest in applying database methods for version
// management and design control in computer aided design, requiring
// capabilities to store and process time dependent data".
//
// A rollback relation tracks released versions of design cells.  Because a
// rollback relation records *database states*, any past configuration of
// the whole design is reconstructable with one `as of` clause — the
// "design control" capability the paper refers to.

#include <cstdio>
#include <string>

#include "core/database.h"

using tdb::Database;
using tdb::DatabaseOptions;
using tdb::TimePoint;
using tdb::TimeResolution;

namespace {

void Must(Database* db, const std::string& text) {
  auto result = db->Execute(text);
  if (!result.ok()) {
    std::fprintf(stderr, "'%s' failed: %s\n", text.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
}

void Show(Database* db, const std::string& title, const std::string& text) {
  std::printf("--- %s ---\ntquel> %s\n", title.c_str(), text.c_str());
  auto result = db->Execute(text);
  if (!result.ok()) {
    std::printf("  error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result->result.ToString(TimeResolution::kDay).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/chronoquel_versions";
  DatabaseOptions options;
  options.start_time = *TimePoint::FromCivil(1985, 3, 1);
  auto db = Database::Open(dir, options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Database* d = db->get();

  // `persistent` (transaction time only): the relation records what the
  // design database contained at every instant.
  Must(d, "create persistent cells (name = c12, rev = i4, gates = i4)");
  Must(d, "range of c is cells");

  // March: initial release of three cells.
  Must(d, "append to cells (name = \"alu\", rev = 1, gates = 1200)");
  Must(d, "append to cells (name = \"decoder\", rev = 1, gates = 400)");
  Must(d, "append to cells (name = \"shifter\", rev = 1, gates = 800)");

  // April: the ALU is reworked twice.
  d->SetNow(*TimePoint::FromCivil(1985, 4, 10));
  Must(d, "replace c (rev = 2, gates = 1150) where c.name = \"alu\"");
  d->SetNow(*TimePoint::FromCivil(1985, 4, 25));
  Must(d, "replace c (rev = 3, gates = 1100) where c.name = \"alu\"");

  // May: the shifter is dropped from the design.
  d->SetNow(*TimePoint::FromCivil(1985, 5, 5));
  Must(d, "delete c where c.name = \"shifter\"");
  d->SetNow(*TimePoint::FromCivil(1985, 5, 20));

  Show(d, "the design today",
       "retrieve (c.name, c.rev, c.gates) sort by name");

  Show(d, "the design as taped out on April 15 (one as-of clause!)",
       "retrieve (c.name, c.rev, c.gates) as of \"4/15/85\" sort by name");

  Show(d, "every revision the ALU ever had, with its release window",
       "retrieve (c.rev, c.gates, released = c.transaction_start, "
       "superseded = c.transaction_stop) where c.name = \"alu\" "
       "as of \"beginning\" through \"forever\" sort by rev");

  Show(d, "gate-count budget per configuration: then vs now",
       "retrieve (total_now = sum(c.gates))");
  Show(d, "", "retrieve (total_apr15 = sum(c.gates)) as of \"4/15/85\"");

  std::printf(
      "Each `as of` reconstructs a complete historical configuration —\n"
      "no tags, copies, or checkpoints were ever taken.\n");
  return 0;
}
