// Access-method microbenchmarks (google-benchmark): raw insert / lookup /
// scan throughput of the heap, hash, and ISAM files over the in-memory
// environment.  These back the Figure 6-9 analysis with wall-clock numbers
// for the underlying operations.

#include <benchmark/benchmark.h>

#include "env/env.h"
#include "storage/hash_file.h"
#include "storage/heap_file.h"
#include "storage/isam_file.h"
#include "util/random.h"

namespace tdb {
namespace {

constexpr uint16_t kRecordSize = 116;  // the benchmark's rollback tuple

RecordLayout Layout() {
  RecordLayout layout;
  layout.record_size = kRecordSize;
  layout.key_offset = 0;
  layout.key_type = TypeId::kInt4;
  layout.key_width = 4;
  return layout;
}

std::vector<uint8_t> RecordFor(int32_t key) {
  std::vector<uint8_t> rec(kRecordSize, 0xAB);
  std::memcpy(rec.data(), &key, 4);
  return rec;
}

void BM_HeapInsert(benchmark::State& state) {
  MemEnv env;
  auto pager = Pager::Open(&env, "/bench.dat", nullptr);
  auto heap = HeapFile::Open(std::move(*pager), Layout());
  int32_t key = 0;
  for (auto _ : state) {
    auto rec = RecordFor(key++);
    benchmark::DoNotOptimize((*heap)->Insert(rec.data(), rec.size(), nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapInsert);

void BM_HashInsert(benchmark::State& state) {
  MemEnv env;
  auto pager = Pager::Open(&env, "/bench.dat", nullptr);
  auto hash = HashFile::Create(std::move(*pager), Layout(),
                               /*nbuckets=*/1024);
  int32_t key = 0;
  for (auto _ : state) {
    auto rec = RecordFor(key++ % 8192);
    benchmark::DoNotOptimize((*hash)->Insert(rec.data(), rec.size(), nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashInsert);

void BM_HashLookup(benchmark::State& state) {
  MemEnv env;
  auto pager = Pager::Open(&env, "/bench.dat", nullptr);
  auto hash = HashFile::Create(std::move(*pager), Layout(),
                               /*nbuckets=*/256);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    auto rec = RecordFor(i);
    (void)(*hash)->Insert(rec.data(), rec.size(), nullptr);
  }
  Random rng(7);
  for (auto _ : state) {
    Value key = Value::Int4(static_cast<int64_t>(rng.Uniform(n)));
    auto cur = (*hash)->ScanKey(key);
    int found = 0;
    while (true) {
      auto have = (*cur)->Next();
      if (!have.ok() || !*have) break;
      ++found;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashLookup)->Arg(1024)->Arg(8192);

void BM_IsamLookup(benchmark::State& state) {
  MemEnv env;
  auto pager = Pager::Open(&env, "/bench.dat", nullptr);
  const int n = static_cast<int>(state.range(0));
  std::vector<std::vector<uint8_t>> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) records.push_back(RecordFor(i));
  IsamMeta meta;
  auto isam = IsamFile::BulkLoad(std::move(*pager), Layout(),
                                 std::move(records), 100, &meta);
  Random rng(7);
  for (auto _ : state) {
    Value key = Value::Int4(static_cast<int64_t>(rng.Uniform(n)));
    auto cur = (*isam)->ScanKey(key);
    int found = 0;
    while (true) {
      auto have = (*cur)->Next();
      if (!have.ok() || !*have) break;
      ++found;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IsamLookup)->Arg(1024)->Arg(8192);

void BM_SequentialScan(benchmark::State& state) {
  MemEnv env;
  auto pager = Pager::Open(&env, "/bench.dat", nullptr);
  auto heap = HeapFile::Open(std::move(*pager), Layout());
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    auto rec = RecordFor(i);
    (void)(*heap)->Insert(rec.data(), rec.size(), nullptr);
  }
  for (auto _ : state) {
    auto cur = (*heap)->Scan();
    int count = 0;
    while (true) {
      auto have = (*cur)->Next();
      if (!have.ok() || !*have) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SequentialScan)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace tdb

BENCHMARK_MAIN();
