// Reproduces Figure 9: "Fixed Costs, Variable Costs and Growth Rates" and
// validates the Section 5.3 cost formula.
//
// The fixed portion of a query's cost (ISAM directory traversal +
// temporary-relation I/O) is *measured* here via categorized page-read
// accounting, not estimated.  The growth rate is
//   (cost(n) - cost(0)) / (variable cost * n)
// and the paper's central result is that it depends only on the database
// type and the loading factor:
//   rollback/historical: rate ~= loading;  temporal: rate ~= 2 x loading.
//
// The second table checks the predictive formula
//   cost(n) = fixed + variable * (1 + rate * n)
// using the *law-implied* rate (loading x type multiplier) against the
// measured cost at every update count.

#include <cmath>

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

int main(int argc, char** argv) {
  constexpr int kMaxUc = 14;
  MetricsSink sink(argc, argv, "METRICS_fig09.json");
  TablePrinter table({"type", "loading", "query", "fixed", "variable",
                      "growth rate", "law-implied rate"});
  TablePrinter formula({"type", "loading", "query", "measured uc7",
                        "predicted uc7", "rel err %", "max rel err % (all uc)"});

  struct Cfg {
    DbType type;
    int fillfactor;
  };
  std::vector<Cfg> cfgs;
  for (DbType type : {DbType::kRollback, DbType::kTemporal}) {
    for (int fillfactor : {100, 50}) cfgs.push_back({type, fillfactor});
  }
  // Sweep the four (type, loading) cells concurrently; the tables are built
  // serially below, in cell order, so stdout is unchanged.
  int64_t t0 = NowMillis();
  auto sweeps = RunCells(cfgs.size(), [&](size_t i) {
    WorkloadConfig config;
    config.type = cfgs[i].type;
    config.fillfactor = cfgs[i].fillfactor;
    auto bench = CheckOk(BenchmarkDb::Create(config), "create");
    auto sweep = Sweep(bench.get(), kMaxUc, AllQueries());
    sink.Add(i, std::string(DbTypeName(cfgs[i].type)) + " " +
                    LoadingName(cfgs[i].fillfactor),
             bench->db());
    return sweep;
  });
  std::fprintf(stderr, "fig09: %zu cells on %zu threads in %lld ms\n",
               cfgs.size(), BenchThreads(cfgs.size()),
               static_cast<long long>(NowMillis() - t0));

  for (size_t ci = 0; ci < cfgs.size(); ++ci) {
    {
      DbType type = cfgs[ci].type;
      int fillfactor = cfgs[ci].fillfactor;
      const auto& sweep = sweeps[ci];

      double implied_rate = (type == DbType::kTemporal ? 2.0 : 1.0) *
                            (fillfactor / 100.0);
      for (int q = 1; q <= 12; ++q) {
        if (sweep[0].find(q) == sweep[0].end()) continue;
        const Measure& m0 = sweep[0].at(q);
        const Measure& mN = sweep[kMaxUc].at(q);
        double fixed = static_cast<double>(m0.fixed_pages);
        double variable = static_cast<double>(m0.input_pages) - fixed;
        if (variable <= 0) variable = 1;  // degenerate tiny queries
        double rate =
            (static_cast<double>(mN.input_pages) -
             static_cast<double>(m0.input_pages)) /
            (variable * kMaxUc);
        table.AddRow({DbTypeName(type), LoadingName(fillfactor),
                      StrPrintf("Q%02d", q), Cell((uint64_t)fixed),
                      Cell((uint64_t)variable), Cell(rate, 2),
                      Cell(implied_rate, 2)});

        // Formula check across every measured update count.
        double max_err = 0;
        double pred7 = 0;
        for (int uc = 0; uc <= kMaxUc; ++uc) {
          double predicted = fixed + variable * (1.0 + implied_rate * uc);
          double measured = static_cast<double>(sweep[uc].at(q).input_pages);
          double err = measured > 0
                           ? std::fabs(predicted - measured) / measured * 100
                           : 0;
          max_err = std::max(max_err, err);
          if (uc == 7) pred7 = predicted;
        }
        double measured7 = static_cast<double>(sweep[7].at(q).input_pages);
        formula.AddRow({DbTypeName(type), LoadingName(fillfactor),
                        StrPrintf("Q%02d", q), Cell((uint64_t)measured7),
                        Cell(pred7, 0),
                        Cell(std::fabs(pred7 - measured7) / measured7 * 100,
                             1),
                        Cell(max_err, 1)});
      }
    }
  }

  std::printf(
      "Figure 9: fixed cost, variable cost and measured growth rate\n"
      "(historical behaves like rollback; static does not grow)\n\n%s\n",
      table.ToString().c_str());
  std::printf(
      "Section 5.3 formula check: cost(n) = fixed + variable*(1 + rate*n) "
      "with the law-implied rate\n\n%s\n",
      formula.ToString().c_str());
  sink.Write();
  return 0;
}
