// Ablation: the loading-factor trade-off of Section 6.
//
// "Since lower loading reduces the number of overflow pages ... it results
//  in a lower growth rate.  Hence better performance is achieved with a
//  lower loading factor when the update count is high.  But there is an
//  overhead ... which may cause worse performance than a higher loading
//  when the update count is low."  (The paper's example: Q10 at uc=0 costs
//  3385 pages at 50% loading vs 2233 at 100%.)
//
// This sweep varies the fill factor over {100, 75, 50, 25} on the temporal
// database and prints the Q07 (sequential scan) and Q05 (hashed access)
// costs per update count, exposing the crossover.

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

int main() {
  constexpr int kMaxUc = 12;
  const std::vector<int> kFillfactors = {100, 75, 50, 25};

  std::map<int, std::vector<std::map<int, Measure>>> sweeps;
  for (int ff : kFillfactors) {
    WorkloadConfig config;
    config.type = DbType::kTemporal;
    config.fillfactor = ff;
    auto bench = CheckOk(BenchmarkDb::Create(config), "create");
    sweeps[ff] = Sweep(bench.get(), kMaxUc, {5, 7, 10});
  }

  for (int q : {5, 7, 10}) {
    std::vector<std::string> headers = {"uc"};
    for (int ff : kFillfactors) {
      headers.push_back(StrPrintf("ff=%d", ff));
    }
    TablePrinter table(std::move(headers));
    for (int uc = 0; uc <= kMaxUc; ++uc) {
      std::vector<std::string> row = {Cell(uint64_t(uc))};
      for (int ff : kFillfactors) {
        row.push_back(Cell(sweeps[ff][uc].at(q).input_pages));
      }
      table.AddRow(std::move(row));
    }
    std::printf("Q%02d input pages by fill factor (temporal database)\n\n%s\n",
                q, table.ToString().c_str());
  }
  std::printf(
      "Lower loading starts more expensive (more primary/directory pages) "
      "but\ngrows more slowly; the curves cross as the update count "
      "rises.\n");
  return 0;
}
