// Production-storage sweep: page size x buffer pool x vacuum partition
// policy (ROADMAP item 3, the levers DESIGN.md section 14 documents).
//
// Axis 1/2 (the query grid): the paper's temporal workload at update count
// 4 runs its query mix under every (page_size, pool) cell.  The paper cell
// (1024-byte pages, one private frame per relation) reproduces the paper's
// counts; the production cells show what bigger pages and a shared pool
// buy — 4096-byte pages cut the page count of every sequential scan ~4x,
// and an uncapped warm pool eliminates the re-reads the single-frame
// discipline was designed to expose (ISAM directory roots, join
// ping-pong, temp re-reads).
//
// Axis 3 (vacuum): a two-level history relation is vacuumed under each
// partition policy; the sweep reports versions migrated, segments created,
// vacuum cost, and the query mix's page-count shift.  (History queries
// still read every version after a vacuum — correctness is pinned by the
// test battery — so the mix count moves only slightly; the vacuum win is
// organizational: cold versions live in epoch-partitioned segment files
// the active store no longer carries.)
//
// Output is a single JSON object on stdout; scripts/make_bench_storage.py
// adds the headline ratios and writes BENCH_storage.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

namespace {

constexpr int kUpdateRounds = 4;
const std::vector<int> kQueries = {1, 3, 5, 9, 10, 11, 12};

struct GridCell {
  std::string pool;  // "paper" | "pool_cap1" | "pool_warm"
  uint32_t page_size;
  int pool_frames;
  int pool_file_cap;
  uint64_t input_pages = 0;
  uint64_t output_pages = 0;
  uint64_t rows = 0;
  double wall_ms = 0;
};

/// Runs the query mix once and accumulates its totals into `cell`.
void RunMix(BenchmarkDb* bench, GridCell* cell) {
  for (int q : kQueries) {
    if (bench->QueryText(q).empty()) continue;
    Measure m = CheckOk(bench->RunQuery(q), "query");
    cell->input_pages += m.input_pages;
    cell->output_pages += m.output_pages;
    cell->rows += m.rows;
    cell->wall_ms += m.wall_ms;
  }
}

std::string JsonGridCell(const GridCell& c) {
  return StrPrintf(
      "    {\"pool\": \"%s\", \"page_size\": %u, \"pool_frames\": %d, "
      "\"pool_file_cap\": %d, \"input_pages\": %llu, \"output_pages\": "
      "%llu, \"rows\": %llu, \"wall_ms\": %.2f}",
      c.pool.c_str(), c.page_size, c.pool_frames, c.pool_file_cap,
      static_cast<unsigned long long>(c.input_pages),
      static_cast<unsigned long long>(c.output_pages),
      static_cast<unsigned long long>(c.rows), c.wall_ms);
}

struct VacuumRun {
  std::string policy;
  uint32_t page_size;
  int64_t migrated = 0;
  std::string message;
  double vacuum_ms = 0;
  uint64_t mix_pages_before = 0;
  uint64_t mix_pages_after = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int ntuples = 1024;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--ntuples=", 0) == 0) {
      ntuples = std::atoi(arg.c_str() + 10);
    }
  }

  // ---- axes 1 and 2: page size x pool over the paper query mix ----
  struct PoolVariant {
    const char* name;
    int frames;
    int cap;
  };
  const PoolVariant kPools[] = {
      {"paper", 0, 0},         // private single frame per relation
      {"pool_cap1", 64, 0},    // shared pool at paper parity (1/file)
      {"pool_warm", 256, -1},  // uncapped pool, warm across relations
  };

  std::vector<GridCell> cells;
  for (uint32_t page_size : {1024u, 4096u}) {
    for (const PoolVariant& pv : kPools) {
      WorkloadConfig config;
      config.type = DbType::kTemporal;
      config.fillfactor = 100;
      config.ntuples = ntuples;
      config.page_size = page_size == 1024 ? 0 : page_size;
      config.pool_frames = pv.frames;
      config.pool_file_cap = pv.cap;
      auto bench = CheckOk(BenchmarkDb::Create(config), "create");
      for (int round = 0; round < kUpdateRounds; ++round) {
        CheckOk(bench->UniformUpdateRound(), "update");
      }
      GridCell cell;
      cell.pool = pv.name;
      cell.page_size = page_size;
      cell.pool_frames = pv.frames;
      cell.pool_file_cap = pv.cap;
      // One unmeasured pass warms the pool (the paper cell's single frames
      // hold only the trailing page, so it stays effectively cold).
      RunMix(bench.get(), &cell);
      cell = GridCell{pv.name, page_size, pv.frames, pv.cap};
      RunMix(bench.get(), &cell);
      cells.push_back(cell);
    }
  }

  // ---- axis 3: vacuum partition policy on a two-level history store ----
  // The historical type retires versions with a plain valid-to stamp, so
  // whole chains go cold and each update round's day lands in its own
  // epoch segment.  (Temporal relations interleave tx_stop=Forever
  // correction versions, which vacuum rightly never moves — rollback can
  // still surface them — so only the oldest cold run would migrate there.)
  std::vector<VacuumRun> vacuums;
  for (uint32_t page_size : {1024u, 4096u}) {
    for (const char* policy : {"single", "epoch:86400"}) {
      WorkloadConfig config;
      config.type = DbType::kHistorical;
      config.fillfactor = 100;
      config.ntuples = ntuples;
      config.two_level = true;
      config.page_size = page_size == 1024 ? 0 : page_size;
      config.vacuum_partition = policy;
      auto bench = CheckOk(BenchmarkDb::Create(config), "create");
      for (int round = 0; round < kUpdateRounds; ++round) {
        CheckOk(bench->UniformUpdateRound(), "update");
      }
      VacuumRun run;
      run.policy = policy;
      run.page_size = page_size;
      for (int q : kQueries) {
        if (bench->QueryText(q).empty()) continue;
        run.mix_pages_before +=
            CheckOk(bench->RunQuery(q), "query").input_pages;
      }
      auto t0 = std::chrono::steady_clock::now();
      auto r = bench->db()->Execute("vacuum bench_h");
      CheckOk(r.status(), "vacuum");
      run.vacuum_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      run.migrated = r->affected;
      run.message = r->message;
      for (int q : kQueries) {
        if (bench->QueryText(q).empty()) continue;
        run.mix_pages_after +=
            CheckOk(bench->RunQuery(q), "query").input_pages;
      }
      vacuums.push_back(run);
    }
  }

  // ---- emit ----
  std::printf("{\n");
  std::printf("  \"source\": \"bench/storage_sweep.cc\",\n");
  std::printf("  \"workload\": {\"type\": \"temporal\", \"ntuples\": %d, "
              "\"update_rounds\": %d, \"queries\": \"Q1 Q3 Q5 Q9-Q12\"},\n",
              ntuples, kUpdateRounds);
  std::printf("  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s\n", JsonGridCell(cells[i]).c_str(),
                i + 1 < cells.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"vacuum\": [\n");
  for (size_t i = 0; i < vacuums.size(); ++i) {
    const VacuumRun& v = vacuums[i];
    std::printf(
        "    {\"policy\": \"%s\", \"page_size\": %u, \"migrated\": %lld, "
        "\"vacuum_ms\": %.2f, \"mix_pages_before\": %llu, "
        "\"mix_pages_after\": %llu, \"message\": \"%s\"}%s\n",
        v.policy.c_str(), v.page_size, static_cast<long long>(v.migrated),
        v.vacuum_ms, static_cast<unsigned long long>(v.mix_pages_before),
        static_cast<unsigned long long>(v.mix_pages_after),
        v.message.c_str(), i + 1 < vacuums.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
