#ifndef CHRONOQUEL_BENCH_BENCH_UTIL_H_
#define CHRONOQUEL_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-figure benchmark binaries.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/workload.h"
#include "core/database.h"
#include "util/stringx.h"

namespace tdb {
namespace bench {

/// Aborts with a message when a Status is not OK (bench binaries have no
/// recovery path).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Runs queries `qs` at every update count 0..max_uc, returning
/// measurements[uc][qnum].
inline std::vector<std::map<int, Measure>> Sweep(
    BenchmarkDb* bench, int max_uc, const std::vector<int>& qs) {
  std::vector<std::map<int, Measure>> out;
  for (int uc = 0; uc <= max_uc; ++uc) {
    std::map<int, Measure> row;
    for (int q : qs) {
      if (bench->QueryText(q).empty()) continue;
      row[q] = CheckOk(bench->RunQuery(q), "query");
    }
    out.push_back(std::move(row));
    if (uc < max_uc) CheckOk(bench->UniformUpdateRound(), "update round");
  }
  return out;
}

/// Monotonic clock in milliseconds, for wall-clock reporting.  Timings go
/// to stderr only: stdout carries the paper's page counts and must stay
/// byte-identical run to run.
inline int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Execution-engine context for benchmark reporting: the intra-query
/// worker-thread lever as resolved from TDB_EXEC_THREADS (the same
/// precedence ResolveExecThreads applies when no per-database option is
/// set) plus the host's actual hardware concurrency.  Recorded into
/// BENCH_exec.json so thread-scaling numbers are interpretable — a
/// "4-thread" run on a 1-core host measures scheduling overhead, not
/// scaling.
struct ExecContext {
  int exec_threads = 1;
  unsigned hardware_concurrency = 1;

  static ExecContext Detect() {
    ExecContext ctx;
    if (const char* env = std::getenv("TDB_EXEC_THREADS")) {
      long v = std::strtol(env, nullptr, 10);
      if (v > 0) ctx.exec_threads = static_cast<int>(std::min<long>(v, 64));
    }
    ctx.hardware_concurrency = std::thread::hardware_concurrency();
    if (ctx.hardware_concurrency == 0) ctx.hardware_concurrency = 1;
    return ctx;
  }
};

/// Number of worker threads for RunCells: hardware concurrency, capped at
/// the cell count, overridable via TDB_BENCH_THREADS (1 forces the serial
/// order, useful when debugging a cell in isolation).
inline size_t BenchThreads(size_t cells) {
  size_t threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (const char* env = std::getenv("TDB_BENCH_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) threads = static_cast<size_t>(v);
  }
  return std::min(threads, cells);
}

/// Runs `cells` independent measurement cells concurrently and returns the
/// results indexed by cell, so downstream printing is byte-identical to a
/// serial sweep regardless of completion order.
///
/// Each cell function MUST build its own BenchmarkDb (in-memory Env +
/// Database): page counters and the logical clock are single-threaded by
/// design, and sharing them across cells would corrupt the paper metrics
/// (IoRegistry asserts on it in debug builds).  Page-I/O counts are
/// unaffected by the parallelism — every cell performs exactly the accesses
/// the serial run performs.
template <typename Fn>
auto RunCells(size_t cells, Fn&& fn) -> std::vector<decltype(fn(size_t{0}))> {
  using R = decltype(fn(size_t{0}));
  std::vector<R> results(cells);
  size_t threads = BenchThreads(cells);
  if (threads <= 1) {
    for (size_t i = 0; i < cells; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells) return;
      results[i] = fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  return results;
}

/// Optional `--metrics[=PATH]` support for the figure drivers: collects
/// one metrics snapshot per measurement cell and writes them on exit as a
/// JSON array — one {"cell": <label>, "metrics": {...}} object per cell,
/// in cell order — next to the figure's stdout capture (default PATH is
/// METRICS_<figure>.json).  stdout is never touched, so the paper tables
/// stay byte-identical whether or not the flag is given.
class MetricsSink {
 public:
  MetricsSink(int argc, char** argv, const std::string& default_path) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--metrics") {
        path_ = default_path;
      } else if (arg.rfind("--metrics=", 0) == 0) {
        path_ = arg.substr(10);
      }
    }
  }

  bool enabled() const { return !path_.empty(); }

  /// Captures `db`'s current snapshot under `label`.  Thread-safe: cells
  /// call this concurrently from RunCells workers, each on its own
  /// Database.  No-op when --metrics was not given, so instrumented cells
  /// cost nothing in a plain run.
  void Add(size_t cell, const std::string& label, Database* db) {
    if (!enabled()) return;
    std::string json = db->Snapshot().ToJson();
    std::lock_guard<std::mutex> lock(mu_);
    cells_[cell] = "{\"cell\":\"" + label + "\",\"metrics\":" + json + "}";
  }

  /// Writes the collected snapshots in cell order; no-op when disabled.
  void Write() const {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s\n", path_.c_str());
      return;
    }
    std::fputs("[\n", f);
    bool first = true;
    for (const auto& [cell, json] : cells_) {
      (void)cell;
      if (!first) std::fputs(",\n", f);
      first = false;
      std::fputs(json.c_str(), f);
    }
    std::fputs("\n]\n", f);
    std::fclose(f);
    std::fprintf(stderr, "metrics written to %s\n", path_.c_str());
  }

 private:
  std::string path_;
  std::mutex mu_;
  std::map<size_t, std::string> cells_;
};

inline const char* LoadingName(int fillfactor) {
  return fillfactor == 100 ? "100%" : "50%";
}

inline std::vector<int> AllQueries() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
}

}  // namespace bench
}  // namespace tdb

#endif  // CHRONOQUEL_BENCH_BENCH_UTIL_H_
