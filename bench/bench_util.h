#ifndef CHRONOQUEL_BENCH_BENCH_UTIL_H_
#define CHRONOQUEL_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-figure benchmark binaries.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "benchlib/workload.h"
#include "util/stringx.h"

namespace tdb {
namespace bench {

/// Aborts with a message when a Status is not OK (bench binaries have no
/// recovery path).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Runs queries `qs` at every update count 0..max_uc, returning
/// measurements[uc][qnum].
inline std::vector<std::map<int, Measure>> Sweep(
    BenchmarkDb* bench, int max_uc, const std::vector<int>& qs) {
  std::vector<std::map<int, Measure>> out;
  for (int uc = 0; uc <= max_uc; ++uc) {
    std::map<int, Measure> row;
    for (int q : qs) {
      if (bench->QueryText(q).empty()) continue;
      row[q] = CheckOk(bench->RunQuery(q), "query");
    }
    out.push_back(std::move(row));
    if (uc < max_uc) CheckOk(bench->UniformUpdateRound(), "update round");
  }
  return out;
}

inline const char* LoadingName(int fillfactor) {
  return fillfactor == 100 ? "100%" : "50%";
}

inline std::vector<int> AllQueries() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
}

}  // namespace bench
}  // namespace tdb

#endif  // CHRONOQUEL_BENCH_BENCH_UTIL_H_
