// Response-time model: the paper measures page accesses because the metric
// "is highly correlated with both CPU time and response time".  This bench
// quantifies the correlation: every benchmark query's page trace is
// replayed against a model of a mid-1980s disk (RA81-class: ~28 ms average
// seek, 3600 rpm, ~0.6 ms/KiB transfer; sequential next-page accesses skip
// the seek).  The modeled times also expose what raw page counts hide —
// that a sequential scan's pages are far cheaper than a probe's.

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

int main() {
  constexpr int kUc = 8;
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  auto bench = CheckOk(BenchmarkDb::Create(config), "create");
  for (int round = 0; round < kUc; ++round) {
    CheckOk(bench->UniformUpdateRound(), "update");
  }

  TablePrinter table({"query", "pages", "random", "sequential",
                      "modeled time (s)", "ms/page"});
  for (int q = 1; q <= 12; ++q) {
    auto m = CheckOk(bench->RunQuery(q), "query");
    uint64_t accesses = m.random_accesses + m.sequential_accesses;
    double ms_per_page = accesses > 0 ? m.modeled_ms / double(accesses) : 0;
    table.AddRow({StrPrintf("Q%02d", q), Cell(m.input_pages + m.output_pages),
                  Cell(m.random_accesses), Cell(m.sequential_accesses),
                  Cell(m.modeled_ms / 1000.0, 2), Cell(ms_per_page, 1)});
  }
  std::printf(
      "Modeled device time per benchmark query (temporal, 100%%, uc=%d; "
      "RA81-class disk)\n\n%s\n",
      kUc, table.ToString().c_str());
  std::printf(
      "Sequential scans (Q03/Q07) run near the transfer rate while probe-\n"
      "heavy plans (Q09/Q10) pay a seek per page — the asymmetry behind the\n"
      "paper's note that its 20 CPU-hours of benchmarking were I/O bound.\n");
  return 0;
}
