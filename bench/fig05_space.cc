// Reproduces Figure 5: "Space Requirements (in Pages)" — the size of the
// hashed (H) and ISAM (I) relations of each database type at update counts
// 0 and 14, the growth per update, and the growth rate (growth / size at
// update count 0).
//
// Paper values for comparison (Fig. 5):
//   rollback/historical 100%: size0 129/129, size14 1927/1921, growth ~128,
//                             rate ~1
//   rollback/historical  50%: size0 257/259, size14 2048/2051, growth ~128,
//                             rate ~0.5
//   temporal 100%: size0 129/129, size14 3717/3713, growth ~256, rate ~2
//   temporal  50%: size0 257/259, size14 3839/3843, growth ~256, rate ~1

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

int main() {
  constexpr int kMaxUc = 15;
  TablePrinter table({"type", "loading", "rel", "size uc0", "size uc14",
                      "growth/update", "growth rate"});

  for (DbType type : {DbType::kStatic, DbType::kRollback, DbType::kHistorical,
                      DbType::kTemporal}) {
    for (int fillfactor : {100, 50}) {
      WorkloadConfig config;
      config.type = type;
      config.fillfactor = fillfactor;
      auto bench = CheckOk(BenchmarkDb::Create(config), "create");

      std::map<int, std::pair<uint64_t, uint64_t>> sizes;  // uc -> (H, I)
      for (int uc = 0; uc <= kMaxUc; ++uc) {
        sizes[uc] = {CheckOk(bench->PagesOf("h"), "pages h"),
                     CheckOk(bench->PagesOf("i"), "pages i")};
        if (uc < kMaxUc) CheckOk(bench->UniformUpdateRound(), "update");
      }

      for (const char* rel : {"h", "i"}) {
        bool is_h = rel[0] == 'h';
        uint64_t s0 = is_h ? sizes[0].first : sizes[0].second;
        uint64_t s14 = is_h ? sizes[14].first : sizes[14].second;
        if (type == DbType::kStatic) {
          table.AddRow({DbTypeName(type), LoadingName(fillfactor),
                        is_h ? "H" : "I", Cell(s0), "-", "-", "-"});
          continue;
        }
        double growth = static_cast<double>(s14 - s0) / 14.0;
        double rate = growth / static_cast<double>(s0);
        table.AddRow({DbTypeName(type), LoadingName(fillfactor),
                      is_h ? "H" : "I", Cell(s0), Cell(s14), Cell(growth, 1),
                      Cell(rate, 2)});
      }
    }
  }
  std::printf("Figure 5: Space Requirements (in pages)\n\n%s\n",
              table.ToString().c_str());
  std::printf(
      "Paper (Fig. 5): rollback/historical grow ~128 pages/update (rate = "
      "loading factor);\ntemporal grows ~256 pages/update (rate = 2x loading "
      "factor); static does not grow.\n");
  return 0;
}
