// Temporal-primitive microbenchmarks: interval algebra and time parsing /
// formatting, the operators behind every when / valid / as-of clause.

#include <benchmark/benchmark.h>

#include "temporal/interval.h"
#include "types/timepoint.h"
#include "util/random.h"

namespace tdb {
namespace {

void BM_IntervalOverlap(benchmark::State& state) {
  Random rng(1);
  std::vector<Interval> intervals;
  for (int i = 0; i < 1024; ++i) {
    int32_t a = static_cast<int32_t>(rng.Uniform(1u << 30));
    int32_t b = a + static_cast<int32_t>(rng.Uniform(1u << 20));
    intervals.emplace_back(TimePoint(a), TimePoint(b));
  }
  size_t i = 0;
  for (auto _ : state) {
    const Interval& a = intervals[i % intervals.size()];
    const Interval& b = intervals[(i + 7) % intervals.size()];
    benchmark::DoNotOptimize(a.Overlaps(b));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalOverlap);

void BM_IntervalIntersectSpan(benchmark::State& state) {
  Interval a(TimePoint(1000), TimePoint(2000));
  Interval b(TimePoint(1500), TimePoint(2500));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Interval::Intersect(a, b));
    benchmark::DoNotOptimize(Interval::Span(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_IntervalIntersectSpan);

void BM_TimeParse(benchmark::State& state) {
  for (auto _ : state) {
    auto tp = TimePoint::Parse("08:30:15 2/15/1980");
    benchmark::DoNotOptimize(tp.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeParse);

void BM_TimeFormat(benchmark::State& state) {
  TimePoint tp(320000000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tp.ToString(TimeResolution::kSecond));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeFormat);

}  // namespace
}  // namespace tdb

BENCHMARK_MAIN();
