// Reproduces the Section 5.4 experiment: non-uniform update distribution.
//
// Instead of updating every tuple once per round, a SINGLE tuple is updated
// repeatedly (the maximum-variance case).  The paper's claim: the growth
// rate *averaged over all tuples* is the same as under uniform updates —
// e.g. updating one tuple of a 100%-loaded temporal relation 1024 times
// (average update count 1) makes a hashed access to any tuple sharing the
// hot tuple's page cost 257 reads while every other access costs 1, so the
// weighted average is 3, identical to the uniform case.
//
// We scale the experiment (updating one tuple n*N times costs O(n^2) page
// writes, as the paper notes) to average update counts 0..2 with N=256.

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

int main() {
  constexpr int kTuples = 256;
  constexpr int kHotId = 17;
  constexpr int kMaxAvgUc = 2;

  TablePrinter table({"avg uc", "distribution", "Q01 hot tuple",
                      "Q01 cold tuple", "Q01 weighted avg", "uniform Q01"});

  // Uniform baseline.
  WorkloadConfig uniform_config;
  uniform_config.type = DbType::kTemporal;
  uniform_config.fillfactor = 100;
  uniform_config.ntuples = kTuples;
  auto uniform = CheckOk(BenchmarkDb::Create(uniform_config), "create");
  std::vector<uint64_t> uniform_q01;
  for (int uc = 0; uc <= kMaxAvgUc; ++uc) {
    uniform_q01.push_back(
        CheckOk(uniform->RunQuery(1), "q01").input_pages);
    if (uc < kMaxAvgUc) CheckOk(uniform->UniformUpdateRound(), "update");
  }

  // Non-uniform: all updates hit tuple kHotId.
  WorkloadConfig hot_config = uniform_config;
  auto hot = CheckOk(BenchmarkDb::Create(hot_config), "create");
  for (int uc = 0; uc <= kMaxAvgUc; ++uc) {
    // Hashed access to the hot tuple vs a tuple in an untouched bucket.
    auto hot_probe = CheckOk(
        hot->RunText(StrPrintf("retrieve (h.id, h.seq) where h.id = %d",
                               kHotId)),
        "hot probe");
    auto cold_probe = CheckOk(
        hot->RunText(StrPrintf("retrieve (h.id, h.seq) where h.id = %d",
                               kHotId + 1)),  // different bucket (mod hash)
        "cold probe");
    // Tuples sharing the hot bucket see the full chain; with division
    // hashing the hot bucket holds `tuples/buckets` tuples.
    auto rel = hot->db()->GetRelation("bench_h");
    CheckOk(rel.status(), "relation");
    uint32_t buckets = 0;
    if ((*rel)->primary()->org() == Organization::kHash) {
      buckets = static_cast<HashFile*>((*rel)->primary())->nbuckets();
    }
    double per_bucket = buckets > 0 ? double(kTuples) / buckets : 1;
    double weighted =
        (per_bucket * double(hot_probe.input_pages) +
         double(kTuples - per_bucket) * double(cold_probe.input_pages)) /
        double(kTuples);
    table.AddRow({Cell(uint64_t(uc)), "single hot tuple",
                  Cell(hot_probe.input_pages), Cell(cold_probe.input_pages),
                  Cell(weighted, 2), Cell(uniform_q01[uc])});
    if (uc < kMaxAvgUc) {
      CheckOk(hot->UpdateSingleTuple(kHotId, kTuples), "hot updates");
    }
  }

  std::printf(
      "Section 5.4: non-uniform (maximum variance) update distribution\n\n"
      "%s\n",
      table.ToString().c_str());
  std::printf(
      "Paper's claim: the weighted-average cost equals the uniform-"
      "distribution cost,\nso the growth rate is independent of the update "
      "distribution.\n");
  return 0;
}
