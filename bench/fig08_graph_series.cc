// Reproduces Figure 8: "Graphs for Input Pages" as plottable CSV series.
//   (a) the temporal database with 100% loading — straight lines of
//       different slope per query;
//   (b) the rollback database with 50% loading — the jagged lines caused
//       by odd-numbered updates filling the slack left at 50% fill before
//       new overflow pages are added.
//
// Output: CSV to stdout (uc, then one column per query), two blocks.

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

namespace {

struct SeriesSpec {
  const char* title;
  DbType type;
  int fillfactor;
  int max_uc;
};

struct SeriesData {
  std::vector<int> qs;  // queries defined for this database type
  std::vector<std::map<int, Measure>> sweep;
};

// Measurement only — printing happens serially afterwards so the two
// series can be computed concurrently without reordering stdout.
SeriesData ComputeSeries(const SeriesSpec& spec, size_t cell,
                         MetricsSink* sink) {
  WorkloadConfig config;
  config.type = spec.type;
  config.fillfactor = spec.fillfactor;
  auto bench = CheckOk(BenchmarkDb::Create(config), "create");
  SeriesData data;
  for (int q = 1; q <= 12; ++q) {
    if (!bench->QueryText(q).empty()) data.qs.push_back(q);
  }
  data.sweep = Sweep(bench.get(), spec.max_uc, AllQueries());
  sink->Add(cell, spec.title, bench->db());
  return data;
}

void PrintSeries(const SeriesSpec& spec, const SeriesData& data) {
  std::printf("# %s\n", spec.title);
  std::printf("uc");
  for (int q : data.qs) std::printf(",Q%02d", q);
  std::printf("\n");
  for (int uc = 0; uc <= spec.max_uc; ++uc) {
    std::printf("%d", uc);
    for (int q : data.qs) {
      std::printf(",%llu",
                  (unsigned long long)data.sweep[uc].at(q).input_pages);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  MetricsSink sink(argc, argv, "METRICS_fig08.json");
  const std::vector<SeriesSpec> specs = {
      {"Figure 8(a): temporal database, 100% loading", DbType::kTemporal, 100,
       15},
      {"Figure 8(b): rollback database, 50% loading (jagged lines)",
       DbType::kRollback, 50, 15},
  };
  int64_t t0 = NowMillis();
  auto series = RunCells(
      specs.size(), [&](size_t i) { return ComputeSeries(specs[i], i, &sink); });
  std::fprintf(stderr, "fig08: %zu cells on %zu threads in %lld ms\n",
               specs.size(), BenchThreads(specs.size()),
               static_cast<long long>(NowMillis() - t0));
  for (size_t i = 0; i < specs.size(); ++i) PrintSeries(specs[i], series[i]);
  sink.Write();
  return 0;
}
