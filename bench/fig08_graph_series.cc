// Reproduces Figure 8: "Graphs for Input Pages" as plottable CSV series.
//   (a) the temporal database with 100% loading — straight lines of
//       different slope per query;
//   (b) the rollback database with 50% loading — the jagged lines caused
//       by odd-numbered updates filling the slack left at 50% fill before
//       new overflow pages are added.
//
// Output: CSV to stdout (uc, then one column per query), two blocks.

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

namespace {

void EmitSeries(const char* title, DbType type, int fillfactor, int max_uc) {
  WorkloadConfig config;
  config.type = type;
  config.fillfactor = fillfactor;
  auto bench = CheckOk(BenchmarkDb::Create(config), "create");
  auto sweep = Sweep(bench.get(), max_uc, AllQueries());

  std::printf("# %s\n", title);
  std::printf("uc");
  std::vector<int> qs;
  for (int q = 1; q <= 12; ++q) {
    if (!bench->QueryText(q).empty()) {
      qs.push_back(q);
      std::printf(",Q%02d", q);
    }
  }
  std::printf("\n");
  for (int uc = 0; uc <= max_uc; ++uc) {
    std::printf("%d", uc);
    for (int q : qs) {
      std::printf(",%llu",
                  (unsigned long long)sweep[uc].at(q).input_pages);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  EmitSeries("Figure 8(a): temporal database, 100% loading",
             DbType::kTemporal, 100, 15);
  EmitSeries("Figure 8(b): rollback database, 50% loading (jagged lines)",
             DbType::kRollback, 50, 15);
  return 0;
}
