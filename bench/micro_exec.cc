// Execution hot-path microbenchmarks (google-benchmark): the wall-clock
// side of the PR's compiled-predicate + zero-copy work.  Page-I/O figures
// are unaffected by any of this (the golden test locks them); these numbers
// quantify the CPU cost per tuple.
//
// Pairs to compare:
//   BM_DecodeFullRow      vs BM_LazyDecodeTwoAttrs   (zero-copy binding)
//   BM_EvalAst            vs BM_EvalCompiled         (one predicate, bound)
//   BM_ScanFilterAst      vs BM_ScanFilterCompiled   (bind + filter loop)
//   BM_ScanFilterHotPath  vs BM_ScanFilterVectorized (selection-vector
//                                                     kernel over a morsel)
//   BM_ExecScanFilter* / BM_ExecJoin*                (end-to-end engine A/B,
//                                                     tuple vs vectorized)
//   BM_QueryQ04 / BM_QueryQ07                        (end to end; A/B via
//                                                     TDB_COMPILED_EXPR=0)
//
// scripts/make_bench_exec.py turns the --benchmark_format=json output into
// the repo-root BENCH_exec.json ns/tuple table.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchlib/workload.h"
#include "exec/compiled_expr.h"
#include "exec/eval.h"
#include "exec/join_method.h"
#include "exec/morsel.h"
#include "exec/version.h"
#include "exec/worker_pool.h"
#include "types/schema.h"

namespace tdb {
namespace {

// The paper's 108-byte benchmark tuple on a temporal relation.
Schema BenchSchema() {
  std::vector<Attribute> attrs = {
      {"id", TypeId::kInt4, 4, false},
      {"amount", TypeId::kInt4, 4, false},
      {"seq", TypeId::kInt4, 4, false},
      {"string", TypeId::kChar, 96, false},
  };
  auto schema = Schema::Create(std::move(attrs), DbType::kTemporal);
  if (!schema.ok()) std::abort();
  return *std::move(schema);
}

std::vector<uint8_t> BenchRecord(const Schema& schema, int32_t id) {
  Row row;
  row.push_back(Value::Int4(id));
  row.push_back(Value::Int4(id * 100));
  row.push_back(Value::Int4(0));
  row.push_back(Value::Char(std::string(96, 'x')));
  for (size_t i = 4; i < schema.num_attrs(); ++i) {
    row.push_back(Value::Time(TimePoint(1000)));
  }
  auto rec = EncodeRecord(schema, row);
  if (!rec.ok()) std::abort();
  return *std::move(rec);
}

std::unique_ptr<Expr> Col(const char* name, int attr_index, TypeId type) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumn;
  e->var = "h";
  e->attr = name;
  e->var_index = 0;
  e->attr_index = attr_index;
  e->column_type = type;
  return e;
}

std::unique_ptr<Expr> IntConst(int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kConstInt;
  e->int_val = v;
  return e;
}

std::unique_ptr<Expr> Bin(ExprOp op, std::unique_ptr<Expr> l,
                          std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

// `h.id = 500 and h.amount > 1000` — the shape of the benchmark's selective
// probes (Q07/Q08): one key equality plus one non-key comparison.
std::unique_ptr<Expr> ProbePredicate() {
  return Bin(ExprOp::kAnd,
             Bin(ExprOp::kEq, Col("id", 0, TypeId::kInt4), IntConst(500)),
             Bin(ExprOp::kGt, Col("amount", 1, TypeId::kInt4),
                 IntConst(1000)));
}

void BM_DecodeFullRow(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::vector<uint8_t> rec = BenchRecord(schema, 500);
  for (auto _ : state) {
    auto row = DecodeRecord(schema, rec.data(), rec.size());
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeFullRow);

void BM_LazyDecodeTwoAttrs(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::vector<uint8_t> rec = BenchRecord(schema, 500);
  VersionRef ref;
  for (auto _ : state) {
    ref.BindRaw(schema, rec.data());
    benchmark::DoNotOptimize(ref.attr(0));
    benchmark::DoNotOptimize(ref.attr(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LazyDecodeTwoAttrs);

void BM_EvalAst(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::vector<uint8_t> rec = BenchRecord(schema, 500);
  VersionRef ref;
  ref.BindRaw(schema, rec.data());
  Binding binding = {&ref};
  auto pred = ProbePredicate();
  Evaluator eval(TimePoint(0));
  for (auto _ : state) {
    auto r = eval.EvalBool(*pred, binding);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalAst);

void BM_EvalCompiled(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::vector<uint8_t> rec = BenchRecord(schema, 500);
  VersionRef ref;
  ref.BindRaw(schema, rec.data());
  Binding binding = {&ref};
  auto pred = ProbePredicate();
  auto prog = CompiledProgram::CompileExpr(*pred);
  if (!prog.has_value()) std::abort();
  for (auto _ : state) {
    auto r = prog->EvalBool(binding, TimePoint(0));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalCompiled);

// The scan-filter loop, per tuple, minus the pager.  Three variants:
//   Baseline  — what every tuple paid before the overhaul: decode the full
//               record into a Row, then walk the predicate AST;
//   AstLazy   — zero-copy binding but the AST evaluator (TDB_COMPILED_EXPR=0);
//   HotPath   — zero-copy binding + compiled predicate (the default).
constexpr int kScanTuples = 1024;

void BM_ScanFilterBaseline(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::vector<std::vector<uint8_t>> recs;
  for (int i = 0; i < kScanTuples; ++i) recs.push_back(BenchRecord(schema, i));
  VersionRef ref;
  Binding binding = {&ref};
  auto pred = ProbePredicate();
  Evaluator eval(TimePoint(0));
  for (auto _ : state) {
    int hits = 0;
    for (const auto& rec : recs) {
      auto row = DecodeRecord(schema, rec.data(), rec.size());
      if (!row.ok()) std::abort();
      ref.SetRow(*std::move(row));
      auto r = eval.EvalBool(*pred, binding);
      if (r.ok() && *r) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * kScanTuples);
}
BENCHMARK(BM_ScanFilterBaseline);

void BM_ScanFilterAstLazy(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::vector<std::vector<uint8_t>> recs;
  for (int i = 0; i < kScanTuples; ++i) recs.push_back(BenchRecord(schema, i));
  VersionRef ref;
  Binding binding = {&ref};
  auto pred = ProbePredicate();
  Evaluator eval(TimePoint(0));
  for (auto _ : state) {
    int hits = 0;
    for (const auto& rec : recs) {
      ref.BindRaw(schema, rec.data());
      auto r = eval.EvalBool(*pred, binding);
      if (r.ok() && *r) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * kScanTuples);
}
BENCHMARK(BM_ScanFilterAstLazy);

void BM_ScanFilterHotPath(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::vector<std::vector<uint8_t>> recs;
  for (int i = 0; i < kScanTuples; ++i) recs.push_back(BenchRecord(schema, i));
  VersionRef ref;
  Binding binding = {&ref};
  auto pred = ProbePredicate();
  auto prog = CompiledProgram::CompileExpr(*pred);
  if (!prog.has_value()) std::abort();
  for (auto _ : state) {
    int hits = 0;
    for (const auto& rec : recs) {
      ref.BindRaw(schema, rec.data());
      auto r = prog->EvalBool(binding, TimePoint(0));
      if (r.ok() && *r) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * kScanTuples);
}
BENCHMARK(BM_ScanFilterHotPath);

void BM_ScanFilterVectorized(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::vector<std::vector<uint8_t>> recs;
  for (int i = 0; i < kScanTuples; ++i) recs.push_back(BenchRecord(schema, i));
  Morsel m;
  m.EnsureArena(recs.size() * recs[0].size());
  for (const auto& rec : recs) m.AppendCopy(rec.data(), rec.size(), Tid());
  auto pred = ProbePredicate();
  auto prog = CompiledProgram::CompileExpr(*pred);
  if (!prog.has_value()) std::abort();
  Binding binding(1, nullptr);
  VersionRef scratch;
  SelVec sel;
  for (auto _ : state) {
    FillIdentity(&sel, m.size());
    auto st = prog->EvalBoolBatch(schema, 0, m, &binding, &scratch,
                                  TimePoint(0), &sel);
    if (!st.ok()) std::abort();
    benchmark::DoNotOptimize(sel.data());
    benchmark::DoNotOptimize(sel.size());
  }
  state.SetItemsProcessed(state.iterations() * kScanTuples);
}
BENCHMARK(BM_ScanFilterVectorized);

// End-to-end engine A/B on the paper's temporal database: the same query
// through the full stack (plan, pager, stats) with the morsel engine forced
// on or off.  Items = the 1024 tuples each execution examines, so the
// numbers read as ns/tuple alongside the loop benchmarks above.
void RunEngineBench(benchmark::State& state, const char* text,
                    bool vectorized,
                    JoinMethod method = JoinMethod::kPaper) {
  bench::WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  auto db = bench::BenchmarkDb::Create(config);
  if (!db.ok()) std::abort();
  SetVectorExecEnabledForTest(vectorized);
  SetJoinMethodForTest(method);
  for (auto _ : state) {
    auto r = (*db)->db()->Execute(text);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->affected);
  }
  SetJoinMethodForTest(std::nullopt);
  SetVectorExecEnabledForTest(std::nullopt);
  state.SetItemsProcessed(state.iterations() * 1024);
}

// Full scan + kernel-eligible filter (the Q04/Q07 shape).
constexpr char kScanFilterQuery[] =
    "retrieve (h.id, h.amount) where h.amount > 1000 and h.seq >= 0";
// The paper's self-join workload (Section 5): an equi-join on the
// *unindexed* amount attribute, so tuple substitution rescans the whole
// inner relation per outer row — the honest nested-loop baseline.  (On
// `h.id = i.amount` the paper planner flips the order and probes h's id
// index, which is a keyed lookup, not a nested loop.)  The restriction
// on h exercises the cost model's build-side choice.
constexpr char kJoinQuery[] =
    "retrieve (h.id, i.amount) where h.amount = i.amount and h.amount > 1000";

void BM_ExecScanFilterTuple(benchmark::State& state) {
  RunEngineBench(state, kScanFilterQuery, /*vectorized=*/false);
}
BENCHMARK(BM_ExecScanFilterTuple);

void BM_ExecScanFilterVectorized(benchmark::State& state) {
  RunEngineBench(state, kScanFilterQuery, /*vectorized=*/true);
}
BENCHMARK(BM_ExecScanFilterVectorized);

void BM_ExecJoinTuple(benchmark::State& state) {
  RunEngineBench(state, kJoinQuery, /*vectorized=*/false);
}
BENCHMARK(BM_ExecJoinTuple);

void BM_ExecJoinVectorized(benchmark::State& state) {
  RunEngineBench(state, kJoinQuery, /*vectorized=*/true);
}
BENCHMARK(BM_ExecJoinVectorized);

// The same join through the batched hash join: build the smaller side once,
// probe the other in a single pass — no per-outer-row inner reopen.
void BM_ExecJoinHash(benchmark::State& state) {
  RunEngineBench(state, kJoinQuery, /*vectorized=*/false, JoinMethod::kHash);
}
BENCHMARK(BM_ExecJoinHash);

void BM_ExecJoinHashVectorized(benchmark::State& state) {
  RunEngineBench(state, kJoinQuery, /*vectorized=*/true, JoinMethod::kHash);
}
BENCHMARK(BM_ExecJoinHashVectorized);

// Thread scaling of the morsel-driven parallel pipelines (the shared
// worker pool): the same vectorized queries at 1/2/4 exec threads.  Rows,
// stats, and page counts are identical at every arg (the executor merges
// per-chunk results deterministically); only wall clock may move.  On a
// 1-core host the >1-thread args measure pool overhead, not speedup —
// BENCH_exec.json records hardware_concurrency so readers can tell.
void RunEngineBenchThreads(benchmark::State& state, const char* text,
                           JoinMethod method) {
  bench::WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  auto db = bench::BenchmarkDb::Create(config);
  if (!db.ok()) std::abort();
  SetVectorExecEnabledForTest(true);
  SetJoinMethodForTest(method);
  SetExecThreadsForTest(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = (*db)->db()->Execute(text);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->affected);
  }
  SetExecThreadsForTest(std::nullopt);
  SetJoinMethodForTest(std::nullopt);
  SetVectorExecEnabledForTest(std::nullopt);
  state.SetItemsProcessed(state.iterations() * 1024);
}

void BM_ExecScanFilterThreads(benchmark::State& state) {
  RunEngineBenchThreads(state, kScanFilterQuery, JoinMethod::kPaper);
}
BENCHMARK(BM_ExecScanFilterThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_ExecJoinHashThreads(benchmark::State& state) {
  RunEngineBenchThreads(state, kJoinQuery, JoinMethod::kHash);
}
BENCHMARK(BM_ExecJoinHashThreads)->Arg(1)->Arg(2)->Arg(4);

// Temporal join: 16 restricted outer versions against the 1024-tuple inner,
// `when h overlap i`.  Paper mode rescans the inner per outer row; the
// sort/merge sweep sorts both sides once and emits overlapping pairs.
constexpr char kIntervalJoinQuery[] =
    "retrieve (h.id, i.amount) where h.id < 16 when h overlap i";

void BM_ExecIntervalJoinPaper(benchmark::State& state) {
  RunEngineBench(state, kIntervalJoinQuery, /*vectorized=*/false,
                 JoinMethod::kPaper);
}
BENCHMARK(BM_ExecIntervalJoinPaper);

void BM_ExecIntervalJoinSweep(benchmark::State& state) {
  RunEngineBench(state, kIntervalJoinQuery, /*vectorized=*/false,
                 JoinMethod::kMerge);
}
BENCHMARK(BM_ExecIntervalJoinSweep);

// End-to-end queries on the paper's temporal database (100% loading, uc=0).
// Whether the compiled path runs is decided process-wide by
// TDB_COMPILED_EXPR; run the binary twice to A/B.
void RunQueryBench(benchmark::State& state, int qnum) {
  bench::WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  auto db = bench::BenchmarkDb::Create(config);
  if (!db.ok()) std::abort();
  for (auto _ : state) {
    auto m = (*db)->RunQuery(qnum);
    if (!m.ok()) std::abort();
    benchmark::DoNotOptimize(m->input_pages);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_QueryQ04(benchmark::State& state) { RunQueryBench(state, 4); }
BENCHMARK(BM_QueryQ04);  // full sequential scan

void BM_QueryQ07(benchmark::State& state) { RunQueryBench(state, 7); }
BENCHMARK(BM_QueryQ07);  // non-key selection over history

}  // namespace
}  // namespace tdb

// Custom main (vs BENCHMARK_MAIN) so the execution-engine context —
// TDB_EXEC_THREADS as resolved and the host's real hardware concurrency —
// lands in the JSON context block scripts/make_bench_exec.py copies into
// BENCH_exec.json.
int main(int argc, char** argv) {
  const tdb::bench::ExecContext ctx = tdb::bench::ExecContext::Detect();
  benchmark::AddCustomContext("exec_threads", std::to_string(ctx.exec_threads));
  benchmark::AddCustomContext("hardware_concurrency",
                              std::to_string(ctx.hardware_concurrency));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
