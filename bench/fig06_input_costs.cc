// Reproduces Figure 6: "Input Costs for the Temporal Database with 100%
// Loading" — page reads for Q01..Q12 as the average update count grows
// from 0 to 15.
//
// Paper values at selected cells (Fig. 6):
//   Q01: 1, 3, 5, ..., 31          Q03: 129, 387, ..., 3975
//   Q05: 1, 3, 5, ..., 31          Q07: 129, 387, ..., 3975
//   Q09: 1290, 3512, ..., 35654    Q10: 2233, 4539, ..., 36709
//   Q11: 385, 1155, ..., 11911     Q12: 131, 389, ..., 4001

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

int main() {
  constexpr int kMaxUc = 15;
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  auto bench = CheckOk(BenchmarkDb::Create(config), "create");
  auto sweep = Sweep(bench.get(), kMaxUc, AllQueries());

  std::vector<std::string> headers = {"query"};
  for (int uc = 0; uc <= kMaxUc; ++uc) headers.push_back(Cell(uint64_t(uc)));
  TablePrinter table(std::move(headers));
  for (int q = 1; q <= 12; ++q) {
    std::vector<std::string> row = {StrPrintf("Q%02d", q)};
    for (int uc = 0; uc <= kMaxUc; ++uc) {
      row.push_back(Cell(sweep[uc].at(q).input_pages));
    }
    table.AddRow(std::move(row));
  }
  std::printf(
      "Figure 6: Input costs (pages read) for the temporal database, 100%% "
      "loading, update count 0..15\n\n%s\n",
      table.ToString().c_str());

  // Output (temporary relation) costs, constant across update counts.
  TablePrinter out_table({"query", "output pages (any uc)"});
  for (int q : {9, 10, 12}) {
    out_table.AddRow({StrPrintf("Q%02d", q),
                      Cell(sweep[kMaxUc].at(q).output_pages)});
  }
  std::printf(
      "Output costs (temporary-relation writes; 0 for all other queries):\n\n"
      "%s\n",
      out_table.ToString().c_str());
  return 0;
}
