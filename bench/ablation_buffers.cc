// Ablation: buffer frames per relation.
//
// The paper's methodology pins ONE buffer frame per user relation: "the
// number of disk accesses varies greatly depending on the number of
// internal buffers and the algorithm for buffer management.  To eliminate
// such influences ... we allocated only 1 buffer for each user relation."
//
// This sweep shows what they eliminated: with more frames per relation the
// measured page reads of the same queries drop (re-reads of hot pages —
// ISAM directory roots, probe chains, temp pages — become free), so cost
// numbers from different buffer budgets would not be comparable.

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

int main() {
  constexpr int kUc = 4;
  const std::vector<int> kFrames = {1, 2, 4, 8, 16};

  std::map<int, std::map<int, Measure>> runs;  // frames -> query -> measure
  for (int frames : kFrames) {
    WorkloadConfig config;
    config.type = DbType::kTemporal;
    config.fillfactor = 100;
    config.buffer_frames = frames;
    auto bench = CheckOk(BenchmarkDb::Create(config), "create");
    for (int round = 0; round < kUc; ++round) {
      CheckOk(bench->UniformUpdateRound(), "update");
    }
    for (int q : {1, 3, 9, 10, 11, 12}) {
      runs[frames][q] = CheckOk(bench->RunQuery(q), "query");
    }
  }

  std::vector<std::string> headers = {"query"};
  for (int frames : kFrames) headers.push_back(StrPrintf("frames=%d", frames));
  TablePrinter table(std::move(headers));
  for (int q : {1, 3, 9, 10, 11, 12}) {
    std::vector<std::string> row = {StrPrintf("Q%02d", q)};
    for (int frames : kFrames) {
      row.push_back(Cell(runs[frames][q].input_pages));
    }
    table.AddRow(std::move(row));
  }
  std::printf(
      "Input pages at uc=%d by buffer frames per relation (temporal, 100%%)\n"
      "\n%s\n",
      kUc, table.ToString().c_str());
  std::printf(
      "Chain re-reads and directory hits become free as the pool grows —\n"
      "which is why the paper pinned the pool at one frame per relation.\n");
  return 0;
}
