// Closed-loop load generator for the tquel server: N client threads, each
// with its own connection and server-side Session, issue a mixed TQuel
// read/write workload as fast as their round-trips allow.  Reports
// throughput and latency percentiles per client count as JSON on stdout
// (scripts/make_bench_server.py merges the sweeps into BENCH_server.json).
//
//   ./load_server [--durability=off|journal|sync] [--clients=1,2,4,8]
//                 [--seconds=2] [--root=DIR] [--read-pct=80]
//                 [--mode=count|raw|prepared] [--server=thread|epoll]
//                 [--plan-cache]
//
// The server runs in-process over a unix socket, so measured latency is
// the full client/server stack minus network distance: wire codec, socket
// round-trip, session locking, MVCC pinning, journaling, group commit.
// Each client appends to its own relation (so writers overlap and group
// commit has something to share) and reads a random client's relation (so
// reads cross sessions).  The workload is deterministic per thread: an
// LCG seeded by the client index picks reads vs writes.
//
// Workload modes:
//   count    — the durability sweep's historical mix: aggregate reads
//              (count) and literal appends, all as script text.
//   raw      — parameterizable statements (range predicate reads, value
//              appends) shipped as full text every time: every round trip
//              parses, binds, and plans.
//   prepared — the identical statements prepared once per connection and
//              executed by name with only the argument values on the
//              wire (kPrepare / kExecPrepared).  The raw-vs-prepared gap
//              is the parse+plan share of the round trip; with
//              --plan-cache the server also skips planning on raw text.
//
// Latency is recorded into an obs::Histogram (log2 buckets) and the
// percentiles come from HistogramSnapshot::Quantile — the same machinery
// the server's own metrics use, so bench numbers and server metrics are
// directly comparable (at power-of-two resolution).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace {

using tdb::DatabaseOptions;
using tdb::DurabilityMode;
using tdb::Value;
using tdb::net::Client;
using tdb::net::DatabaseRegistry;
using tdb::net::Server;
using tdb::net::ServerOptions;

void Die(const tdb::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

tdb::obs::HistogramSnapshot SnapshotOf(const tdb::obs::Histogram& h) {
  tdb::obs::HistogramSnapshot s;
  s.count = h.count();
  s.sum = h.sum();
  for (int i = 0; i < tdb::obs::Histogram::kNumBuckets; ++i) {
    s.buckets.push_back(h.bucket(i));
  }
  while (!s.buckets.empty() && s.buckets.back() == 0) s.buckets.pop_back();
  return s;
}

struct CellResult {
  int clients = 0;
  uint64_t ops = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  double seconds = 0;
  double p50 = 0, p95 = 0, p99 = 0, max = 0;  // milliseconds
  double mean = 0;
  uint64_t journal_commits = 0;
  uint64_t journal_group_syncs = 0;
  // Engine-side work counters for the cell (delta of the database's
  // metrics registry): how many statements were parsed and how many plans
  // were built server-side — the savings prepared statements and the plan
  // cache exist to deliver.
  uint64_t parses = 0;
  uint64_t plan_builds = 0;
  uint64_t plancache_hits = 0;
  uint64_t plancache_misses = 0;
};

struct LoadOptions {
  DurabilityMode durability = DurabilityMode::kOff;
  std::vector<int> client_counts = {1, 2, 4, 8};
  double seconds = 2.0;
  int read_pct = 80;
  /// Group-commit window (see DatabaseOptions::group_commit_window_micros).
  /// Batching only happens when commits land within one window of each
  /// other, so demonstrating the fsync sharing on fast storage (where the
  /// fsync itself is near-free) needs a window wider than one serialized
  /// write statement; -1 keeps the database default.
  int group_window_us = -1;
  std::string mode = "count";  // count | raw | prepared
  bool epoll = false;
  bool plan_cache = false;
  std::string root;
};

/// One measurement cell: `clients` closed-loop clients against a fresh
/// database for `opts.seconds`.
CellResult RunCell(const LoadOptions& opts, const std::string& socket_path,
                   DatabaseRegistry* registry, int clients) {
  const std::string db_name = "cell" + std::to_string(clients);
  // Schema setup outside the measured window.
  {
    auto setup = Client::ConnectUnix(socket_path, db_name);
    Die(setup.status(), "setup connect");
    std::string script;
    for (int c = 0; c < clients; ++c) {
      if (c > 0) script += ";";
      script += "create acct" + std::to_string(c) + " (v = i4)";
    }
    Die((*setup)->Execute(script).status(), "setup schema");
  }
  auto db = registry->GetOrOpen(db_name);
  Die(db.status(), "registry open");
  const auto counters_before = (*db)->Snapshot().counters;

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  tdb::obs::Histogram latency_us;  // shared: Record is lock-free
  std::vector<std::uint64_t> reads(clients, 0), writes(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const double t0 = NowSeconds();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::ConnectUnix(socket_path, db_name);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      // Four range variables per relation (a<r>..d<r>) so the join below
      // can pair relations freely, including one with itself.
      std::string ranges;
      for (int r = 0; r < clients; ++r) {
        if (r > 0) ranges += ";";
        ranges += "range of a" + std::to_string(r) + " is acct" +
                  std::to_string(r);
        ranges += ";range of b" + std::to_string(r) + " is acct" +
                  std::to_string(r);
        ranges += ";range of c" + std::to_string(r) + " is acct" +
                  std::to_string(r);
        ranges += ";range of d" + std::to_string(r) + " is acct" +
                  std::to_string(r);
      }
      if (!(*client)->Execute(ranges).ok()) {
        failures.fetch_add(1);
        return;
      }
      // The raw/prepared read: a four-variable equi-join of this client's
      // relation with its neighbor's under a parameterized range predicate
      // — enough statement for parsing, binding, and cost-based join
      // planning (order enumeration over four variables) to be a real
      // share of the round trip.  That share is exactly what prepared
      // execution and the plan cache delete.
      const std::string av = "a" + std::to_string(c) + ".v";
      const std::string bv = "b" + std::to_string((c + 1) % clients) + ".v";
      const std::string cv = "c" + std::to_string(c) + ".v";
      const std::string dv = "d" + std::to_string((c + 1) % clients) + ".v";
      const std::string join_read = "retrieve (x = " + av + ", y = " + bv +
                                    ", z = " + cv + ", w = " + dv +
                                    ") where " + av + " = " + bv + " and " +
                                    bv + " = " + cv + " and " + cv + " = " +
                                    dv + " and " + av;
      // Prepared mode: the join read and the append each prepared once;
      // the loop ships only argument values.
      if (opts.mode == "prepared") {
        auto p = (*client)->Prepare("rd", join_read + " >= $1 and " + av +
                                              " <= $2");
        if (p.ok()) {
          p = (*client)->Prepare(
              "wr", "append to acct" + std::to_string(c) + " (v = $1)");
        }
        if (!p.ok()) {
          failures.fetch_add(1);
          return;
        }
      }
      uint64_t rng = 0x9E3779B97F4A7C15ull * (c + 1);
      int seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const bool read =
            static_cast<int>((rng >> 33) % 100) < opts.read_pct;
        const int target = static_cast<int>((rng >> 13) % clients);
        const int lo = static_cast<int>((rng >> 21) % 256);
        bool ok = false;
        const double start = NowSeconds();
        if (opts.mode == "prepared") {
          ok = read ? (*client)
                          ->ExecutePrepared("rd", {Value::Int4(lo),
                                                   Value::Int4(lo + 16)})
                          .ok()
                    : (*client)
                          ->ExecutePrepared("wr", {Value::Int4(seq++)})
                          .ok();
        } else {
          std::string statement;
          if (opts.mode == "raw") {
            if (read) {
              statement = join_read + " >= " + std::to_string(lo) + " and " +
                          av + " <= " + std::to_string(lo + 16);
            } else {
              statement = "append to acct" + std::to_string(c) +
                          " (v = " + std::to_string(seq++) + ")";
            }
          } else {  // count: the historical durability-sweep mix
            if (read) {
              statement = "retrieve (n = count(a" + std::to_string(target) +
                          ".v))";
            } else {
              statement = "append to acct" + std::to_string(c) +
                          " (v = " + std::to_string(seq++) + ")";
            }
          }
          ok = (*client)->Execute(statement).ok();
        }
        const double elapsed_us = (NowSeconds() - start) * 1e6;
        if (!ok) {
          failures.fetch_add(1);
          return;
        }
        latency_us.Record(static_cast<uint64_t>(elapsed_us));
        (read ? reads[c] : writes[c])++;
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(opts.seconds * 1e3)));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const double elapsed = NowSeconds() - t0;
  if (failures.load() != 0) {
    std::fprintf(stderr, "cell clients=%d: %d client failures\n", clients,
                 failures.load());
    std::exit(1);
  }

  CellResult cell;
  cell.clients = clients;
  cell.seconds = elapsed;
  for (int c = 0; c < clients; ++c) {
    cell.read_ops += reads[c];
    cell.write_ops += writes[c];
  }
  const tdb::obs::HistogramSnapshot lat = SnapshotOf(latency_us);
  cell.ops = lat.count;
  cell.p50 = static_cast<double>(lat.Quantile(50)) / 1e3;
  cell.p95 = static_cast<double>(lat.Quantile(95)) / 1e3;
  cell.p99 = static_cast<double>(lat.Quantile(99)) / 1e3;
  cell.max = static_cast<double>(lat.Quantile(100)) / 1e3;
  cell.mean = lat.count == 0 ? 0
                             : static_cast<double>(lat.sum) /
                                   static_cast<double>(lat.count) / 1e3;
  const auto counters_after = (*db)->Snapshot().counters;
  auto delta = [&](const char* name) -> uint64_t {
    const auto before = counters_before.find(name);
    const auto after = counters_after.find(name);
    const uint64_t b = before == counters_before.end() ? 0 : before->second;
    const uint64_t a = after == counters_after.end() ? 0 : after->second;
    return a - b;
  };
  cell.journal_commits = delta("journal.commits");
  cell.journal_group_syncs = delta("journal.group_syncs");
  cell.parses = delta("sql.parses");
  cell.plan_builds = delta("plan.builds");
  cell.plancache_hits = delta("plancache.hits");
  cell.plancache_misses = delta("plancache.misses");
  return cell;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--durability=off") {
      opts.durability = DurabilityMode::kOff;
    } else if (arg == "--durability=journal") {
      opts.durability = DurabilityMode::kJournal;
    } else if (arg == "--durability=sync") {
      opts.durability = DurabilityMode::kJournalSync;
    } else if (arg.rfind("--clients=", 0) == 0) {
      opts.client_counts.clear();
      std::string list = arg.substr(10);
      for (size_t pos = 0; pos < list.size();) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        opts.client_counts.push_back(
            std::atoi(list.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    } else if (arg.rfind("--seconds=", 0) == 0) {
      opts.seconds = std::atof(arg.c_str() + 10);
    } else if (arg.rfind("--read-pct=", 0) == 0) {
      opts.read_pct = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--group-window-us=", 0) == 0) {
      opts.group_window_us = std::atoi(arg.c_str() + 18);
    } else if (arg == "--mode=count" || arg == "--mode=raw" ||
               arg == "--mode=prepared") {
      opts.mode = arg.substr(7);
    } else if (arg == "--server=thread") {
      opts.epoll = false;
    } else if (arg == "--server=epoll") {
      opts.epoll = true;
    } else if (arg == "--plan-cache") {
      opts.plan_cache = true;
    } else if (arg.rfind("--root=", 0) == 0) {
      opts.root = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--durability=off|journal|sync]\n"
                   "          [--clients=1,2,4,8] [--seconds=S]\n"
                   "          [--read-pct=N] [--group-window-us=U]\n"
                   "          [--mode=count|raw|prepared]\n"
                   "          [--server=thread|epoll] [--plan-cache]\n"
                   "          [--root=DIR]\n",
                   argv[0]);
      return 1;
    }
  }
  if (opts.root.empty()) {
    opts.root = "/tmp/tquel_load_" + std::to_string(::getpid());
  }
  const std::string socket_path = opts.root + ".sock";

  Die(tdb::Env::Default()->CreateDirIfMissing(opts.root), "create root");
  DatabaseOptions db_options;
  db_options.durability = opts.durability;
  db_options.metrics = true;
  db_options.plan_cache = opts.plan_cache;
  if (opts.group_window_us >= 0) {
    db_options.group_commit_window_micros = opts.group_window_us;
  }
  DatabaseRegistry registry(opts.root, db_options);
  ServerOptions srv_options;
  srv_options.unix_path = socket_path;
  srv_options.epoll = opts.epoll;
  Server server(&registry, srv_options);
  Die(server.Start(), "server start");

  std::vector<CellResult> cells;
  for (int clients : opts.client_counts) {
    cells.push_back(RunCell(opts, socket_path, &registry, clients));
    std::fprintf(stderr, "clients=%d ops=%llu throughput=%.0f/s p50=%.3fms\n",
                 cells.back().clients,
                 static_cast<unsigned long long>(cells.back().ops),
                 static_cast<double>(cells.back().ops) / cells.back().seconds,
                 cells.back().p50);
  }
  server.Stop();

  std::string out = "{\n  \"source\": \"bench/load_server.cc\",\n";
  out += "  \"durability\": \"" + std::string(DurabilityModeName(
                                      opts.durability)) + "\",\n";
  out += "  \"mode\": \"" + opts.mode + "\",\n";
  out += "  \"server\": \"" + std::string(opts.epoll ? "epoll" : "thread") +
         "\",\n";
  out += "  \"plan_cache\": " + std::string(opts.plan_cache ? "true"
                                                            : "false") +
         ",\n";
  out += "  \"read_pct\": " + std::to_string(opts.read_pct) + ",\n";
  out += "  \"group_window_us\": " +
         std::to_string(db_options.group_commit_window_micros) + ",\n";
  out += "  \"seconds_per_cell\": " + FormatDouble(opts.seconds) + ",\n";
  out += "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out += "    {\"clients\": " + std::to_string(c.clients);
    out += ", \"ops\": " + std::to_string(c.ops);
    out += ", \"read_ops\": " + std::to_string(c.read_ops);
    out += ", \"write_ops\": " + std::to_string(c.write_ops);
    out += ", \"throughput_ops_per_s\": " +
           FormatDouble(static_cast<double>(c.ops) / c.seconds);
    out += ", \"latency_ms\": {\"mean\": " + FormatDouble(c.mean);
    out += ", \"p50\": " + FormatDouble(c.p50);
    out += ", \"p95\": " + FormatDouble(c.p95);
    out += ", \"p99\": " + FormatDouble(c.p99);
    out += ", \"max\": " + FormatDouble(c.max) + "}";
    out += ", \"engine\": {\"parses\": " + std::to_string(c.parses);
    out += ", \"plan_builds\": " + std::to_string(c.plan_builds);
    out += ", \"plancache_hits\": " + std::to_string(c.plancache_hits);
    out += ", \"plancache_misses\": " + std::to_string(c.plancache_misses);
    out += "}";
    out += ", \"journal\": {\"commits\": " + std::to_string(c.journal_commits);
    out += ", \"group_syncs\": " + std::to_string(c.journal_group_syncs);
    out += "}}";
    if (i + 1 < cells.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}
