// Reproduces Figure 10: "Improvements for the Temporal Database" — the
// Section 6 enhancements, measured (the paper's numbers were estimates):
//
//   conventional uc0 / uc14   the prototype baseline,
//   2-level simple            current versions in the primary store,
//                             history appended to a heap history store,
//   2-level clustered         history versions of one tuple clustered on
//                             per-tuple pages,
//   + index on amount         secondary index as 1-level/2-level x
//                             heap/hash (shown for Q07/Q08, the non-key
//                             selections it accelerates).
//
// Paper values (Fig. 10, uc=14): Q05 29 -> 1; Q07 3717 -> 129 (two-level)
// -> 324/30 (1-level heap/hash) -> 12/2 (2-level heap/hash); Q01 29 -> 5
// (clustered); Q10 34493 -> 2233.

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

namespace {

std::map<int, Measure> RunVariant(const WorkloadConfig& config, int uc,
                                  size_t cell, const std::string& label,
                                  MetricsSink* sink) {
  auto bench = CheckOk(BenchmarkDb::Create(config), "create");
  auto sweep = Sweep(bench.get(), uc, AllQueries());
  sink->Add(cell, label, bench->db());
  return sweep.back();
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kUc = 14;
  MetricsSink sink(argc, argv, "METRICS_fig10.json");
  WorkloadConfig base;
  base.type = DbType::kTemporal;
  base.fillfactor = 100;

  WorkloadConfig simple = base;
  simple.two_level = true;

  WorkloadConfig clustered = simple;
  clustered.clustered_history = true;

  // All eight variants (4 store layouts + 4 index layouts) are independent
  // databases: run them as concurrent cells.  The index runs are keyed by
  // name below exactly as before, so the printed tables are unchanged.
  struct Variant {
    std::string name;
    WorkloadConfig config;
    int uc;
  };
  std::vector<Variant> variants = {
      {"conv0", base, 0},
      {"conv14", base, kUc},
      {"2lvl simple", simple, kUc},
      {"2lvl clustered", clustered, kUc},
  };
  for (const char* structure : {"heap", "hash"}) {
    for (int levels : {1, 2}) {
      WorkloadConfig config = clustered;
      config.index_structure = structure;
      config.index_levels = levels;
      variants.push_back(
          {StrPrintf("%dlvl %s", levels, structure), config, kUc});
    }
  }
  int64_t t0 = NowMillis();
  auto runs = RunCells(variants.size(), [&](size_t i) {
    return RunVariant(variants[i].config, variants[i].uc, i, variants[i].name,
                      &sink);
  });
  std::fprintf(stderr, "fig10: %zu cells on %zu threads in %lld ms\n",
               variants.size(), BenchThreads(variants.size()),
               static_cast<long long>(NowMillis() - t0));

  auto& conventional0 = runs[0];
  auto& conventional14 = runs[1];
  auto& twolevel_simple = runs[2];
  auto& twolevel_clustered = runs[3];
  std::map<std::string, std::map<int, Measure>> idx_runs;
  for (size_t i = 4; i < variants.size(); ++i) {
    idx_runs[variants[i].name] = std::move(runs[i]);
  }

  TablePrinter table({"query", "conv uc0", "conv uc14", "2lvl simple",
                      "2lvl clustered"});
  for (int q = 1; q <= 12; ++q) {
    auto cell = [&](const std::map<int, Measure>& m) {
      auto it = m.find(q);
      return it == m.end() ? std::string("-") : Cell(it->second.input_pages);
    };
    table.AddRow({StrPrintf("Q%02d", q), cell(conventional0),
                  cell(conventional14), cell(twolevel_simple),
                  cell(twolevel_clustered)});
  }
  std::printf(
      "Figure 10 (part 1): two-level store for the temporal database, 100%% "
      "loading, uc=14\n\n%s\n",
      table.ToString().c_str());

  // Secondary index variants, measured on the clustered two-level store.
  TablePrinter idx_table({"query", "no index", "1lvl heap", "1lvl hash",
                          "2lvl heap", "2lvl hash"});
  for (int q : {7, 8}) {
    idx_table.AddRow({StrPrintf("Q%02d", q),
                      Cell(twolevel_clustered.at(q).input_pages),
                      Cell(idx_runs["1lvl heap"].at(q).input_pages),
                      Cell(idx_runs["1lvl hash"].at(q).input_pages),
                      Cell(idx_runs["2lvl heap"].at(q).input_pages),
                      Cell(idx_runs["2lvl hash"].at(q).input_pages)});
  }
  std::printf(
      "Figure 10 (part 2): secondary index on `amount` (two-level store, "
      "uc=14)\n\n%s\n",
      idx_table.ToString().c_str());
  std::printf(
      "Paper (Fig. 10): static queries become flat under the two-level "
      "store;\nthe 2-level hash index answers Q07 in 2 page reads instead of "
      "3717.\n");
  sink.Write();
  return 0;
}
