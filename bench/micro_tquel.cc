// TQuel front-end microbenchmarks: lexing, parsing, and full execution of
// the benchmark queries against a small in-memory database.

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "tquel/lexer.h"
#include "tquel/parser.h"

namespace tdb {
namespace {

const char* kQ12 =
    "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
    "valid from start of (h overlap i) to end of (h extend i) "
    "where h.id = 500 and i.amount = 73700 "
    "when h overlap i as of \"now\"";

void BM_Lex(benchmark::State& state) {
  std::string text = kQ12;
  for (auto _ : state) {
    auto tokens = Lexer::Tokenize(text);
    benchmark::DoNotOptimize(tokens.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  std::string text = kQ12;
  for (auto _ : state) {
    auto stmt = Parser::ParseStatement(text);
    benchmark::DoNotOptimize(stmt.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Parse);

void BM_ExecutePointQuery(benchmark::State& state) {
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  auto db = Database::Open("/db", options);
  (void)(*db)->Execute(
      "create persistent interval acct (id = i4, bal = i4)");
  for (int i = 0; i < 256; ++i) {
    (void)(*db)->Execute("append to acct (id = " + std::to_string(i) +
                         ", bal = " + std::to_string(i * 3) + ")");
  }
  (void)(*db)->Execute("modify acct to hash on id where fillfactor = 100");
  (void)(*db)->Execute("range of a is acct");
  for (auto _ : state) {
    auto r = (*db)->Execute(
        "retrieve (a.bal) where a.id = 123 when a overlap \"now\"");
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutePointQuery);

void BM_Replace(benchmark::State& state) {
  MemEnv env;
  DatabaseOptions options;
  options.env = &env;
  auto db = Database::Open("/db", options);
  (void)(*db)->Execute(
      "create persistent interval acct (id = i4, bal = i4)");
  for (int i = 0; i < 64; ++i) {
    (void)(*db)->Execute("append to acct (id = " + std::to_string(i) +
                         ", bal = 0)");
  }
  (void)(*db)->Execute("modify acct to hash on id where fillfactor = 100");
  (void)(*db)->Execute("range of a is acct");
  int key = 0;
  for (auto _ : state) {
    auto r = (*db)->Execute("replace a (bal = a.bal + 1) where a.id = " +
                            std::to_string(key++ % 64));
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Replace);

}  // namespace
}  // namespace tdb

BENCHMARK_MAIN();
