// Ablation: B+-tree vs. the static access methods under version growth.
//
// Section 6 of the paper argues that dynamic structures (B-trees, dynamic /
// extendible hashing, grid files) would not rescue a temporal database:
// "a large number of versions for some tuples will require more than a
// bucket for a single key, causing similar problems exhibited in
// conventional hashing and ISAM."
//
// This bench tests that claim with a real B+-tree: the benchmark's hashed
// relation is rebuilt as a btree and the same uniform update workload is
// applied.  The B-tree adapts its *directory* (height grows, no static
// fill-factor decay) — but because every version of a tuple shares the
// tuple's key, version scans still degrade linearly: the leaves for a key
// become overflow chains, exactly like hash buckets.

#include "bench_util.h"

#include "storage/btree_file.h"

using namespace tdb;
using namespace tdb::bench;

int main() {
  constexpr int kMaxUc = 10;

  // Baseline: conventional hash organization.
  WorkloadConfig config;
  config.type = DbType::kTemporal;
  config.fillfactor = 100;
  auto hash_bench = CheckOk(BenchmarkDb::Create(config), "create hash");

  // Variant: rebuild bench_h as a B+-tree.
  auto btree_bench = CheckOk(BenchmarkDb::Create(config), "create btree");
  CheckOk(btree_bench->db()->Execute("modify bench_h to btree on id").status(),
          "modify to btree");

  TablePrinter table({"uc", "hash Q01", "btree Q01", "hash Q05", "btree Q05",
                      "hash Q07", "btree Q07", "btree height"});
  for (int uc = 0; uc <= kMaxUc; ++uc) {
    auto h1 = CheckOk(hash_bench->RunQuery(1), "hash q01");
    auto b1 = CheckOk(btree_bench->RunQuery(1), "btree q01");
    auto h5 = CheckOk(hash_bench->RunQuery(5), "hash q05");
    auto b5 = CheckOk(btree_bench->RunQuery(5), "btree q05");
    auto h7 = CheckOk(hash_bench->RunQuery(7), "hash q07");
    auto b7 = CheckOk(btree_bench->RunQuery(7), "btree q07");
    int height = 0;
    {
      auto rel = btree_bench->db()->GetRelation("bench_h");
      CheckOk(rel.status(), "relation");
      auto* tree = static_cast<BtreeFile*>((*rel)->primary());
      height = CheckOk(tree->Height(), "height");
    }
    table.AddRow({Cell(uint64_t(uc)), Cell(h1.input_pages),
                  Cell(b1.input_pages), Cell(h5.input_pages),
                  Cell(b5.input_pages), Cell(h7.input_pages),
                  Cell(b7.input_pages), Cell(uint64_t(height))});
    if (uc < kMaxUc) {
      CheckOk(hash_bench->UniformUpdateRound(), "hash update");
      CheckOk(btree_bench->UniformUpdateRound(), "btree update");
    }
  }
  std::printf(
      "B+-tree vs static hashing under uniform temporal updates "
      "(temporal, 100%% loading)\n\n%s\n",
      table.ToString().c_str());
  std::printf(
      "Measured nuance on the paper's Section 6 claim: the B-tree's splits\n"
      "isolate each key into its own leaf chain, so keyed accesses grow ~8x\n"
      "more slowly than hash-bucket chains (2 versions/round per key vs per\n"
      "8-tuple bucket) — but the growth is STILL linear (the per-key chain\n"
      "is unavoidable), sequential scans are strictly worse (fragmented,\n"
      "half-full leaves), and current-state queries (Q05) keep degrading —\n"
      "unlike the two-level store, which holds them flat at 1 page.\n");
  return 0;
}
