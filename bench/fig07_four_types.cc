// Reproduces Figure 7: "Number of Input Pages for Four Types of Databases"
// — Q01..Q12 at update counts 0 and 14 on all eight test databases
// (static / rollback / historical / temporal x 100% / 50% loading).
//
// Headline paper comparisons (Fig. 7, uc=14): rollback and historical
// behave alike (Q01 15 @100%, 8 @50%); the temporal database costs about
// twice as much (Q01 29 @100%, 15 @50%; Q07 3717 vs 1927).

#include "bench_util.h"

using namespace tdb;
using namespace tdb::bench;

int main(int argc, char** argv) {
  constexpr int kMaxUc = 14;
  MetricsSink sink(argc, argv, "METRICS_fig07.json");
  struct Config {
    DbType type;
    int fillfactor;
  };
  std::vector<Config> configs;
  for (DbType type : {DbType::kStatic, DbType::kRollback, DbType::kHistorical,
                      DbType::kTemporal}) {
    for (int ff : {100, 50}) configs.push_back({type, ff});
  }

  // results[config][uc in {0, 14}][q] — the 8 (type, loading) cells are
  // independent databases, so they sweep concurrently; results are merged
  // in config order and stdout stays byte-identical to a serial run.
  struct CellResult {
    std::map<int, Measure> at0;
    std::map<int, Measure> at14;
  };
  int64_t t0 = NowMillis();
  auto cells = RunCells(configs.size(), [&](size_t i) {
    const Config& c = configs[i];
    WorkloadConfig config;
    config.type = c.type;
    config.fillfactor = c.fillfactor;
    auto bench = CheckOk(BenchmarkDb::Create(config), "create");
    auto sweep = Sweep(bench.get(), c.type == DbType::kStatic ? 0 : kMaxUc,
                       AllQueries());
    sink.Add(i, std::string(DbTypeName(c.type)) + " " +
                    LoadingName(c.fillfactor),
             bench->db());
    return CellResult{sweep.front(), sweep.back()};
  });
  std::fprintf(stderr, "fig07: %zu cells on %zu threads in %lld ms\n",
               configs.size(), BenchThreads(configs.size()),
               static_cast<long long>(NowMillis() - t0));
  std::vector<std::map<int, Measure>> at0;
  std::vector<std::map<int, Measure>> at14;
  for (CellResult& cell : cells) {
    at0.push_back(std::move(cell.at0));
    at14.push_back(std::move(cell.at14));
  }

  std::vector<std::string> headers = {"query"};
  for (const Config& c : configs) {
    std::string base = std::string(DbTypeName(c.type)) + " " +
                       LoadingName(c.fillfactor);
    headers.push_back(base + " uc0");
    if (c.type != DbType::kStatic) headers.push_back(base + " uc14");
  }
  TablePrinter table(std::move(headers));
  for (int q = 1; q <= 12; ++q) {
    std::vector<std::string> row = {StrPrintf("Q%02d", q)};
    for (size_t i = 0; i < configs.size(); ++i) {
      auto cell = [&](const std::map<int, Measure>& m) {
        auto it = m.find(q);
        return it == m.end() ? std::string("-") : Cell(it->second.input_pages);
      };
      row.push_back(cell(at0[i]));
      if (configs[i].type != DbType::kStatic) row.push_back(cell(at14[i]));
    }
    table.AddRow(std::move(row));
  }
  std::printf(
      "Figure 7: Input pages for the four database types ('-' = not "
      "applicable)\n\n%s\n",
      table.ToString().c_str());

  // The executed plan behind each count (plans don't depend on loading or
  // update count, so one column per type suffices).
  std::vector<std::string> plan_headers = {"query"};
  for (const Config& c : configs) {
    if (c.fillfactor != 100) continue;
    plan_headers.push_back(DbTypeName(c.type));
  }
  TablePrinter plans(std::move(plan_headers));
  for (int q = 1; q <= 12; ++q) {
    std::vector<std::string> row = {StrPrintf("Q%02d", q)};
    for (size_t i = 0; i < configs.size(); ++i) {
      if (configs[i].fillfactor != 100) continue;
      auto it = at0[i].find(q);
      row.push_back(it == at0[i].end() ? std::string("-") : it->second.plan);
    }
    plans.AddRow(std::move(row));
  }
  std::printf("Executed plans (access-path summary per query and type)\n\n%s\n",
              plans.ToString().c_str());
  std::printf(
      "Paper (Fig. 7): rollback ~= historical; temporal ~2x more expensive "
      "at uc=14;\n50%% loading halves the growth but doubles the base scan "
      "cost.\n");
  sink.Write();
  return 0;
}
